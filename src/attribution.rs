//! Loop cause attribution — the paper's stated future work.
//!
//! §VI: "Although our verification of loops provided plausible mechanisms
//! to correlate replica streams, the routing behaviors behind the loops
//! remain unknown. In further work, we are extending our data collection
//! techniques to include complete BGP and IS-IS routing data. This will
//! enable a more detailed analysis … and allow us to provide explanations
//! of the causes and effects of routing loops."
//!
//! In the simulated reproduction we *have* the complete routing data: the
//! compiled scenario retains the event script and the exact FIB-update
//! schedule. This module joins detected loops against that record,
//! attributing each loop to the control-plane event that opened it.

use loopscope::RoutingLoop;
use routing::scenario::{CompiledScenario, NetEvent};
use simnet::{SimDuration, SimTime};

/// Why a detected loop happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopCause {
    /// Reconvergence after an IGP link failure.
    IgpFailure,
    /// Reconvergence after an IGP link recovery.
    IgpRecovery,
    /// Reconvergence after a one-way (maintenance) outage or its end.
    Maintenance,
    /// An EGP withdrawal shifting traffic between exits.
    EgpWithdrawal,
    /// An EGP re-advertisement shifting traffic back.
    EgpReadvertisement,
    /// A static-route misconfiguration (persistent until repaired).
    Misconfiguration,
    /// The operator repairing a misconfiguration.
    Repair,
}

impl LoopCause {
    /// Human-readable label.
    pub fn as_str(self) -> &'static str {
        match self {
            LoopCause::IgpFailure => "igp-failure",
            LoopCause::IgpRecovery => "igp-recovery",
            LoopCause::Maintenance => "maintenance",
            LoopCause::EgpWithdrawal => "egp-withdrawal",
            LoopCause::EgpReadvertisement => "egp-readvertisement",
            LoopCause::Misconfiguration => "misconfiguration",
            LoopCause::Repair => "repair",
        }
    }
}

/// One attributed loop.
#[derive(Debug, Clone, Copy)]
pub struct Attribution {
    /// Index into the detection result's loop list.
    pub loop_index: usize,
    /// The inferred cause, when one fits.
    pub cause: Option<LoopCause>,
    /// Time from the causal event to the first replica (the convergence
    /// lag the loop rode on).
    pub lag: Option<SimDuration>,
    /// The causal event's time.
    pub event_time: Option<SimTime>,
}

fn classify(ev: &NetEvent) -> LoopCause {
    match ev {
        NetEvent::LinkFail { .. } => LoopCause::IgpFailure,
        NetEvent::LinkRecover { .. } => LoopCause::IgpRecovery,
        NetEvent::LinkFailOneway { .. } | NetEvent::LinkRecoverOneway { .. } => {
            LoopCause::Maintenance
        }
        NetEvent::EgpWithdraw { .. } => LoopCause::EgpWithdrawal,
        NetEvent::EgpAdvertise { .. } => LoopCause::EgpReadvertisement,
        NetEvent::Misconfigure { .. } => LoopCause::Misconfiguration,
        NetEvent::ClearMisconfiguration { .. } => LoopCause::Repair,
    }
}

/// True when the event could plausibly affect the loop's prefix: EGP
/// events carry an explicit prefix; topology events can affect anything.
fn event_matches_prefix(ev: &NetEvent, loop_prefix: net_types::Ipv4Prefix) -> bool {
    match ev {
        NetEvent::EgpWithdraw { prefix, .. }
        | NetEvent::EgpAdvertise { prefix, .. }
        | NetEvent::Misconfigure { prefix, .. }
        | NetEvent::ClearMisconfiguration { prefix, .. } => *prefix == loop_prefix,
        _ => true,
    }
}

/// True when the event names the prefix explicitly — stronger evidence
/// than a topology event that merely precedes the loop.
fn event_is_prefix_specific(ev: &NetEvent) -> bool {
    matches!(
        ev,
        NetEvent::EgpWithdraw { .. }
            | NetEvent::EgpAdvertise { .. }
            | NetEvent::Misconfigure { .. }
            | NetEvent::ClearMisconfiguration { .. }
    )
}

/// Attributes each detected loop to the latest scripted event that precedes
/// it within `horizon` (the maximum credible convergence lag — detection,
/// flooding, SPF, and the FIB stagger ceiling).
pub fn attribute(
    loops: &[RoutingLoop],
    compiled: &CompiledScenario,
    horizon: SimDuration,
) -> Vec<Attribution> {
    loops
        .iter()
        .enumerate()
        .map(|(loop_index, l)| {
            let start = SimTime(l.start_ns);
            // Prefer the latest prefix-specific event; fall back to the
            // latest topology event. A misconfiguration of this very
            // prefix outranks a coincidental link flap.
            let candidates = || {
                compiled
                    .events
                    .iter()
                    .filter(|ev| ev.time() <= start)
                    .filter(|ev| start.since(ev.time()) <= horizon)
                    .filter(|ev| event_matches_prefix(ev, l.prefix))
            };
            let best = candidates()
                .filter(|ev| event_is_prefix_specific(ev))
                .max_by_key(|ev| ev.time())
                .or_else(|| candidates().max_by_key(|ev| ev.time()));
            match best {
                Some(ev) => Attribution {
                    loop_index,
                    cause: Some(classify(ev)),
                    lag: Some(start.since(ev.time())),
                    event_time: Some(ev.time()),
                },
                None => Attribution {
                    loop_index,
                    cause: None,
                    lag: None,
                    event_time: None,
                },
            }
        })
        .collect()
}

/// Summary counts per cause (plus unattributed), for the report table.
pub fn cause_counts(attributions: &[Attribution]) -> Vec<(&'static str, usize)> {
    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for a in attributions {
        let label = a.cause.map(LoopCause::as_str).unwrap_or("unattributed");
        *counts.entry(label).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{paper_backbones, run_backbone};
    use loopscope::{Detector, DetectorConfig};

    #[test]
    fn backbone_loops_attribute_to_scripted_events() {
        let mut spec = paper_backbones(0.15).remove(0);
        spec.name = "attr-test".into();
        let run = run_backbone(&spec);
        let detection = Detector::new(DetectorConfig::default()).run(&run.records);
        assert!(!detection.loops.is_empty(), "need loops to attribute");
        // Horizon: the full convergence pipeline incl. the EGP stagger.
        let horizon = SimDuration::from_secs(40);
        let attrs = attribute(&detection.loops, &run.compiled, horizon);
        assert_eq!(attrs.len(), detection.loops.len());
        let attributed = attrs.iter().filter(|a| a.cause.is_some()).count();
        assert!(
            attributed == attrs.len(),
            "every loop should find its causal event: {attributed}/{}",
            attrs.len()
        );
        // Lags are plausible: at least the failure-detection delay, at most
        // the horizon.
        for a in &attrs {
            let lag = a.lag.unwrap();
            assert!(lag <= horizon);
        }
        // The summary covers every loop.
        let counts = cause_counts(&attrs);
        let total: usize = counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, attrs.len());
    }

    #[test]
    fn egp_loops_attribute_to_egp_events() {
        let mut spec = paper_backbones(0.15).remove(0);
        spec.igp_failures = 0; // only EGP events in the script
        spec.name = "attr-egp".into();
        spec.return_maintenance = None;
        let run = run_backbone(&spec);
        let detection = Detector::new(DetectorConfig::default()).run(&run.records);
        let attrs = attribute(&detection.loops, &run.compiled, SimDuration::from_secs(40));
        for a in attrs.iter().filter(|a| a.cause.is_some()) {
            assert!(
                matches!(
                    a.cause.unwrap(),
                    LoopCause::EgpWithdrawal | LoopCause::EgpReadvertisement
                ),
                "IGP-free scenario must attribute to EGP: {a:?}"
            );
        }
    }

    #[test]
    fn unattributed_when_no_event_fits() {
        let mut spec = paper_backbones(0.15).remove(0);
        spec.name = "attr-none".into();
        let run = run_backbone(&spec);
        let detection = Detector::new(DetectorConfig::default()).run(&run.records);
        if detection.loops.is_empty() {
            return;
        }
        // Zero horizon: nothing can be attributed.
        let attrs = attribute(&detection.loops, &run.compiled, SimDuration::ZERO);
        assert!(attrs.iter().all(|a| a.cause.is_none()));
    }
}
