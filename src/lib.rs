//! # routing-loops
//!
//! Facade crate for the reproduction of *"Detection and Analysis of Routing
//! Loops in Packet Traces"* (Hengartner, Moon, Mortier, Diot — IMC 2002).
//!
//! This crate re-exports the workspace's public surface so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`net_types`] — IPv4/TCP/UDP/ICMP wire formats, prefixes, checksums.
//! * [`pcaplib`] — classic libpcap trace files.
//! * [`simnet`] — discrete-event packet-level network simulator.
//! * [`routing`] — IGP/EGP convergence dynamics producing transient loops.
//! * [`traffic`] — calibrated backbone workload generation.
//! * [`loopscope`] — the paper's loop-detection algorithm and analysis.
//! * [`stats`] — CDFs, histograms, and table rendering.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end pipeline: build a small
//! topology, fail a link, capture the tapped trace, and run the detector.

pub mod attribution;
pub mod backbone;
pub mod convert;
pub mod shutdown;
pub mod sources;

pub use corpus;
pub use loopscope;
pub use net_types;
pub use pcaplib;
pub use routing;
pub use simnet;
pub use stats;
pub use telemetry;
pub use traffic;
