//! Cooperative SIGINT/SIGTERM shutdown for the long-running binaries.
//!
//! `loopmond` (and `loopdetect --watch`) must not die mid-stream: sinks
//! hold buffered JSONL lines, the telemetry sampler owes a final sample,
//! and per-link engines owe their tail events. This module installs an
//! async-signal-safe flag handler (no allocation, no locks — the handler
//! only stores to an atomic), and the drive loops poll
//! [`requested`] between batches, then drain engines and flush sinks
//! before exiting.
//!
//! On unix the handler is registered with `signal(2)` declared directly
//! via `extern "C"` (the workspace has no libc crate — same pattern as
//! `mmapio`); elsewhere [`install`] is a no-op and shutdown relies on the
//! process being killed.

use std::sync::atomic::{AtomicBool, Ordering};

static STOP: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been received (or [`request`] called).
pub fn requested() -> bool {
    STOP.load(Ordering::Relaxed)
}

/// Requests shutdown programmatically — what the signal handler does,
/// callable from tests and from drive loops that hit their own stop
/// conditions.
pub fn request() {
    STOP.store(true, Ordering::Relaxed);
}

/// Clears the flag (test isolation only; production installs once).
pub fn reset() {
    STOP.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    // `signal(2)`: identical prototype on Linux and the BSD family. The
    // handler must be async-signal-safe; ours only stores to an atomic.
    extern "C" {
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub extern "C" fn on_signal(_signum: i32) {
        super::request();
    }
}

/// Installs the SIGINT/SIGTERM handler. Idempotent; returns whether a
/// real handler was installed (`false` on non-unix platforms, where the
/// flag can still be driven via [`request`]).
pub fn install() -> bool {
    #[cfg(unix)]
    {
        unsafe {
            sys::signal(sys::SIGINT, sys::on_signal);
            sys::signal(sys::SIGTERM, sys::on_signal);
        }
        true
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[cfg(unix)]
    #[test]
    fn install_reports_unix_handler() {
        assert!(install());
    }
}
