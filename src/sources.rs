//! Pipeline sources bridging the simulator into `loopscope::pipeline`.
//!
//! `loopscope` cannot depend on `simnet` (the detector is deliberately
//! simulator-agnostic), so the [`RecordSource`] implementation for taps
//! lives here: a [`TapSource`] converts a tap's observations into
//! [`loopscope::TraceRecord`]s once and then feeds the pipeline through
//! the in-memory fast path.

use crate::convert::records_from_tap;
use loopscope::pipeline::{PipelineError, RecordSource, SourceSummary};
use loopscope::TraceRecord;
use simnet::Tap;

/// A [`RecordSource`] over a simulated tap's observations.
pub struct TapSource {
    records: Vec<TraceRecord>,
}

impl TapSource {
    /// Converts the tap's records (full headers, no truncation loss) into
    /// a pipeline source.
    pub fn new(tap: &Tap) -> Self {
        Self {
            records: records_from_tap(tap),
        }
    }

    /// The converted records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

impl RecordSource for TapSource {
    fn for_each_batch(
        &mut self,
        f: &mut dyn FnMut(&[TraceRecord]) -> Result<(), PipelineError>,
    ) -> Result<SourceSummary, PipelineError> {
        f(&self.records)?;
        Ok(SourceSummary {
            records: self.records.len() as u64,
            skipped: 0,
        })
    }

    fn as_slice(&self) -> Option<&[TraceRecord]> {
        Some(&self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope::pipeline::{run_pipeline, SerialEngine};
    use loopscope::{Detector, DetectorConfig};
    use net_types::{Packet, TcpFlags};
    use simnet::{LinkId, SimTime};
    use std::net::Ipv4Addr;

    fn looping_tap() -> Tap {
        let mut tap = Tap::new(LinkId(0));
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 0, 0, 1),
            Ipv4Addr::new(203, 0, 113, 7),
            4000,
            80,
            TcpFlags::ACK,
            &b"xy"[..],
        );
        p.ip.ttl = 60;
        p.fill_checksums();
        for k in 0..6u64 {
            if k > 0 {
                p.ip.decrement_ttl();
                p.ip.decrement_ttl();
            }
            tap.record(SimTime::from_millis(k), p.clone());
        }
        tap
    }

    #[test]
    fn tap_source_matches_direct_detection() {
        let tap = looping_tap();
        assert_eq!(tap.len(), 6);
        assert!(!tap.is_empty());
        let mut source = TapSource::new(&tap);
        let direct = Detector::new(DetectorConfig::default()).run(source.records());
        let result = run_pipeline(
            &mut source,
            &mut SerialEngine::new(DetectorConfig::default()),
            &mut [],
        )
        .expect("pipeline run");
        assert_eq!(result.streams, direct.streams);
        assert_eq!(result.loops, direct.loops);
        assert_eq!(result.stats, direct.stats);
    }
}
