//! `loopdetect` — detect routing loops in a pcap trace.
//!
//! The operational face of the library: point it at a 40-byte-snaplen (or
//! longer) capture of one unidirectional link and get the paper's §IV
//! analysis: validated replica streams, merged routing loops, and the
//! summary statistics of §V.
//!
//! ```text
//! loopdetect trace.pcap                      # human-readable report
//! loopdetect trace.pcap --csv loops          # machine-readable loops
//! loopdetect trace.pcap --csv streams        # machine-readable streams
//! loopdetect trace.pcap --merge-gap-min 5    # A1 ablation gap
//! loopdetect trace.pcap --no-validate        # A2 ablation (raw candidates)
//! loopdetect trace.pcap --streaming          # bounded-memory single pass
//! loopdetect trace.pcap --threads 4          # sharded parallel detection
//! loopdetect trace.pcap --persistent-s 60    # persistence threshold
//! loopdetect trace.pcap --metrics -          # telemetry snapshot (JSON) to stdout
//! loopdetect trace.pcap --metrics run.json   # telemetry snapshot to a file
//! loopdetect trace.pcap --progress -v        # stderr progress + info logging
//! ```
//!
//! Diagnostics go to stderr and never contaminate the report/CSV on
//! stdout. Verbosity: `-q` errors only, default warnings, `-v` info,
//! `-vv` debug; the `LOOPSCOPE_LOG` env filter overrides per module.

use routing_loops::convert::records_from_pcap;
use routing_loops::loopscope::merge::LoopKind;
use routing_loops::loopscope::online::{OnlineDetector, OnlineEvent};
use routing_loops::loopscope::{analysis, impact, Detector, DetectorConfig, ShardedDetector};
use std::fs::File;
use std::io::BufReader;
use std::io::Write;
use std::process::exit;

const USAGE: &str = "\
loopdetect — detect routing loops in a packet trace (IMC 2002 algorithm)

USAGE: loopdetect <trace.pcap> [OPTIONS]

OPTIONS
  --csv <loops|streams|summary>  CSV output instead of the text report
  --merge-gap-min <N>            stream merge gap in minutes (default 1)
  --no-validate                  skip step-2 validation (raw replica sets)
  --no-checksum-verify           skip RFC 1624 consistency verification
  --no-prefilter                 bypass the level-0 fingerprint pre-filter
                                 and run step 1 on the exact key map alone
                                 (ablation; output is byte-identical)
  --streaming                    use the single-pass bounded-memory detector
  --threads <N>                  worker shards for parallel detection
                                 (default: available cores; 1 = the exact
                                 serial legacy path; output is always
                                 byte-identical to --threads 1)
  --persistent-s <N>             persistence threshold in seconds (default 60)
  --metrics <path|->             write the telemetry snapshot (JSON) to a
                                 file, or to stdout with '-'
  --progress                     periodic progress lines on stderr
  -v, -vv                        info / debug logging on stderr
  -q                             errors only
  -h, --help                     this text
";

struct Args {
    path: String,
    csv: Option<String>,
    cfg: DetectorConfig,
    streaming: bool,
    threads: usize,
    persistent_s: u64,
    metrics: Option<String>,
    progress: bool,
}

fn parse_args() -> Args {
    let mut path = None;
    let mut csv = None;
    let mut cfg = DetectorConfig::default();
    let mut streaming = false;
    let mut threads: Option<usize> = None;
    let mut persistent_s = 60;
    let mut metrics = None;
    let mut progress = false;
    let mut verbosity: Option<telemetry::logging::Level> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            "--metrics" => {
                let v = it.next().unwrap_or_else(|| die("--metrics needs a value"));
                metrics = Some(v.clone());
            }
            "--progress" => progress = true,
            "-v" => verbosity = Some(telemetry::logging::Level::Info),
            "-vv" => verbosity = Some(telemetry::logging::Level::Debug),
            "-q" => verbosity = Some(telemetry::logging::Level::Error),
            "--csv" => {
                let v = it.next().unwrap_or_else(|| die("--csv needs a value"));
                if !["loops", "streams", "summary"].contains(&v.as_str()) {
                    die("--csv must be loops, streams, or summary");
                }
                csv = Some(v.clone());
            }
            "--merge-gap-min" => {
                let v: u64 = it
                    .next()
                    .unwrap_or_else(|| die("--merge-gap-min needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --merge-gap-min"));
                cfg = cfg.with_merge_gap_minutes(v);
            }
            "--no-validate" => {
                cfg.covalidate_prefix = false;
                cfg.min_stream_len = 2;
            }
            "--no-checksum-verify" => cfg.verify_checksum_consistency = false,
            "--no-prefilter" => cfg.use_prefilter = false,
            "--streaming" => streaming = true,
            "--threads" => {
                let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
                let n: usize = v.parse().unwrap_or_else(|_| {
                    die(&format!("--threads must be a positive integer, got {v:?}"))
                });
                if n == 0 {
                    die("--threads must be at least 1 (0 workers cannot detect anything)");
                }
                threads = Some(n);
            }
            "--persistent-s" => {
                persistent_s = it
                    .next()
                    .unwrap_or_else(|| die("--persistent-s needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --persistent-s"));
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_string());
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    if let Some(level) = verbosity {
        telemetry::logging::set_default_level(Some(level));
    }
    if streaming && threads.is_some_and(|n| n > 1) {
        die("--streaming is a single-pass detector; it cannot be combined with --threads > 1");
    }
    let threads = if streaming {
        1
    } else {
        threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    };
    Args {
        path: path.unwrap_or_else(|| die("missing trace path")),
        csv,
        cfg,
        streaming,
        threads,
        persistent_s,
        metrics,
        progress,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    exit(2)
}

/// Prints a `--progress` line to stderr.
fn progress_line(done: usize, total: usize, started: std::time::Instant, open_candidates: usize) {
    let secs = started.elapsed().as_secs_f64();
    let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
    eprintln!(
        "progress: {done}/{total} records ({rate:.0} records/s, {open_candidates} open candidates)"
    );
}

fn main() {
    let args = parse_args();
    let read_started = std::time::Instant::now();
    let file = File::open(&args.path).unwrap_or_else(|e| {
        eprintln!("error: cannot open {}: {e}", args.path);
        exit(1);
    });
    let (records, skipped) = records_from_pcap(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("error: cannot parse {}: {e}", args.path);
        exit(1);
    });
    if records.is_empty() {
        eprintln!("error: no parseable IPv4 records in {}", args.path);
        exit(1);
    }
    if args.progress {
        eprintln!(
            "progress: read {} records in {:.2} s",
            records.len(),
            read_started.elapsed().as_secs_f64()
        );
    }

    // Both paths produce (streams, loops, stats-ish).
    let detect_started = std::time::Instant::now();
    let (streams, loops) = if args.streaming {
        let mut det = OnlineDetector::new(args.cfg);
        let mut events = Vec::new();
        let stride = (records.len() / 10).max(50_000);
        for (i, rec) in records.iter().enumerate() {
            events.extend(det.push(rec));
            if args.progress && (i + 1) % stride == 0 {
                progress_line(i + 1, records.len(), detect_started, det.open_candidates());
            }
        }
        let (mut tail, _stats) = det.finish();
        events.append(&mut tail);
        let mut streams = Vec::new();
        let mut loops = Vec::new();
        for e in events {
            match e {
                OnlineEvent::Stream(s) => streams.push(s),
                OnlineEvent::Loop(l) => loops.push(l),
            }
        }
        loops.sort_by_key(|l| (l.prefix, l.start_ns));
        (streams, loops)
    } else if args.threads > 1 {
        let result = ShardedDetector::new(args.cfg, args.threads).run(&records);
        (result.streams, result.loops)
    } else {
        let result = Detector::new(args.cfg).run(&records);
        (result.streams, result.loops)
    };
    if args.progress {
        progress_line(
            records.len(),
            records.len(),
            detect_started,
            0, // all candidates closed once detection completes
        );
    }

    match args.csv.as_deref() {
        Some("loops") => {
            println!("prefix,start_s,end_s,duration_s,streams,replicas,ttl_delta,class");
            let trace_end = records.last().unwrap().timestamp_ns;
            for l in &loops {
                let class = match l.classify(args.persistent_s * 1_000_000_000) {
                    LoopKind::Transient => "transient",
                    LoopKind::Persistent => "persistent",
                };
                let open = if l.is_open_ended(trace_end, 2_000_000_000) {
                    "+open"
                } else {
                    ""
                };
                println!(
                    "{},{:.6},{:.6},{:.6},{},{},{},{}{}",
                    l.prefix,
                    l.start_ns as f64 / 1e9,
                    l.end_ns as f64 / 1e9,
                    l.duration_ns() as f64 / 1e9,
                    l.num_streams(),
                    l.replica_count(),
                    l.ttl_delta(),
                    class,
                    open,
                );
            }
        }
        Some("streams") => {
            println!("dst,ident,first_ttl,last_ttl,ttl_delta,replicas,start_s,duration_ms,mean_spacing_ms");
            for s in &streams {
                println!(
                    "{},{},{},{},{},{},{:.6},{:.3},{:.3}",
                    s.key.dst,
                    s.key.ident,
                    s.first_ttl(),
                    s.last_ttl(),
                    s.ttl_delta(),
                    s.len(),
                    s.start_ns() as f64 / 1e9,
                    s.duration_ns() as f64 / 1e6,
                    s.mean_spacing_ns() as f64 / 1e6,
                );
            }
        }
        Some("summary") => {
            println!("metric,value");
            println!("records,{}", records.len());
            println!("skipped,{skipped}");
            println!("streams,{}", streams.len());
            println!("loops,{}", loops.len());
            println!(
                "looped_sightings,{}",
                streams.iter().map(|s| s.len()).sum::<usize>()
            );
            let est = impact::escape_estimate(&streams);
            println!("died_in_loop,{}", est.died);
            println!("may_have_escaped,{}", est.may_have_escaped);
        }
        Some(_) => unreachable!("validated in parse_args"),
        None => {
            let duration_s = (records.last().unwrap().timestamp_ns
                - records.first().unwrap().timestamp_ns) as f64
                / 1e9;
            println!(
                "{}: {} records over {:.1} s ({} skipped)",
                args.path,
                records.len(),
                duration_s,
                skipped
            );
            let h = analysis::ttl_delta_distribution(&streams);
            println!(
                "{} validated replica streams (modal TTL delta {:?}), {} routing loops",
                streams.len(),
                h.mode(),
                loops.len()
            );
            let trace_end = records.last().unwrap().timestamp_ns;
            for (i, l) in loops.iter().enumerate() {
                let class = match l.classify(args.persistent_s * 1_000_000_000) {
                    LoopKind::Transient => "transient",
                    LoopKind::Persistent => "PERSISTENT",
                };
                println!(
                    "  loop {i}: {} [{:.3} s .. {:.3} s] {} — {} streams, {} replicas, delta {}{}",
                    l.prefix,
                    l.start_ns as f64 / 1e9,
                    l.end_ns as f64 / 1e9,
                    class,
                    l.num_streams(),
                    l.replica_count(),
                    l.ttl_delta(),
                    if l.is_open_ended(trace_end, 2_000_000_000) {
                        " (still active at trace end)"
                    } else {
                        ""
                    },
                );
            }
            let est = impact::escape_estimate(&streams);
            if est.total_streams > 0 {
                println!(
                    "impact: {} looping packets died on trace evidence, {} may have escaped",
                    est.died, est.may_have_escaped
                );
            }
        }
    }

    if let Some(dest) = &args.metrics {
        let json = telemetry::global().snapshot().to_json();
        if dest == "-" {
            println!("{json}");
        } else {
            let mut f = File::create(dest).unwrap_or_else(|e| {
                eprintln!("error: cannot create {dest}: {e}");
                exit(1);
            });
            writeln!(f, "{json}").unwrap_or_else(|e| {
                eprintln!("error: cannot write {dest}: {e}");
                exit(1);
            });
        }
    }
}
