//! `loopdetect` — detect routing loops in a pcap trace.
//!
//! The operational face of the library: point it at a 40-byte-snaplen (or
//! longer) capture of one unidirectional link and get the paper's §IV
//! analysis: validated replica streams, merged routing loops, and the
//! summary statistics of §V.
//!
//! ```text
//! loopdetect trace.pcap                      # human-readable report
//! loopdetect trace.pcap --csv loops          # machine-readable loops
//! loopdetect trace.pcap --csv streams        # machine-readable streams
//! loopdetect trace.pcap --csv loops --format jsonl   # JSONL instead of CSV
//! loopdetect trace.pcap --analysis           # full §V report (all figures)
//! loopdetect trace.pcap --merge-gap-min 5    # A1 ablation gap
//! loopdetect trace.pcap --no-validate        # A2 ablation (raw candidates)
//! loopdetect trace.pcap --streaming          # bounded-memory single pass
//! loopdetect trace.pcap --threads 4          # block-parallel detection
//! loopdetect trace.pcap --threads 4 --engine ring  # old dispatcher (ablation)
//! loopdetect trace.pcap --persistent-s 60    # persistence threshold
//! loopdetect trace.pcap --metrics -          # telemetry snapshot (JSON) to stdout
//! loopdetect trace.pcap --metrics run.json   # telemetry snapshot to a file
//! loopdetect trace.pcap --metrics-interval 500  # live JSONL samples on stderr
//! loopdetect trace.pcap --watch              # live one-line status on stderr
//! loopdetect trace.pcap --trace run.trace.json  # Chrome trace of the run
//! loopdetect trace.pcap --progress -v        # stderr progress + info logging
//! ```
//!
//! Every mode runs the same `loopscope::pipeline` — the flags only choose
//! the engine (serial, block-parallel, ring-sharded, streaming) and the
//! sinks (text, CSV, JSONL, analysis). Output is byte-identical across
//! engines.
//!
//! Diagnostics go to stderr and never contaminate the report/CSV on
//! stdout. Verbosity: `-q` errors only, default warnings, `-v` info,
//! `-vv` debug; the `LOOPSCOPE_LOG` env filter overrides per module.

use routing_loops::corpus::{self, IngestMode};
use routing_loops::loopscope::analysis::{AnalysisAccumulator, AnalysisReport};
use routing_loops::loopscope::merge::LoopKind;
use routing_loops::loopscope::pipeline::{
    run_pipeline_with_progress, BlockEngine, Engine, EngineProgress, LoopCsvSink, LoopJsonlSink,
    PcapSource, PipelineResult, RecordSource, SerialEngine, ShardedEngine, Sink, StreamCsvSink,
    StreamJsonlSink, StreamingEngine, SummaryCsvSink, OPEN_TAIL_GAP_NS,
};
use routing_loops::loopscope::{analysis, impact, DetectorConfig};
use routing_loops::shutdown;
use std::fs::File;
use std::io::BufReader;
use std::io::Write;
use std::process::exit;

const USAGE: &str = "\
loopdetect — detect routing loops in a packet trace (IMC 2002 algorithm)

USAGE: loopdetect <trace.pcap|trace.ltc> [OPTIONS]

The input format is sniffed from the file's magic bytes: pcap captures
and .ltc columnar corpora (see pcap2ltc) are both accepted, with
identical output.

OPTIONS
  --csv <loops|streams|summary>  machine-readable output instead of the
                                 text report
  --format <csv|jsonl>           wire format for --csv loops/streams
                                 (default csv; summary has no jsonl form)
  --analysis                     full §V analysis report (Table I summary,
                                 TTL-delta histogram, CDFs, traffic mixes)
                                 computed incrementally in a single pass
  --merge-gap-min <N>            stream merge gap in minutes (default 1)
  --no-validate                  skip step-2 validation (raw replica sets)
  --no-checksum-verify           skip RFC 1624 consistency verification
  --no-prefilter                 bypass the level-0 fingerprint pre-filter
                                 and run step 1 on the exact key map alone
                                 (ablation; output is byte-identical)
  --streaming                    use the single-pass bounded-memory detector
  --threads <N>                  workers for parallel detection
                                 (default: available cores; 1 = the exact
                                 serial legacy path; output is always
                                 byte-identical to --threads 1)
  --engine <E>                   detection engine: serial, block (share-
                                 nothing block-parallel; the default when
                                 --threads > 1), ring (the old dispatcher
                                 fan-out, kept as an ablation), or
                                 streaming (same as --streaming). All
                                 engines produce byte-identical output
  --no-mmap                      read .ltc input through buffered reads
                                 instead of the default shared memory
                                 mapping (ablation; output is identical)
  --persistent-s <N>             persistence threshold in seconds (default 60)
  --metrics <path|->             write the telemetry snapshot (JSON) to a
                                 file, or to stdout with '-'
  --metrics-interval <ms>        sample the telemetry registry every <ms>
                                 milliseconds and stream timestamped JSONL
                                 (deltas + rates) to stderr while running
  --watch                        live single-line status display on stderr
                                 (records/s, streams, loops, queue depth);
                                 exclusive with --metrics-interval/--progress
  --trace <path>                 record a structured event trace of the run
                                 and write Chrome trace-event JSON to <path>
                                 (open in chrome://tracing or Perfetto)
  --progress                     periodic progress lines on stderr
  -v, -vv                        info / debug logging on stderr
  -q                             errors only
  -h, --help                     this text
";

struct Args {
    path: String,
    csv: Option<String>,
    jsonl: bool,
    analysis: bool,
    cfg: DetectorConfig,
    engine: EngineChoice,
    threads: usize,
    ingest_mode: IngestMode,
    persistent_s: u64,
    metrics: Option<String>,
    metrics_interval_ms: Option<u64>,
    watch: bool,
    trace: Option<String>,
    progress: bool,
}

/// Which detector implementation runs the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    Serial,
    Block,
    Ring,
    Streaming,
}

fn parse_args() -> Args {
    let mut path = None;
    let mut csv = None;
    let mut format: Option<String> = None;
    let mut analysis = false;
    let mut cfg = DetectorConfig::default();
    let mut streaming = false;
    let mut engine: Option<EngineChoice> = None;
    let mut threads: Option<usize> = None;
    let mut ingest_mode = IngestMode::default();
    let mut persistent_s = 60;
    let mut metrics = None;
    let mut metrics_interval_ms: Option<u64> = None;
    let mut watch = false;
    let mut trace = None;
    let mut progress = false;
    let mut verbosity: Option<telemetry::logging::Level> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            "--metrics" => {
                let v = it.next().unwrap_or_else(|| die("--metrics needs a value"));
                metrics = Some(v.clone());
            }
            "--metrics-interval" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| die("--metrics-interval needs a value"));
                let ms: u64 = v.parse().unwrap_or_else(|_| {
                    die(&format!(
                        "--metrics-interval must be a positive integer (ms), got {v:?}"
                    ))
                });
                if ms == 0 {
                    die("--metrics-interval must be at least 1 ms");
                }
                metrics_interval_ms = Some(ms);
            }
            "--watch" => watch = true,
            "--trace" => {
                let v = it.next().unwrap_or_else(|| die("--trace needs a value"));
                trace = Some(v.clone());
            }
            "--progress" => progress = true,
            "-v" => verbosity = Some(telemetry::logging::Level::Info),
            "-vv" => verbosity = Some(telemetry::logging::Level::Debug),
            "-q" => verbosity = Some(telemetry::logging::Level::Error),
            "--csv" => {
                let v = it.next().unwrap_or_else(|| die("--csv needs a value"));
                if !["loops", "streams", "summary"].contains(&v.as_str()) {
                    die("--csv must be loops, streams, or summary");
                }
                csv = Some(v.clone());
            }
            "--format" => {
                let v = it.next().unwrap_or_else(|| die("--format needs a value"));
                if !["csv", "jsonl"].contains(&v.as_str()) {
                    die("--format must be csv or jsonl");
                }
                format = Some(v.clone());
            }
            "--analysis" => analysis = true,
            "--merge-gap-min" => {
                let v: u64 = it
                    .next()
                    .unwrap_or_else(|| die("--merge-gap-min needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --merge-gap-min"));
                cfg = cfg.with_merge_gap_minutes(v);
            }
            "--no-validate" => {
                cfg.covalidate_prefix = false;
                cfg.min_stream_len = 2;
            }
            "--no-checksum-verify" => cfg.verify_checksum_consistency = false,
            "--no-prefilter" => cfg.use_prefilter = false,
            "--streaming" => streaming = true,
            "--engine" => {
                let v = it.next().unwrap_or_else(|| die("--engine needs a value"));
                engine = Some(match v.as_str() {
                    "serial" => EngineChoice::Serial,
                    "block" => EngineChoice::Block,
                    "ring" => EngineChoice::Ring,
                    "streaming" => EngineChoice::Streaming,
                    other => die(&format!(
                        "--engine must be serial, block, ring, or streaming, got {other:?}"
                    )),
                });
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
                let n: usize = v.parse().unwrap_or_else(|_| {
                    die(&format!("--threads must be a positive integer, got {v:?}"))
                });
                if n == 0 {
                    die("--threads must be at least 1 (0 workers cannot detect anything)");
                }
                threads = Some(n);
            }
            "--no-mmap" => ingest_mode = IngestMode::Buffered,
            "--persistent-s" => {
                persistent_s = it
                    .next()
                    .unwrap_or_else(|| die("--persistent-s needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --persistent-s"));
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(other.to_string());
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    if let Some(level) = verbosity {
        telemetry::logging::set_default_level(Some(level));
    }
    if engine == Some(EngineChoice::Streaming) {
        streaming = true;
    }
    if streaming && threads.is_some_and(|n| n > 1) {
        die("--streaming is a single-pass detector; it cannot be combined with --threads > 1");
    }
    if streaming && engine.is_some_and(|e| e != EngineChoice::Streaming) {
        die("--streaming conflicts with --engine; pick one");
    }
    if engine == Some(EngineChoice::Serial) && threads.is_some_and(|n| n > 1) {
        die("--engine serial runs one worker; it cannot be combined with --threads > 1");
    }
    let jsonl = format.as_deref() == Some("jsonl");
    if jsonl {
        match csv.as_deref() {
            Some("loops") | Some("streams") => {}
            Some("summary") => {
                die("--format jsonl has no summary form; use --csv loops or --csv streams")
            }
            None => die("--format jsonl needs --csv loops or --csv streams"),
            Some(_) => unreachable!("validated above"),
        }
    }
    if analysis && csv.is_some() {
        die("--analysis replaces the text report; it cannot be combined with --csv");
    }
    if watch && metrics_interval_ms.is_some() {
        die("--watch and --metrics-interval both drive the sampler; choose one");
    }
    if watch && progress {
        die("--watch and --progress both redraw stderr; choose one");
    }
    let threads = if streaming || engine == Some(EngineChoice::Serial) {
        1
    } else {
        threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    };
    let engine = engine.unwrap_or(if streaming {
        EngineChoice::Streaming
    } else if threads > 1 {
        EngineChoice::Block
    } else {
        EngineChoice::Serial
    });
    Args {
        path: path.unwrap_or_else(|| die("missing trace path")),
        csv,
        jsonl,
        analysis,
        cfg,
        engine,
        threads,
        ingest_mode,
        persistent_s,
        metrics,
        metrics_interval_ms,
        watch,
        trace,
        progress,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    exit(2)
}

/// Prints a `--progress` line to stderr. `open_candidates` is the engine's
/// live count; buffered engines report `None` until they run ("-").
fn progress_line(done: u64, started: std::time::Instant, open_candidates: Option<usize>) {
    let secs = started.elapsed().as_secs_f64();
    let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
    match open_candidates {
        Some(open) => {
            eprintln!("progress: {done} records ({rate:.0} records/s, {open} open candidates)")
        }
        None => eprintln!("progress: {done} records ({rate:.0} records/s, - open candidates)"),
    }
}

/// Prints the default human-readable report.
fn text_report(args: &Args, result: &PipelineResult) {
    println!(
        "{}: {} records over {:.1} s ({} skipped)",
        args.path,
        result.records,
        result.duration_ns() as f64 / 1e9,
        result.skipped
    );
    let h = analysis::ttl_delta_distribution(&result.streams);
    println!(
        "{} validated replica streams (modal TTL delta {:?}), {} routing loops",
        result.streams.len(),
        h.mode(),
        result.loops.len()
    );
    for (i, l) in result.loops.iter().enumerate() {
        let class = match l.classify(args.persistent_s * 1_000_000_000) {
            LoopKind::Transient => "transient",
            LoopKind::Persistent => "PERSISTENT",
        };
        println!(
            "  loop {i}: {} [{:.3} s .. {:.3} s] {} — {} streams, {} replicas, delta {}{}",
            l.prefix,
            l.start_ns as f64 / 1e9,
            l.end_ns as f64 / 1e9,
            class,
            l.num_streams(),
            l.replica_count(),
            l.ttl_delta(),
            if l.is_open_ended(result.trace_end_ns, OPEN_TAIL_GAP_NS) {
                " (still active at trace end)"
            } else {
                ""
            },
        );
    }
    let est = impact::escape_estimate(&result.streams);
    if est.total_streams > 0 {
        println!(
            "impact: {} looping packets died on trace evidence, {} may have escaped",
            est.died, est.may_have_escaped
        );
    }
}

/// Prints one CDF line of the `--analysis` report.
fn analysis_cdf_line(name: &str, cdf: &mut stats::Cdf) {
    if cdf.is_empty() {
        println!("{name}: n=0");
        return;
    }
    println!(
        "{name}: n={} min={:.3} p50={:.3} p90={:.3} max={:.3}",
        cdf.len(),
        cdf.min().unwrap_or(0.0),
        cdf.median().unwrap_or(0.0),
        cdf.quantile(0.9).unwrap_or(0.0),
        cdf.max().unwrap_or(0.0),
    );
}

/// Prints the full §V analysis report, computed incrementally by the
/// [`AnalysisAccumulator`] sink during the (single) pipeline pass.
fn analysis_report(mut report: AnalysisReport) {
    let s = report.summary;
    println!(
        "summary: duration_s={:.3} packets={} bytes={} avg_bandwidth_bps={:.0} looped_packets={} looped_sightings={}",
        s.duration_ns as f64 / 1e9,
        s.total_packets,
        s.total_bytes,
        s.avg_bandwidth_bps,
        s.looped_packets,
        s.looped_sightings,
    );
    let deltas: Vec<String> = report
        .ttl_delta
        .iter()
        .map(|(k, n)| format!("{k}:{n}"))
        .collect();
    println!("ttl_delta: {}", deltas.join(" "));
    analysis_cdf_line("stream_size_cdf", &mut report.stream_size_cdf);
    analysis_cdf_line("spacing_cdf_ms", &mut report.spacing_cdf_ms);
    analysis_cdf_line("stream_duration_cdf_ms", &mut report.stream_duration_cdf_ms);
    analysis_cdf_line("loop_duration_cdf_s", &mut report.loop_duration_cdf_s);
    let mix = |d: &stats::CategoricalDist| {
        d.fractions()
            .iter()
            .map(|(l, f)| format!("{l}:{f:.4}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("mix_all: {}", mix(&report.mix_all));
    println!("mix_looped: {}", mix(&report.mix_looped));
    println!(
        "destinations: {} streams, class_c_share={:.4}",
        report.dest_scatter.len(),
        report.class_c_share,
    );
}

/// `--watch` sampling cadence: fast enough to feel live, slow enough that
/// the sampler never contends with the workers.
const WATCH_INTERVAL_MS: u64 = 200;

fn main() {
    let args = parse_args();
    let started = std::time::Instant::now();

    // SIGINT/SIGTERM stop the source at the next batch boundary; the
    // engine still drains, sinks still flush, and the sampler still
    // emits its final sample — a long `--watch` run never dies
    // mid-stream with half-written output.
    shutdown::install();

    // Observability setup precedes the pipeline so the whole run is
    // covered: tracing records from the first batch, the sampler's first
    // sample is the pre-run zero point.
    if args.trace.is_some() {
        telemetry::trace::enable(telemetry::trace::DEFAULT_RING_CAPACITY);
    }
    let sampler = if let Some(ms) = args.metrics_interval_ms {
        Some(telemetry::export::Sampler::spawn(
            telemetry::global(),
            std::time::Duration::from_millis(ms),
            Box::new(telemetry::export::JsonlConsumer::new(std::io::stderr())),
        ))
    } else if args.watch {
        Some(telemetry::export::Sampler::spawn(
            telemetry::global(),
            std::time::Duration::from_millis(WATCH_INTERVAL_MS),
            Box::new(telemetry::export::StatusLine::new(std::io::stderr())),
        ))
    } else {
        None
    };

    // Input format is sniffed, not told: `.ltc` corpora and pcap captures
    // both work transparently, and everything downstream of the source —
    // engines, sinks, report formats — is unchanged either way.
    let is_ltc = corpus::sniff_is_ltc(std::path::Path::new(&args.path)).unwrap_or_else(|e| {
        eprintln!("error: cannot open {}: {e}", args.path);
        exit(1);
    });
    let mut source: Box<dyn RecordSource> = if is_ltc {
        corpus::open_ltc_source(std::path::Path::new(&args.path), args.ingest_mode).unwrap_or_else(
            |e| {
                eprintln!("error: cannot parse {e}");
                exit(1);
            },
        )
    } else {
        let file = File::open(&args.path).unwrap_or_else(|e| {
            eprintln!("error: cannot open {}: {e}", args.path);
            exit(1);
        });
        Box::new(PcapSource::new(BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("error: cannot parse {}: {e}", args.path);
            exit(1);
        }))
    };

    // Mode selection is engine selection: all four run the same pipeline.
    let mut engine: Box<dyn Engine> = match args.engine {
        EngineChoice::Streaming => Box::new(StreamingEngine::new(args.cfg)),
        EngineChoice::Block => Box::new(BlockEngine::new(args.cfg, args.threads)),
        EngineChoice::Ring => Box::new(ShardedEngine::new(args.cfg, args.threads)),
        EngineChoice::Serial => Box::new(SerialEngine::new(args.cfg)),
    };

    // Output selection is sink selection.
    let persistent_ns = args.persistent_s * 1_000_000_000;
    let mut loops_csv = None;
    let mut streams_csv = None;
    let mut summary_csv = None;
    let mut loops_jsonl = None;
    let mut streams_jsonl = None;
    let mut accumulator = None;
    match (args.csv.as_deref(), args.jsonl) {
        (Some("loops"), false) => {
            loops_csv = Some(LoopCsvSink::new(std::io::stdout(), persistent_ns));
        }
        (Some("loops"), true) => {
            loops_jsonl = Some(LoopJsonlSink::new(std::io::stdout(), persistent_ns));
        }
        (Some("streams"), false) => streams_csv = Some(StreamCsvSink::new(std::io::stdout())),
        (Some("streams"), true) => streams_jsonl = Some(StreamJsonlSink::new(std::io::stdout())),
        (Some("summary"), _) => summary_csv = Some(SummaryCsvSink::new(std::io::stdout())),
        (Some(_), _) => unreachable!("validated in parse_args"),
        (None, _) => {
            if args.analysis {
                accumulator = Some(AnalysisAccumulator::new());
            }
        }
    }
    let mut sinks: Vec<&mut dyn Sink> = Vec::new();
    if let Some(s) = loops_csv.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = streams_csv.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = summary_csv.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = loops_jsonl.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = streams_jsonl.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = accumulator.as_mut() {
        sinks.push(s);
    }

    const PROGRESS_STRIDE: u64 = 200_000;
    let mut next_progress = PROGRESS_STRIDE;
    let want_progress = args.progress;
    let result = run_pipeline_with_progress(
        source.as_mut(),
        engine.as_mut(),
        &mut sinks,
        &mut |p: &EngineProgress| {
            if want_progress && p.records >= next_progress {
                next_progress = p.records + PROGRESS_STRIDE;
                progress_line(p.records, started, p.open_candidates);
            }
            if shutdown::requested() {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: cannot process {}: {e}", args.path);
        exit(1);
    });
    if result.records == 0 && !result.interrupted {
        eprintln!("error: no parseable IPv4 records in {}", args.path);
        exit(1);
    }
    if args.progress {
        // The engine's real post-run state, not an assumption: every
        // candidate the engine still considers open is reported.
        let p = engine.progress();
        progress_line(p.records, started, p.open_candidates);
    }

    if args.csv.is_none() {
        if let Some(acc) = accumulator {
            analysis_report(acc.report());
        } else {
            text_report(&args, &result);
        }
    }

    if let Some(dest) = &args.metrics {
        let json = telemetry::global().snapshot().to_json();
        if dest == "-" {
            println!("{json}");
        } else {
            let mut f = File::create(dest).unwrap_or_else(|e| {
                eprintln!("error: cannot create {dest}: {e}");
                exit(1);
            });
            writeln!(f, "{json}").unwrap_or_else(|e| {
                eprintln!("error: cannot write {dest}: {e}");
                exit(1);
            });
        }
    }

    // Final sample (covering the whole run) before the trace is drained.
    if let Some(sampler) = sampler {
        sampler.stop().unwrap_or_else(|e| {
            eprintln!("error: telemetry sampler failed: {e}");
            exit(1);
        });
    }
    if let Some(dest) = &args.trace {
        telemetry::trace::disable();
        let f = File::create(dest).unwrap_or_else(|e| {
            eprintln!("error: cannot create {dest}: {e}");
            exit(1);
        });
        let mut w = std::io::BufWriter::new(f);
        telemetry::trace::write_chrome_trace(&mut w)
            .and_then(|()| w.flush())
            .unwrap_or_else(|e| {
                eprintln!("error: cannot write {dest}: {e}");
                exit(1);
            });
    }

    // Everything is flushed; only now acknowledge an interrupt with the
    // conventional 128+SIGINT exit code.
    if result.interrupted {
        eprintln!(
            "interrupted: report covers the {} records read before shutdown",
            result.records
        );
        exit(130);
    }
}
