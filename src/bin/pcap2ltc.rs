//! `pcap2ltc` — convert a pcap capture into a `.ltc` columnar corpus.
//!
//! ```text
//! pcap2ltc <in.pcap> [<out.ltc>] [--threads N] [--verify] [--quiet]
//! ```
//!
//! The output path defaults to the input with a `.ltc` extension.
//! `--verify` re-reads the finished corpus and compares it record for
//! record against the source before reporting success.

use routing_loops::convert::{pcap_to_ltc, verify_ltc_against_pcap};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: pcap2ltc <in.pcap> [<out.ltc>] [options]

Converts a pcap capture to a .ltc columnar corpus (see DESIGN.md).
The corpus stores the decoded detector view — replica-key columns plus
the precomputed replica fingerprint — so later scans skip per-packet
header parsing and hashing entirely.

options:
  --threads N   decode the source pcap with N parallel range readers
                (default: 1)
  --verify      re-read the finished corpus and compare against the
                source; fail loudly on any difference
  --quiet       suppress the summary line
  -h, --help    this text
";

struct Args {
    input: PathBuf,
    output: PathBuf,
    threads: usize,
    verify: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut input: Option<PathBuf> = None;
    let mut output: Option<PathBuf> = None;
    let mut threads = 1usize;
    let mut verify = false;
    let mut quiet = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--verify" => verify = true,
            "--quiet" => quiet = true,
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                threads = v
                    .parse::<usize>()
                    .map_err(|_| format!("--threads: not a number: {v}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option: {other}"));
            }
            path if input.is_none() => input = Some(PathBuf::from(path)),
            path if output.is_none() => output = Some(PathBuf::from(path)),
            extra => return Err(format!("unexpected argument: {extra}")),
        }
    }
    let input = input.ok_or("missing input pcap path")?;
    let output = output.unwrap_or_else(|| input.with_extension("ltc"));
    Ok(Args {
        input,
        output,
        threads,
        verify,
        quiet,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("pcap2ltc: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.input == args.output {
        eprintln!("pcap2ltc: input and output are the same file");
        return ExitCode::from(2);
    }
    let started = std::time::Instant::now();
    let (records, skipped) = match pcap_to_ltc(&args.input, &args.output, args.threads) {
        Ok(counts) => counts,
        Err(e) => {
            eprintln!("pcap2ltc: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.verify {
        if let Err(e) = verify_ltc_against_pcap(&args.output, &args.input, args.threads) {
            eprintln!("pcap2ltc: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !args.quiet {
        // Self-documenting CI logs: how much was converted and how fast.
        let secs = started.elapsed().as_secs_f64();
        let out_bytes = std::fs::metadata(&args.output).map_or(0, |m| m.len());
        let rate = if secs > 0.0 {
            records as f64 / secs
        } else {
            0.0
        };
        eprintln!(
            "pcap2ltc: {} -> {}: {records} records, {skipped} skipped{}; {:.1} MB in {secs:.3} s ({:.0} records/s)",
            args.input.display(),
            args.output.display(),
            if args.verify { ", verified" } else { "" },
            out_bytes as f64 / 1e6,
            rate,
        );
    }
    ExitCode::SUCCESS
}
