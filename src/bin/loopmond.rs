//! `loopmond` — the continuous multi-link routing-loop monitor.
//!
//! `loopdetect` answers "what looped in this trace?"; `loopmond` answers
//! "what is looping across the fleet right now?". It multiplexes N
//! concurrent sources — simulated router links from the simnet fleet
//! scenario, or pcap/.ltc captures, one link each — through the
//! [`MonitorRuntime`]: a bounded streaming engine per link feeding one
//! unified, per-link-attributed loop-event JSONL stream.
//!
//! ```text
//! loopmond --fleet 120                          # 120-link rolling-failure demo
//! loopmond --fleet 120 --events events.jsonl    # events to a file
//! loopmond --fleet 8 --watch                    # live status line on stderr
//! loopmond a.pcap b.ltc --events -              # two capture links
//! loopmond --fleet 16 --max-records 100000      # stop after a record budget
//! ```
//!
//! Every event line carries its link: `{"link":"link-007","event":"loop",…}`.
//! Per-link event streams are byte-identical to running that link's trace
//! standalone through the streaming engine (the monitor conformance tests
//! assert this), so the daemon adds concurrency without changing results.
//!
//! SIGINT/SIGTERM stop the sources at the next batch boundary; every
//! link's engine is drained, tail events are written, the sink is
//! flushed, and the final telemetry sample is emitted before the process
//! exits 0 — a stopped monitor is a normally-terminated monitor.
//! Diagnostics go to stderr; the event stream alone goes to `--events`.

use routing_loops::corpus::{self, IngestMode};
use routing_loops::loopscope::pipeline::{PcapSource, PipelineError, RecordSource};
use routing_loops::loopscope::{DetectorConfig, MonitorConfig, MonitorRuntime};
use routing_loops::shutdown;
use routing_loops::simnet::{FleetSpec, SimDuration};
use routing_loops::sources::TapSource;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};

const USAGE: &str = "\
loopmond — continuous multi-link routing-loop monitor (fleet daemon)

USAGE: loopmond --fleet <N> [OPTIONS]
       loopmond <trace.pcap|trace.ltc>... [OPTIONS]

Fleet mode simulates <N> router links with rolling link failures (the
simnet fleet scenario) and monitors all of them concurrently. Capture
mode monitors each listed file as one link (link id = the file stem).
Both write one unified JSONL event stream; every line carries its link:
  {\"link\":\"link-007\",\"event\":\"loop\",...}

OPTIONS
  --events <path|->       unified loop-event JSONL destination
                          (default: stdout)
  --threads <n>           worker threads (default: min(links, cores, 8))
  --max-records <n>       stop (gracefully) after about <n> records
                          fleet-wide
  --pace-ms <ms>          sleep <ms> between batches on every link —
                          paces a demo fleet like a live one
  --horizon-ms <ms>       per-link history horizon for the bounded
                          streaming engines (default: exact equivalence)
  --persistent-s <s>      persistent-loop threshold in seconds for the
                          event `class` field (default 60)
  --fleet <n>             fleet mode with <n> simulated links (1..=512)
  --duration-s <s>        fleet: traffic window per link (default 20)
  --flap-period-s <s>     fleet: failure period per link (default 6)
  --seed <n>              fleet: base seed (default 42)
  --metrics <path|->      write the final telemetry snapshot (JSON)
  --metrics-interval <ms> live telemetry samples (JSONL on stderr)
  --watch                 live single-line status display on stderr;
                          exclusive with --metrics-interval
  -h, --help              this help

EXIT STATUS
  0 on a complete or gracefully stopped (SIGINT/SIGTERM/--max-records)
  run; 1 on errors; 2 on usage errors.
";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    exit(2)
}

struct Args {
    events: Option<String>,
    threads: usize,
    max_records: Option<u64>,
    pace_ms: Option<u64>,
    horizon_ms: Option<u64>,
    persistent_s: u64,
    fleet: Option<usize>,
    duration_s: u64,
    flap_period_s: u64,
    seed: u64,
    files: Vec<String>,
    metrics: Option<String>,
    metrics_interval_ms: Option<u64>,
    watch: bool,
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> T {
    v.parse()
        .unwrap_or_else(|_| die(&format!("{what} must be a number, got {v:?}")))
}

fn parse_args() -> Args {
    let mut events = None;
    let mut threads: Option<usize> = None;
    let mut max_records = None;
    let mut pace_ms = None;
    let mut horizon_ms = None;
    let mut persistent_s = 60u64;
    let mut fleet = None;
    let mut duration_s = 20u64;
    let mut flap_period_s = 6u64;
    let mut seed = 42u64;
    let mut files = Vec::new();
    let mut metrics = None;
    let mut metrics_interval_ms = None;
    let mut watch = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            "--events" => events = Some(val("--events")),
            "--threads" => {
                let n: usize = parse_num(&val("--threads"), "--threads");
                if n == 0 {
                    die("--threads must be at least 1");
                }
                threads = Some(n);
            }
            "--max-records" => {
                let n: u64 = parse_num(&val("--max-records"), "--max-records");
                if n == 0 {
                    die("--max-records must be at least 1");
                }
                max_records = Some(n);
            }
            "--pace-ms" => pace_ms = Some(parse_num(&val("--pace-ms"), "--pace-ms")),
            "--horizon-ms" => {
                let ms: u64 = parse_num(&val("--horizon-ms"), "--horizon-ms");
                if ms == 0 {
                    die("--horizon-ms must be at least 1");
                }
                horizon_ms = Some(ms);
            }
            "--persistent-s" => persistent_s = parse_num(&val("--persistent-s"), "--persistent-s"),
            "--fleet" => {
                let n: usize = parse_num(&val("--fleet"), "--fleet");
                if n == 0 {
                    die("--fleet must be at least 1");
                }
                fleet = Some(n);
            }
            "--duration-s" => {
                let s: u64 = parse_num(&val("--duration-s"), "--duration-s");
                if s == 0 {
                    die("--duration-s must be at least 1");
                }
                duration_s = s;
            }
            "--flap-period-s" => {
                let s: u64 = parse_num(&val("--flap-period-s"), "--flap-period-s");
                if s < 2 {
                    die("--flap-period-s must be at least 2 (flaps must outlast the loop window)");
                }
                flap_period_s = s;
            }
            "--seed" => seed = parse_num(&val("--seed"), "--seed"),
            "--metrics" => metrics = Some(val("--metrics")),
            "--metrics-interval" => {
                let ms: u64 = parse_num(&val("--metrics-interval"), "--metrics-interval");
                if ms == 0 {
                    die("--metrics-interval must be at least 1 ms");
                }
                metrics_interval_ms = Some(ms);
            }
            "--watch" => watch = true,
            s if s.starts_with('-') && s.len() > 1 => die(&format!("unknown option {s:?}")),
            _ => files.push(arg),
        }
    }

    if fleet.is_some() && !files.is_empty() {
        die("--fleet and capture files are exclusive; choose one mode");
    }
    if fleet.is_none() && files.is_empty() {
        die("nothing to monitor: pass --fleet <n> or capture files");
    }
    if watch && metrics_interval_ms.is_some() {
        die("--watch and --metrics-interval both drive the sampler; choose one");
    }
    let links = fleet.unwrap_or(files.len());
    let threads = threads.unwrap_or_else(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        links.min(cores).clamp(1, 8)
    });
    Args {
        events,
        threads,
        max_records,
        pace_ms,
        horizon_ms,
        persistent_s,
        fleet,
        duration_s,
        flap_period_s,
        seed,
        files,
        metrics,
        metrics_interval_ms,
        watch,
    }
}

/// A capture file's link id: the file stem with every byte outside the
/// monitor's `[A-Za-z0-9._-]` charset folded to `-`.
fn link_id_for_file(path: &str) -> String {
    let stem = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    let mut id: String = stem
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    id.truncate(128);
    if id.is_empty() {
        id.push_str("link");
    }
    id
}

/// What one worker monitors: a link id plus how to obtain its records.
enum Job {
    Fleet(usize),
    File(String),
}

/// Records handed to a link's engine per `LinkMonitor::feed` call.
/// Small enough that shutdown and budget checks are responsive, large
/// enough that sink-lock traffic is negligible. Paced runs use a smaller
/// chunk so `--pace-ms` spreads a link over real time instead of
/// sleeping once after one giant batch.
const CHUNK: usize = 4096;
const PACED_CHUNK: usize = 256;

fn main() {
    let args = parse_args();
    shutdown::install();

    let sampler = if let Some(ms) = args.metrics_interval_ms {
        Some(telemetry::export::Sampler::spawn(
            telemetry::global(),
            std::time::Duration::from_millis(ms),
            Box::new(telemetry::export::JsonlConsumer::new(std::io::stderr())),
        ))
    } else if args.watch {
        Some(telemetry::export::Sampler::spawn(
            telemetry::global(),
            std::time::Duration::from_millis(200),
            Box::new(telemetry::export::StatusLine::new(std::io::stderr())),
        ))
    } else {
        None
    };

    let out: Box<dyn Write + Send> = match args.events.as_deref() {
        None | Some("-") => Box::new(BufWriter::new(std::io::stdout())),
        Some(path) => Box::new(BufWriter::new(File::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create {path}: {e}");
            exit(1);
        }))),
    };

    let spec = args.fleet.map(|links| {
        let mut spec = FleetSpec::demo(links);
        spec.duration = SimDuration::from_secs(args.duration_s);
        spec.flap_period = SimDuration::from_secs(args.flap_period_s);
        spec.seed = args.seed;
        spec.validate();
        spec
    });
    let jobs: Vec<Job> = match args.fleet {
        Some(links) => (0..links).map(Job::Fleet).collect(),
        None => args.files.iter().cloned().map(Job::File).collect(),
    };

    let runtime = MonitorRuntime::new(
        MonitorConfig {
            detector: DetectorConfig::default(),
            persistent_threshold_ns: args.persistent_s.saturating_mul(1_000_000_000),
            history_horizon_ns: args.horizon_ms.map(|ms| ms.saturating_mul(1_000_000)),
        },
        out,
    );

    // Fleet-wide record budget: claimed chunk-by-chunk, so the overshoot
    // is at most one chunk per worker. Going negative requests the same
    // graceful stop a signal does.
    let budget = AtomicI64::new(
        args.max_records
            .map_or(i64::MAX, |n| i64::try_from(n).unwrap_or(i64::MAX)),
    );
    let next_job = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let pace = args.pace_ms.map(std::time::Duration::from_millis);

    std::thread::scope(|s| {
        for _ in 0..args.threads {
            s.spawn(|| loop {
                let j = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(j) else { break };
                if shutdown::requested() {
                    break;
                }
                if let Err(e) = run_job(job, &runtime, spec.as_ref(), &budget, pace) {
                    eprintln!("error: {e}");
                    failed.store(true, Ordering::Relaxed);
                    shutdown::request();
                    break;
                }
            });
        }
    });

    let totals = match runtime.finish() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot flush event sink: {e}");
            exit(1);
        }
    };

    if let Some(dest) = &args.metrics {
        let json = telemetry::global().snapshot().to_json();
        let write = |w: &mut dyn Write| writeln!(w, "{json}");
        let res = match dest.as_str() {
            "-" => write(&mut std::io::stdout()),
            path => File::create(path).and_then(|mut f| write(&mut f)),
        };
        if let Err(e) = res {
            eprintln!("error: cannot write {dest}: {e}");
            exit(1);
        }
    }
    // Final sample covering the drained state, after all links retired.
    if let Some(sampler) = sampler {
        if let Err(e) = sampler.stop() {
            eprintln!("error: telemetry sampler failed: {e}");
            exit(1);
        }
    }

    eprintln!(
        "loopmond: {} links ({} closed), {} records, {} streams, {} loops{}",
        totals.links_opened,
        totals.links_closed,
        totals.records,
        totals.streams,
        totals.loops,
        if shutdown::requested() {
            " — stopped"
        } else {
            ""
        }
    );
    if failed.load(Ordering::Relaxed) {
        exit(1);
    }
}

/// Monitors one link to completion (or graceful stop): obtains its
/// records, feeds them in [`CHUNK`]-sized batches with shutdown/budget
/// checks between batches, then drains the engine's tail. Interruption
/// still finishes the link — tail events are written and the link
/// retires gracefully; only unread source data is abandoned.
fn run_job(
    job: &Job,
    runtime: &MonitorRuntime,
    spec: Option<&FleetSpec>,
    budget: &AtomicI64,
    pace: Option<std::time::Duration>,
) -> Result<(), String> {
    let (id, mut source): (String, Box<dyn RecordSource>) = match job {
        Job::Fleet(i) => {
            let spec = spec.expect("fleet jobs carry a spec");
            let tap = spec.run_link(*i);
            (FleetSpec::link_name(*i), Box::new(TapSource::new(&tap)))
        }
        Job::File(path) => {
            let p = std::path::Path::new(path);
            let is_ltc = corpus::sniff_is_ltc(p).map_err(|e| format!("cannot open {path}: {e}"))?;
            let source: Box<dyn RecordSource> = if is_ltc {
                corpus::open_ltc_source(p, IngestMode::default())
                    .map_err(|e| format!("cannot parse {e}"))?
            } else {
                let file = File::open(p).map_err(|e| format!("cannot open {path}: {e}"))?;
                Box::new(
                    PcapSource::new(BufReader::new(file))
                        .map_err(|e| format!("cannot parse {path}: {e}"))?,
                )
            };
            (link_id_for_file(path), source)
        }
    };

    let mut link = runtime.add_link(&id);
    let chunk_len = if pace.is_some() { PACED_CHUNK } else { CHUNK };
    let pulled = source.for_each_batch(&mut |batch| {
        for chunk in batch.chunks(chunk_len) {
            if shutdown::requested() {
                return Err(PipelineError::Interrupted);
            }
            let before = budget.fetch_sub(chunk.len() as i64, Ordering::Relaxed);
            if before <= 0 {
                shutdown::request();
                return Err(PipelineError::Interrupted);
            }
            link.feed(chunk).map_err(PipelineError::Sink)?;
            if let Some(d) = pace {
                std::thread::sleep(d);
            }
        }
        Ok(())
    });
    match pulled {
        // A stop request abandons the rest of the source but the link
        // still drains below.
        Ok(_) | Err(PipelineError::Interrupted) => {}
        Err(e) => return Err(format!("link {id}: {e}")),
    }
    link.finish().map_err(|e| format!("link {id}: {e}"))?;
    Ok(())
}
