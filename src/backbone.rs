//! Synthetic "backbone link" construction — the substitute for the four
//! Sprint OC-12 traces of Table I.
//!
//! Each backbone is a small POP-like network with one monitored
//! unidirectional core link, edge routers owning the destination /24s, a
//! backup path, and a scripted schedule of link failures / recoveries and
//! EGP withdrawals. Transient loops form across the monitored link during
//! reconvergence, exactly as in the paper's Figure 1, and the loop's hop
//! count is controlled by the return-path structure:
//!
//! * **direct return** (`indirect_return = false`): the core link has a
//!   direct reverse link, so micro-loops are two-router loops — TTL delta 2
//!   (the dominant case in the paper's Backbones 1–3);
//! * **indirect return** (`indirect_return = true`): the reverse direction
//!   is cheaper via a middle router, so loops span three routers — TTL
//!   delta 3 (Backbone 4's ~35% delta-3 population).
//!
//! Topology sketch (arrows = unidirectional links, costs annotated):
//!
//! ```text
//!   src ── c1 ══monitored══▶ c2 ──(1)── e_i   (primary to edge prefixes)
//!           ▲      ◀──direct(1 or 10)──┘
//!           └──(1)── m ◀──(1)── c2          (detour return)
//!   c1 ──(1)── c3 ──(4)── e_i               (backup path)
//!   c3 ──(1)── x2                           (EGP backup exit)
//! ```

use loopscope::TraceRecord;
use net_types::Ipv4Prefix;
use routing::scenario::{compile, CompiledScenario, NetEvent, Scenario};
use routing::{EgpConfig, EgpPrefix, IgpConfig};
use simnet::{
    Engine, FaultConfig, LinkId, NodeId, SimConfig, SimDuration, SimReport, SimTime, Topology,
    TopologyBuilder,
};
use std::net::Ipv4Addr;
use traffic::dest::synthetic_pool;
use traffic::generator::CbrConfig;
use traffic::{ArrivalModel, GeneratorConfig, MixConfig, TrafficGenerator, TtlConfig};

/// Parameters of one synthetic backbone trace.
#[derive(Debug, Clone)]
pub struct BackboneSpec {
    /// Display name ("Backbone 1" …).
    pub name: String,
    /// Master seed: topology staggers, traffic, and faults derive from it.
    pub seed: u64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Mean flow arrivals per second (controls utilisation; Table I's
    /// bandwidth column).
    pub flow_rate: f64,
    /// Destination /24 count.
    pub n_prefixes: usize,
    /// Edge routers sharing the prefixes.
    pub n_edges: usize,
    /// Scripted IGP link failures (each with a later recovery).
    pub igp_failures: usize,
    /// Scripted EGP withdrawals (each with a later re-advertisement).
    pub egp_withdrawals: usize,
    /// Per-router FIB-update jitter ceiling — the knob that stretches loop
    /// windows (Backbones 1–2 in the paper showed markedly longer loops).
    pub fib_jitter: SimDuration,
    /// iBGP per-router stagger ceiling (EGP loops; BGP convergence is slow,
    /// so this dominates the long-loop tail on Backbones 1–2).
    pub egp_jitter: SimDuration,
    /// One-way propagation delay of the core links. Sets the loop
    /// round-trip and therefore the inter-replica spacing of Figure 4.
    pub core_prop: SimDuration,
    /// Build the detour return path (TTL delta 3) instead of the direct
    /// one (delta 2) for the whole trace.
    pub indirect_return: bool,
    /// A one-way maintenance outage of the direct return link, as a
    /// fraction-of-duration window `(start, end)`. While it is in force the
    /// return path detours via the middle router, so failures inside the
    /// window produce TTL-delta-3 loops — the mechanism behind the paper's
    /// within-trace delta mixtures (Backbone 4's ~35% delta-3 share).
    pub return_maintenance: Option<(f64, f64)>,
    /// Include the anomalous reserved-type ICMP host.
    pub reserved_icmp: bool,
    /// Link-layer duplication probability on the monitored link (exercises
    /// the 2-element-stream rejection).
    pub dup_fault_prob: f64,
    /// Initial-TTL model.
    pub ttl: TtlConfig,
    /// Protocol mix.
    pub mix: MixConfig,
    /// Flow arrival process (Poisson or bursty ON/OFF).
    pub arrivals: ArrivalModel,
    /// Optional constant-bit-rate UDP trunk (RTP-like). Long trunks wrap
    /// the sender's IP ident counter — the workload behind the key
    /// ablation.
    pub cbr_trunk: Option<CbrConfig>,
    /// Optional static-route misconfiguration window `(start, end)` as
    /// fractions of the duration: c2's route for one edge prefix is
    /// overwritten to point back across the monitored link, creating a
    /// *persistent* loop (§I) until the scripted repair.
    pub misconfig_window: Option<(f64, f64)>,
    /// Fraction of destination prefixes in class C space.
    pub class_c_fraction: f64,
}

/// The four paper-shaped backbones, scaled by `scale` (1.0 ≈ a 5-minute,
/// hundreds-of-thousands-of-packets trace per backbone; the paper's
/// multi-hour billions-of-packets traces are out of reach for a repro run,
/// and every reported statistic is a distribution, not a raw count).
pub fn paper_backbones(scale: f64) -> Vec<BackboneSpec> {
    assert!(scale > 0.0);
    let dur = |s: f64| SimDuration((s * scale * 1e9) as u64);
    vec![
        // Backbone 1: moderate load, slow FIB convergence -> long loops,
        // anomalous ICMP host present.
        BackboneSpec {
            name: "Backbone 1".into(),
            seed: 101,
            duration: dur(300.0),
            flow_rate: 10.0,
            n_prefixes: 48,
            n_edges: 4,
            igp_failures: 4,
            egp_withdrawals: 2,
            fib_jitter: SimDuration::from_millis(2_500),
            egp_jitter: SimDuration::from_secs(20),
            core_prop: SimDuration::from_millis(2),
            indirect_return: false,
            return_maintenance: Some((0.48, 0.72)),
            reserved_icmp: true,
            dup_fault_prob: 5e-4,
            ttl: TtlConfig::default(),
            mix: MixConfig::default(),
            arrivals: ArrivalModel::Poisson,
            cbr_trunk: None,
            misconfig_window: None,
            class_c_fraction: 0.55,
        },
        // Backbone 2: the high-bandwidth link (Table I's 243 Mbps one),
        // also slow-converging.
        BackboneSpec {
            name: "Backbone 2".into(),
            seed: 202,
            duration: dur(300.0),
            flow_rate: 40.0,
            n_prefixes: 64,
            n_edges: 4,
            igp_failures: 4,
            egp_withdrawals: 2,
            fib_jitter: SimDuration::from_millis(2_000),
            egp_jitter: SimDuration::from_secs(15),
            core_prop: SimDuration::from_micros(1_500),
            indirect_return: false,
            return_maintenance: Some((0.80, 0.95)),
            reserved_icmp: true,
            dup_fault_prob: 1e-4,
            ttl: TtlConfig::default(),
            // Part of the UDP share rides the CBR trunk, so the flow-level
            // UDP fraction is trimmed to keep Figure 5 in the paper's band.
            mix: MixConfig {
                tcp: 0.67,
                udp: 0.22,
                ..MixConfig::default()
            },
            arrivals: ArrivalModel::Poisson,
            // ~230 pps for the whole trace: enough to wrap the 16-bit
            // ident counter and exercise the payload-identity proxy.
            cbr_trunk: Some(CbrConfig {
                pps: 230.0,
                payload_len: 160,
                dst_port: 5004,
                ident_start: 0,
            }),
            misconfig_window: None,
            class_c_fraction: 0.6,
        },
        // Backbone 3: lightly loaded, fast convergence -> short loops.
        BackboneSpec {
            name: "Backbone 3".into(),
            seed: 303,
            duration: dur(300.0),
            flow_rate: 6.0,
            n_prefixes: 32,
            n_edges: 4,
            igp_failures: 6,
            egp_withdrawals: 0,
            fib_jitter: SimDuration::from_millis(2_500),
            egp_jitter: SimDuration::from_secs(1),
            core_prop: SimDuration::from_millis(4),
            indirect_return: false,
            return_maintenance: None,
            reserved_icmp: false,
            dup_fault_prob: 0.0,
            ttl: TtlConfig::default(),
            mix: MixConfig::default(),
            arrivals: ArrivalModel::Poisson,
            cbr_trunk: None,
            misconfig_window: None,
            class_c_fraction: 0.5,
        },
        // Backbone 4: the odd one out — three dominant initial TTLs and a
        // sizeable TTL-delta-3 population via the detour return path.
        BackboneSpec {
            name: "Backbone 4".into(),
            seed: 407,
            duration: dur(300.0),
            flow_rate: 8.0,
            n_prefixes: 40,
            n_edges: 4,
            igp_failures: 6,
            egp_withdrawals: 1,
            fib_jitter: SimDuration::from_millis(2_200),
            egp_jitter: SimDuration::from_secs(3),
            core_prop: SimDuration::from_millis(4),
            indirect_return: false,
            return_maintenance: Some((0.55, 0.88)),
            reserved_icmp: false,
            dup_fault_prob: 0.0,
            ttl: TtlConfig {
                initials: vec![(64, 0.45), (128, 0.35), (255, 0.20)],
                ..TtlConfig::default()
            },
            mix: MixConfig::default(),
            arrivals: ArrivalModel::Poisson,
            cbr_trunk: None,
            misconfig_window: None,
            class_c_fraction: 0.5,
        },
    ]
}

/// Everything a backbone run produces.
pub struct BackboneRun {
    /// The spec that produced it.
    pub spec: BackboneSpec,
    /// The monitored link's trace, detector-ready and time-sorted.
    pub records: Vec<TraceRecord>,
    /// The raw tap (full packets) behind `records` — export it with
    /// [`crate::convert::write_tap_to_pcap`] to produce a real trace file.
    pub tap: simnet::Tap,
    /// The packet engine's report (ground truth for loss/escape).
    pub report: SimReport,
    /// The compiled control-plane schedule and analytic loop windows.
    pub compiled: CompiledScenario,
    /// The monitored link.
    pub monitored_link: LinkId,
    /// Nominal bandwidth of the monitored link (bps).
    pub monitored_bandwidth_bps: u64,
}

struct Built {
    topo: Topology,
    costs: Vec<u64>,
    monitored: LinkId,
    direct_return: LinkId,
    src: NodeId,
    c2: NodeId,
    edge_fail_links: Vec<LinkId>,
    egp_exit_primary: NodeId,
    egp_exit_backup: NodeId,
    edge_prefixes: Vec<Ipv4Prefix>,
    egp_prefixes: Vec<Ipv4Prefix>,
}

const CORE_BW: u64 = 622_000_000; // OC-12
const EDGE_BW: u64 = 1_000_000_000;

fn build_topology(spec: &BackboneSpec) -> Built {
    let mut b = TopologyBuilder::new();
    let mut costs: Vec<u64> = Vec::new();
    // Edge/access links are metro-short; core links span the backbone and
    // carry the spec's propagation delay (which sets loop RTTs).
    let edge_d = SimDuration::from_micros(250);
    let core_d = spec.core_prop;
    let link = |b: &mut TopologyBuilder,
                costs: &mut Vec<u64>,
                from: NodeId,
                to: NodeId,
                bw: u64,
                cost: u64,
                d: SimDuration,
                faults: FaultConfig|
     -> LinkId {
        let id = b.link_with(from, to, bw, d, 2048, faults);
        costs.push(cost);
        id
    };

    let src = b.node("src", Ipv4Addr::new(10, 99, 0, 1));
    let c1 = b.node("c1", Ipv4Addr::new(10, 99, 0, 2));
    let c2 = b.node("c2", Ipv4Addr::new(10, 99, 0, 3));
    let m = b.node("m", Ipv4Addr::new(10, 99, 0, 4));
    let c3 = b.node("c3", Ipv4Addr::new(10, 99, 0, 5));
    let x2 = b.node("x2", Ipv4Addr::new(10, 99, 0, 6));

    // Source prefix lives at the ingress.
    b.attach_prefix(src, "100.64.0.0/12".parse().unwrap());

    // Ingress.
    link(
        &mut b,
        &mut costs,
        src,
        c1,
        EDGE_BW,
        1,
        edge_d,
        FaultConfig::none(),
    );
    link(
        &mut b,
        &mut costs,
        c1,
        src,
        EDGE_BW,
        1,
        edge_d,
        FaultConfig::none(),
    );

    // Monitored core link with optional protection-path duplication
    // faults (the copy arrives 2 TTL lower — §IV-A.2's false-positive
    // source).
    let monitored = link(
        &mut b,
        &mut costs,
        c1,
        c2,
        CORE_BW,
        1,
        core_d,
        if spec.dup_fault_prob > 0.0 {
            FaultConfig::protection_duplicates(spec.dup_fault_prob, 2)
        } else {
            FaultConfig::none()
        },
    );
    // Direct return: cost 1 normally; expensive when the detour should win.
    let direct_return_cost = if spec.indirect_return { 10 } else { 1 };
    let direct_return = link(
        &mut b,
        &mut costs,
        c2,
        c1,
        CORE_BW,
        direct_return_cost,
        core_d,
        FaultConfig::none(),
    );
    // Detour return c2 -> m -> c1 (and forward c1 -> m so flooding reaches
    // m from c1's side as well).
    link(
        &mut b,
        &mut costs,
        c2,
        m,
        CORE_BW,
        1,
        core_d,
        FaultConfig::none(),
    );
    link(
        &mut b,
        &mut costs,
        m,
        c1,
        CORE_BW,
        1,
        core_d,
        FaultConfig::none(),
    );
    link(
        &mut b,
        &mut costs,
        c1,
        m,
        CORE_BW,
        1,
        core_d,
        FaultConfig::none(),
    );
    // m prefers reaching the edges via c1, so that when c2 detours through
    // m the resulting transient is the three-router cycle c1 -> c2 -> m ->
    // c1 (crossing the monitored link), not an invisible c2 <-> m pair.
    link(
        &mut b,
        &mut costs,
        m,
        c2,
        CORE_BW,
        20,
        core_d,
        FaultConfig::none(),
    );

    // Backup spine c1 <-> c3.
    link(
        &mut b,
        &mut costs,
        c1,
        c3,
        CORE_BW,
        1,
        core_d,
        FaultConfig::none(),
    );
    link(
        &mut b,
        &mut costs,
        c3,
        c1,
        CORE_BW,
        1,
        core_d,
        FaultConfig::none(),
    );

    // EGP backup exit off c3.
    link(
        &mut b,
        &mut costs,
        c3,
        x2,
        EDGE_BW,
        1,
        edge_d,
        FaultConfig::none(),
    );
    link(
        &mut b,
        &mut costs,
        x2,
        c3,
        EDGE_BW,
        1,
        edge_d,
        FaultConfig::none(),
    );

    // Edge routers: primary via c2 (cost 1), backup via c3 (cost 4).
    let pool = synthetic_pool(spec.n_prefixes, spec.class_c_fraction, 1.0);
    let all_prefixes: Vec<Ipv4Prefix> = pool.prefixes().to_vec();
    let n_egp = if spec.egp_withdrawals > 0 {
        (all_prefixes.len() / 10).max(1)
    } else {
        0
    };
    // EGP prefixes take the head of the Zipf pool: externally-learned
    // routes cover the most popular destinations on a real backbone, and
    // their slow (BGP-scale) convergence is what produces the long-loop
    // tail of Figure 9 on Backbones 1-2 — which needs enough traffic to be
    // observable.
    let (egp_prefixes, edge_prefixes) = all_prefixes.split_at(n_egp);

    let mut edges = Vec::new();
    let mut edge_fail_links = Vec::new();
    for i in 0..spec.n_edges {
        let e = b.node(&format!("e{i}"), Ipv4Addr::new(10, 99, 1, i as u8 + 1));
        let fail = link(
            &mut b,
            &mut costs,
            c2,
            e,
            EDGE_BW,
            1,
            edge_d,
            FaultConfig::none(),
        );
        link(
            &mut b,
            &mut costs,
            e,
            c2,
            EDGE_BW,
            1,
            edge_d,
            FaultConfig::none(),
        );
        link(
            &mut b,
            &mut costs,
            c3,
            e,
            EDGE_BW,
            4,
            edge_d,
            FaultConfig::none(),
        );
        link(
            &mut b,
            &mut costs,
            e,
            c3,
            EDGE_BW,
            4,
            edge_d,
            FaultConfig::none(),
        );
        edges.push(e);
        edge_fail_links.push(fail);
    }
    for (k, prefix) in edge_prefixes.iter().enumerate() {
        b.attach_prefix(edges[k % edges.len()], *prefix);
    }

    Built {
        topo: b.build(),
        costs,
        monitored,
        direct_return,
        c2,
        src,
        edge_fail_links,
        egp_exit_primary: edges[0],
        egp_exit_backup: x2,
        edge_prefixes: edge_prefixes.to_vec(),
        egp_prefixes: egp_prefixes.to_vec(),
    }
}

/// Builds, simulates, and traces one backbone.
pub fn run_backbone(spec: &BackboneSpec) -> BackboneRun {
    let built = build_topology(spec);
    let horizon = SimTime::ZERO + spec.duration + SimDuration::from_secs(60);

    // --- Control plane -------------------------------------------------
    let mut scenario = Scenario::new(horizon);
    scenario.seed = spec.seed;
    scenario.costs = Some(built.costs.clone());
    scenario.igp = IgpConfig {
        fib_node_jitter_max: spec.fib_jitter,
        ..IgpConfig::default()
    };
    scenario.egp = EgpConfig {
        ibgp_jitter_max: spec.egp_jitter,
        ..EgpConfig::default()
    };
    scenario.egp_prefixes = built
        .egp_prefixes
        .iter()
        .map(|p| EgpPrefix {
            prefix: *p,
            exits: vec![built.egp_exit_primary, built.egp_exit_backup],
        })
        .collect();

    // Optional maintenance outage of the direct return link: failures
    // inside this window form three-router (delta-3) loops via the detour.
    if let Some((f0, f1)) = spec.return_maintenance {
        assert!((0.0..=1.0).contains(&f0) && f0 < f1 && f1 <= 1.0);
        let t0 = SimTime((spec.duration.as_nanos() as f64 * f0) as u64);
        let t1 = SimTime((spec.duration.as_nanos() as f64 * f1) as u64);
        scenario.events.push(NetEvent::LinkFailOneway {
            time: t0,
            link: built.direct_return,
        });
        scenario.events.push(NetEvent::LinkRecoverOneway {
            time: t1,
            link: built.direct_return,
        });
    }

    // Optional persistent-loop misconfiguration.
    if let Some((f0, f1)) = spec.misconfig_window {
        assert!((0.0..=1.0).contains(&f0) && f0 < f1 && f1 <= 1.0);
        // Use the most popular edge prefix so the loop is well sampled.
        let prefix = *built.edge_prefixes.first().expect("edge prefixes");
        let t0 = SimTime((spec.duration.as_nanos() as f64 * f0) as u64);
        let t1 = SimTime((spec.duration.as_nanos() as f64 * f1) as u64);
        // c2's static route points back at c1 while c1 keeps forwarding
        // via c2: a hard two-router loop on the monitored link that no
        // protocol will heal.
        scenario.events.push(NetEvent::Misconfigure {
            time: t0,
            node: built.c2,
            prefix,
            route: simnet::Route::Link(built.direct_return),
        });
        scenario.events.push(NetEvent::ClearMisconfiguration {
            time: t1,
            node: built.c2,
            prefix,
        });
    }

    // Failure schedule: spread events through the middle of the window.
    let slot = spec.duration.as_nanos()
        / (spec.igp_failures as u64 + spec.egp_withdrawals as u64 + 1).max(1);
    let mut t = SimTime(slot / 2);
    for k in 0..spec.igp_failures {
        let target = built.edge_fail_links[k % built.edge_fail_links.len()];
        scenario.events.push(NetEvent::LinkFail {
            time: t,
            link: target,
        });
        let recover_at = t + SimDuration(slot / 2);
        scenario.events.push(NetEvent::LinkRecover {
            time: recover_at,
            link: target,
        });
        t += SimDuration(slot);
    }
    for k in 0..spec.egp_withdrawals {
        let prefix = built.egp_prefixes[k % built.egp_prefixes.len().max(1)];
        scenario.events.push(NetEvent::EgpWithdraw {
            time: t,
            prefix,
            exit: built.egp_exit_primary,
        });
        scenario.events.push(NetEvent::EgpAdvertise {
            time: t + SimDuration(slot / 2),
            prefix,
            exit: built.egp_exit_primary,
        });
        t += SimDuration(slot);
    }
    let compiled = compile(&built.topo, &scenario);

    // --- Data plane ----------------------------------------------------
    let mut engine = Engine::new(
        built.topo.clone(),
        SimConfig {
            seed: spec.seed ^ 0xdead_beef,
            generate_time_exceeded: true,
            icmp_min_interval: SimDuration::from_micros(500),
            record_deliveries: true,
            max_events: 2_000_000_000,
        },
    );
    compiled.apply(&mut engine);
    engine.add_tap(built.monitored);

    // --- Workload ------------------------------------------------------
    let mut gen_cfg = GeneratorConfig::new(
        spec.seed ^ 0x5eed,
        SimTime::ZERO,
        SimTime::ZERO + spec.duration,
        spec.flow_rate,
    );
    gen_cfg.ttl = spec.ttl.clone();
    gen_cfg.mix = spec.mix;
    gen_cfg.arrivals = spec.arrivals;
    gen_cfg.cbr_trunk = spec.cbr_trunk;
    if spec.reserved_icmp {
        gen_cfg.reserved_icmp_host = Some(Ipv4Addr::new(100, 66, 6, 6));
    }
    let pool = traffic::DestPool::zipf(
        built
            .edge_prefixes
            .iter()
            .chain(built.egp_prefixes.iter())
            .copied()
            .collect(),
        1.0,
    );
    let mut generator = TrafficGenerator::new(gen_cfg, pool);
    generator.inject_into(&mut engine, built.src);

    // --- Run and collect -----------------------------------------------
    let report = engine.run();
    let mut taps = engine.take_taps();
    let tap = taps.remove(0);
    let records = crate::convert::records_from_tap(&tap);
    BackboneRun {
        spec: spec.clone(),
        records,
        tap,
        report,
        compiled,
        monitored_link: built.monitored,
        monitored_bandwidth_bps: CORE_BW,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopscope::{Detector, DetectorConfig};

    /// A miniature backbone for fast tests.
    fn tiny_spec() -> BackboneSpec {
        BackboneSpec {
            name: "tiny".into(),
            seed: 7,
            duration: SimDuration::from_secs(30),
            flow_rate: 4.0,
            n_prefixes: 12,
            n_edges: 2,
            igp_failures: 2,
            egp_withdrawals: 1,
            fib_jitter: SimDuration::from_millis(800),
            egp_jitter: SimDuration::from_secs(2),
            core_prop: SimDuration::from_millis(1),
            indirect_return: false,
            return_maintenance: None,
            reserved_icmp: false,
            dup_fault_prob: 0.0,
            ttl: TtlConfig::default(),
            mix: MixConfig::default(),
            arrivals: ArrivalModel::Poisson,
            cbr_trunk: None,
            misconfig_window: None,
            class_c_fraction: 0.5,
        }
    }

    #[test]
    fn backbone_produces_a_trace_with_loops() {
        let run = run_backbone(&tiny_spec());
        assert!(run.report.is_conserved(), "packet conservation");
        assert!(
            run.records.len() > 1_000,
            "trace too small: {}",
            run.records.len()
        );
        assert!(
            !run.compiled.windows.is_empty(),
            "scenario must open loop windows"
        );
        // The detector finds loops in the tapped trace.
        let result = Detector::new(DetectorConfig::default()).run(&run.records);
        assert!(
            !result.streams.is_empty(),
            "detector must find replica streams"
        );
        assert!(!result.loops.is_empty());
        // Dominant TTL delta is 2 on a direct-return backbone.
        let h = loopscope::analysis::ttl_delta_distribution(&result.streams);
        assert_eq!(h.mode(), Some(2));
    }

    #[test]
    fn indirect_return_yields_delta_three() {
        let mut spec = tiny_spec();
        spec.indirect_return = true;
        spec.egp_withdrawals = 0;
        spec.igp_failures = 3;
        let run = run_backbone(&spec);
        let result = Detector::new(DetectorConfig::default()).run(&run.records);
        assert!(!result.streams.is_empty());
        let h = loopscope::analysis::ttl_delta_distribution(&result.streams);
        assert!(
            h.count(3) > 0,
            "detour return must produce TTL-delta-3 streams (got {:?})",
            h.fractions()
        );
    }

    #[test]
    fn detected_streams_fall_inside_ground_truth_windows() {
        let run = run_backbone(&tiny_spec());
        let result = Detector::new(DetectorConfig::default()).run(&run.records);
        let slack = 200_000_000u64; // propagation + loop RTT slack
        for s in &result.streams {
            let inside = run.compiled.windows.iter().any(|w| {
                let wstart = w.start.as_nanos().saturating_sub(slack);
                let wend = w.end.map(|e| e.as_nanos() + slack).unwrap_or(u64::MAX);
                s.start_ns() >= wstart && s.end_ns() <= wend
            });
            assert!(
                inside,
                "stream at [{}, {}] ns to {} outside all ground-truth windows",
                s.start_ns(),
                s.end_ns(),
                s.key.dst
            );
        }
    }

    #[test]
    fn paper_backbones_shape() {
        let specs = paper_backbones(1.0);
        assert_eq!(specs.len(), 4);
        assert!(specs[1].flow_rate > specs[0].flow_rate * 2.0);
        // Backbone 4 spends a large share of the trace on the detour
        // return (delta-3 loops).
        let (f0, f1) = specs[3].return_maintenance.unwrap();
        assert!(f1 - f0 > 0.3);
        assert!(specs[0].reserved_icmp && specs[1].reserved_icmp);
        assert!(specs[0].egp_jitter > specs[2].egp_jitter);
        assert_eq!(specs[3].ttl.initials.len(), 3);
    }
}
