//! Conversions between the simulator's tap records, pcap files, and the
//! detector's trace records.

use loopscope::TraceRecord;
use pcaplib::{BlockIndex, FileHeader, PcapError, PcapReader, PcapWriter};
use simnet::Tap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The monitors the paper used stored the first 40 bytes of each packet;
/// that is the default snap length throughout this workspace.
pub const PAPER_SNAPLEN: u32 = 40;

/// Converts a simulated tap's records into detector records (in-memory
/// path; full headers available, no truncation loss).
pub fn records_from_tap(tap: &Tap) -> Vec<TraceRecord> {
    tap.records
        .iter()
        .map(|r| TraceRecord::from_packet(r.time.as_nanos(), &r.packet))
        .collect()
}

/// Writes a tap's observations to a pcap file with the given snap length —
/// the persistent equivalent of what the IPMON monitors produced.
pub fn write_tap_to_pcap<W: Write>(tap: &Tap, snaplen: u32, sink: W) -> Result<u64, PcapError> {
    let mut writer = PcapWriter::new(sink, FileHeader::raw_ip(snaplen))?;
    for rec in &tap.records {
        let bytes = rec.packet.emit();
        writer.write_packet(&pcaplib::CapturedPacket {
            timestamp_ns: rec.time.as_nanos(),
            orig_len: bytes.len() as u32,
            data: bytes,
        })?;
    }
    let n = writer.records_written();
    writer.finish()?;
    Ok(n)
}

/// Reads detector records back out of a pcap file. Records whose IP header
/// is unparseable (non-IPv4 link noise) are skipped and counted.
pub fn records_from_pcap<R: Read>(source: R) -> Result<(Vec<TraceRecord>, u64), PcapError> {
    static TM_UNPARSEABLE: telemetry::LazyCounter =
        telemetry::LazyCounter::new("pcap.unparseable_records");
    let _t = telemetry::span("pcap.read");
    let mut reader = PcapReader::new(source)?;
    let mut records = Vec::new();
    let mut skipped = 0u64;
    // Zero-allocation scan: one reusable buffer for the whole trace, and
    // `from_wire_bytes` parses the borrowed capture without copying it.
    let mut buf = pcaplib::RecordBuf::new();
    while reader.read_into(&mut buf)? {
        match TraceRecord::from_wire_bytes(buf.timestamp_ns(), buf.data()) {
            Ok(rec) => records.push(rec),
            Err(_) => skipped += 1,
        }
    }
    TM_UNPARSEABLE.add(skipped);
    if skipped > 0 {
        telemetry::tm_warn!("skipped {} unparseable records", skipped);
    }
    Ok((records, skipped))
}

/// [`records_from_pcap`] fanned out over `threads` independent byte
/// ranges of one file: a [`BlockIndex`] header walk finds record-aligned
/// split offsets, then each worker opens its own handle and decodes its
/// range through the same zero-alloc path. Ranges are concatenated in
/// file order, so the records (and skip count) are identical to the
/// serial read.
pub fn records_from_pcap_parallel(
    path: &Path,
    threads: usize,
) -> Result<(Vec<TraceRecord>, u64), PcapError> {
    let _t = telemetry::span("pcap.read_parallel");
    let index = {
        let _t = telemetry::span("pcap.index");
        BlockIndex::scan(std::io::BufReader::new(std::fs::File::open(path)?))?
    };
    let ranges = index.split_ranges(threads.max(1));
    if ranges.len() <= 1 {
        let file = std::fs::File::open(path)?;
        return records_from_pcap(std::io::BufReader::new(file));
    }
    let header = index.header();
    let parts: Vec<Result<(Vec<TraceRecord>, u64), PcapError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || {
                    let mut file = std::fs::File::open(path)?;
                    file.seek(SeekFrom::Start(lo))?;
                    let limited = std::io::BufReader::new(file).take(hi - lo);
                    let mut reader = PcapReader::resume(limited, header);
                    let mut records = Vec::new();
                    let mut skipped = 0u64;
                    let mut buf = pcaplib::RecordBuf::new();
                    while reader.read_into(&mut buf)? {
                        match TraceRecord::from_wire_bytes(buf.timestamp_ns(), buf.data()) {
                            Ok(rec) => records.push(rec),
                            Err(_) => skipped += 1,
                        }
                    }
                    Ok((records, skipped))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pcap range reader panicked"))
            .collect()
    });
    let mut records = Vec::with_capacity(index.records() as usize);
    let mut skipped = 0u64;
    for part in parts {
        let (mut recs, skip) = part?;
        records.append(&mut recs);
        skipped += skip;
    }
    Ok((records, skipped))
}

/// Failure converting a pcap capture to a `.ltc` corpus: either side of
/// the conversion can reject its file.
#[derive(Debug)]
pub enum ConvertError {
    /// The source pcap is unreadable or corrupt. A truncated final record
    /// surfaces here — the conversion never writes a silently shortened
    /// corpus.
    Pcap(PcapError),
    /// The corpus could not be written (or, under `--verify`, re-read).
    Corpus(corpus::CorpusError),
    /// `--verify` re-read the corpus and it did not match the source.
    VerifyMismatch(&'static str),
}

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvertError::Pcap(e) => write!(f, "pcap source: {e}"),
            ConvertError::Corpus(e) => write!(f, "ltc corpus: {e}"),
            ConvertError::VerifyMismatch(what) => {
                write!(
                    f,
                    "verification failed: corpus does not match source ({what})"
                )
            }
        }
    }
}

impl std::error::Error for ConvertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvertError::Pcap(e) => Some(e),
            ConvertError::Corpus(e) => Some(e),
            ConvertError::VerifyMismatch(_) => None,
        }
    }
}

impl From<PcapError> for ConvertError {
    fn from(e: PcapError) -> Self {
        ConvertError::Pcap(e)
    }
}

impl From<corpus::CorpusError> for ConvertError {
    fn from(e: corpus::CorpusError) -> Self {
        ConvertError::Corpus(e)
    }
}

/// Converts a pcap capture at `src` into a `.ltc` columnar corpus at
/// `dst`, decoding with up to `threads` parallel range readers. Returns
/// `(records, skipped)` as written to the corpus header. Any pcap defect
/// (including a truncated final record) aborts the conversion with the
/// pcap layer's error; the partially written `dst` is removed.
pub fn pcap_to_ltc(src: &Path, dst: &Path, threads: usize) -> Result<(u64, u64), ConvertError> {
    let _t = telemetry::span("convert.pcap_to_ltc");
    let (records, skipped) = if threads > 1 {
        records_from_pcap_parallel(src, threads)?
    } else {
        let file = std::fs::File::open(src).map_err(PcapError::Io)?;
        records_from_pcap(std::io::BufReader::new(file))?
    };
    match corpus::write_ltc_file(dst, &records, skipped) {
        Ok(n) => Ok((n, skipped)),
        Err(e) => {
            let _ = std::fs::remove_file(dst);
            Err(e.into())
        }
    }
}

/// Re-reads a freshly written corpus and compares it record-for-record
/// against the source pcap — the `pcap2ltc --verify` check.
pub fn verify_ltc_against_pcap(
    ltc: &Path,
    pcap: &Path,
    threads: usize,
) -> Result<(), ConvertError> {
    let _t = telemetry::span("convert.verify");
    let (want, want_skipped) = if threads > 1 {
        records_from_pcap_parallel(pcap, threads)?
    } else {
        let file = std::fs::File::open(pcap).map_err(PcapError::Io)?;
        records_from_pcap(std::io::BufReader::new(file))?
    };
    let (got, got_skipped) =
        corpus::records_from_ltc_with(ltc, threads, corpus::IngestMode::default())?;
    if got.len() != want.len() {
        return Err(ConvertError::VerifyMismatch("record count differs"));
    }
    if got_skipped != want_skipped {
        return Err(ConvertError::VerifyMismatch("skip count differs"));
    }
    if got != want {
        return Err(ConvertError::VerifyMismatch("record content differs"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::{Packet, TcpFlags};
    use simnet::{LinkId, SimTime};
    use std::io::Cursor;
    use std::net::Ipv4Addr;

    fn sample_tap() -> Tap {
        let mut tap = Tap::new(LinkId(0));
        for i in 0..5u16 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 0, 0, 1),
                Ipv4Addr::new(203, 0, 113, 4),
                1,
                2,
                TcpFlags::ACK,
                vec![0u8; 200],
            );
            p.ip.ident = i;
            p.fill_checksums();
            tap.record(SimTime::from_millis(u64::from(i)), p);
        }
        tap
    }

    #[test]
    fn tap_to_records_direct() {
        let tap = sample_tap();
        let recs = records_from_tap(&tap);
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[3].ident, 3);
        assert_eq!(recs[3].timestamp_ns, 3_000_000);
    }

    #[test]
    fn pcap_roundtrip_preserves_detector_view() {
        let tap = sample_tap();
        let direct = records_from_tap(&tap);
        let mut buf = Vec::new();
        let written = write_tap_to_pcap(&tap, PAPER_SNAPLEN, &mut buf).unwrap();
        assert_eq!(written, 5);
        let (via_pcap, skipped) = records_from_pcap(Cursor::new(buf)).unwrap();
        assert_eq!(skipped, 0);
        // The 40-byte snaplen preserves every field the detector uses.
        assert_eq!(direct, via_pcap);
    }

    #[test]
    fn unparseable_records_skipped() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, FileHeader::raw_ip(40)).unwrap();
            w.write_bytes(0, &[0xde, 0xad]).unwrap(); // not IPv4
            let p = Packet::tcp_flags(
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                1,
                2,
                TcpFlags::SYN,
                &b""[..],
            );
            w.write_bytes(10, &p.emit()).unwrap();
            w.finish().unwrap();
        }
        let (records, skipped) = records_from_pcap(Cursor::new(buf)).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn parallel_pcap_read_matches_serial() {
        // Enough distinct records to span several index blocks, plus some
        // unparseable noise so the skip count is exercised.
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, FileHeader::raw_ip(PAPER_SNAPLEN)).unwrap();
            for i in 0..5000u32 {
                if i % 1000 == 7 {
                    w.write_bytes(u64::from(i) * 1_000, &[0xde, 0xad]).unwrap();
                    continue;
                }
                let mut p = Packet::tcp_flags(
                    Ipv4Addr::new(100, 0, 0, 1),
                    Ipv4Addr::new(203, 0, 113, (i % 200) as u8),
                    1,
                    2,
                    TcpFlags::ACK,
                    vec![0u8; 40],
                );
                p.ip.ident = i as u16;
                p.fill_checksums();
                w.write_bytes(u64::from(i) * 1_000, &p.emit()).unwrap();
            }
            w.finish().unwrap();
        }
        let path = std::env::temp_dir().join(format!(
            "loopdetect_convert_parallel_{}.pcap",
            std::process::id()
        ));
        std::fs::write(&path, &buf).unwrap();
        let (serial, serial_skipped) = records_from_pcap(Cursor::new(buf)).unwrap();
        for threads in [1, 2, 4, 8] {
            let (parallel, skipped) = records_from_pcap_parallel(&path, threads).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(serial_skipped, skipped, "threads={threads}");
        }
        let _ = std::fs::remove_file(&path);
    }
}
