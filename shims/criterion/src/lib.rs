//! Std-only shim for the subset of the `criterion` benchmarking API this
//! workspace uses. The build environment has no crates.io access, so this
//! crate keeps the bench sources compiling and *running* — each benchmark
//! is timed with `std::time::Instant` over a fixed number of samples and a
//! one-line summary (median, mean, throughput when declared) is printed to
//! stdout. There is no statistical analysis, HTML report, or baseline
//! comparison.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (shim of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Declares per-iteration throughput, reported as elements or bytes
    /// per second.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let full = format!("{}/{}", self.name, id.0);
        run_bench(
            &full,
            self.sample_size.unwrap_or(10),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_bench(
            &full,
            self.sample_size.unwrap_or(10),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in this shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// Per-iteration data volume for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (shim of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, untimed.
        std::hint::black_box(routine());
        let n = self.samples.capacity();
        for _ in 0..n {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t0.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_bench(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let rate = throughput
        .map(|t| {
            let secs = median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / secs),
                Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / secs),
            }
        })
        .unwrap_or_default();
    println!("{name:<44} median {median:>12?}  mean {mean:>12?}{rate}");
}

/// Prevents the optimiser from discarding a value (re-export of
/// `std::hint::black_box` under criterion's name).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, in either upstream form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
