//! Std-only shim for the subset of the `bytes` crate this workspace uses:
//! the [`Bytes`] type as a cheaply-cloneable, immutable byte buffer. Backed
//! by either a `&'static` slice or an `Arc<[u8]>`, so clones are O(1) and
//! never copy, matching the property the real crate is used for.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Self {
            inner: Inner::Static(&[]),
        }
    }

    /// Creates a `Bytes` borrowing a static slice (no allocation).
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            inner: Inner::Static(bytes),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            inner: Inner::Shared(Arc::from(data)),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            inner: Inner::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Self::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        let c = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b[1], 2);
    }
}
