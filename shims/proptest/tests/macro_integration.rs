//! Integration tests for the `proptest!` macro surface this workspace uses.

use proptest::prelude::*;

proptest! {
    #[test]
    fn tuple_of_vecs(
        packets in proptest::collection::vec(
            (any::<u64>().prop_map(|t| t % 10_000),
             proptest::collection::vec(any::<u8>(), 0..200)),
            0..50,
        ),
        snaplen in 1u32..300,
    ) {
        prop_assert!(packets.len() < 50);
        for (ts, bytes) in &packets {
            prop_assert!(*ts < 10_000);
            prop_assert!(bytes.len() < 200);
        }
        prop_assert!((1..300).contains(&snaplen));
    }

    /// Doc comments and assume/skip behaviour.
    #[test]
    fn assume_skips(n in 0u8..10) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn config_form(x in any::<u16>(), y in 0usize..=4) {
        prop_assert_ne!(usize::from(x) + y + 1, 0);
    }
}
