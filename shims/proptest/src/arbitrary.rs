//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{FFFD}')
        } else {
            (rng.below(0x5F) as u8 + 0x20) as char
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
