//! Std-only shim for the subset of `proptest` used by this workspace's
//! property tests. The build environment has no crates.io access; this
//! crate keeps the call-site API (the `proptest!` macro, `Strategy`
//! combinators, `any`, ranges, tuples, `collection::vec`, the
//! `prop_assert*` family) while replacing the engine with a simple
//! deterministic random-case runner.
//!
//! Differences from upstream, deliberate and documented:
//!
//! - **No shrinking.** A failing case panics with the generated inputs via
//!   the standard assertion message; there is no minimisation pass.
//! - **Deterministic seeding.** Each test derives its seed from its own
//!   name (FNV-1a), so runs are reproducible without a regressions file;
//!   `*.proptest-regressions` files are ignored.
//! - **`prop_assume!` skips the case** without drawing a replacement, so a
//!   run executes *at most* the configured number of cases.
//!
//! The number of cases per test defaults to 64 and can be overridden
//! globally with the `PROPTEST_CASES` environment variable or per-test via
//! `ProptestConfig::with_cases`.

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod test_runner;

/// Convenience re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The random source driving generation (xorshift-multiply; deterministic
/// per seed).
pub use test_runner::TestRng;

/// Runs `case` over `cfg.cases` values drawn from `strat` — the engine
/// behind the `proptest!` macro. Public so the macro expansion can reach
/// it; the fn signature also gives the per-case closure its parameter type
/// (closure bodies are type-checked against the expected `FnMut(S::Value)`
/// before any call site would constrain them).
pub fn run_cases<S: strategy::Strategy>(
    cfg: &test_runner::ProptestConfig,
    strat: &S,
    rng: &mut TestRng,
    mut case: impl FnMut(S::Value),
) {
    for _ in 0..cfg.cases {
        case(strat.generate(rng));
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Defines property tests: each `fn` runs its body over generated inputs.
///
/// Supports the two upstream forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop(x in 0u8..10, v in any::<u16>()) { ... }
/// }
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u8..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @munch ($cfg) $($rest)* }
    };
    (@munch ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strat = ($($strat,)+);
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                // `prop_assume!`'s `return` skips just the current case by
                // returning from the per-case closure.
                $crate::run_cases(&config, &strat, &mut rng, |($($pat,)+)| $body);
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @munch ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}
