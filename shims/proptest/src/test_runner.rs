//! Case-count configuration and the deterministic random source.

/// Per-test configuration (shim of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string — used by `proptest!` to derive a
    /// stable per-test seed from the test's full path.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Seeds directly.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}
