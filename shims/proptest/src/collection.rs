//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A number-of-elements specification: an exact count, a half-open range,
/// or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.hi_inclusive - self.size.lo + 1;
        let n = self.size.lo + rng.below(span as u64) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::from_seed(9);
        let exact = vec(any::<u8>(), 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
        let ranged = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let n = ranged.generate(&mut rng).len();
            assert!((2..5).contains(&n));
        }
        let inclusive = vec(any::<u8>(), 0..=3);
        for _ in 0..100 {
            assert!(inclusive.generate(&mut rng).len() <= 3);
        }
    }
}
