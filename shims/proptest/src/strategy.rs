//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// How many times a filtered strategy retries before giving up.
const MAX_FILTER_RETRIES: u32 = 10_000;

/// A recipe for generating values of one type (shrinking-free shim of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it,
    /// and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying with fresh draws.
    ///
    /// `whence` names the filter in the panic message should generation
    /// fail `MAX_FILTER_RETRIES` times in a row.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected every candidate", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u8..10).prop_map(|v| v * 2);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn flat_map_chains() {
        let mut rng = TestRng::from_seed(2);
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(any::<u8>(), n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::from_seed(3);
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..1000 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::from_seed(4);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
