//! Std-only shim for the subset of the `rand` 0.8 API used by this
//! workspace. The build environment has no crates.io access, so this crate
//! provides a deterministic, seedable pseudo-random generator with the same
//! call-site surface: `StdRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen`, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not
//! cryptographic, but statistically solid for simulation and test use.
//! Sequences differ from upstream `rand`; every consumer in this workspace
//! seeds explicitly and asserts distributional (not sequence-exact)
//! properties, so that is fine.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values uniformly sampleable over a range (shim for `rand::distributions`
/// machinery; only what `gen_range` needs).
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, low, high)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((low as i128).wrapping_add(v as i128)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((low as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Types producible by [`Rng::gen`] (shim for the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::draw(rng))
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        T: SampleUniform,
        Rge: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Draws a value of any [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
