//! Quickstart: build a three-router network, open a transient loop by
//! hand, capture the monitored link, and run the paper's detector.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use routing_loops::convert::records_from_tap;
use routing_loops::loopscope::{Detector, DetectorConfig};
use routing_loops::net_types::{Ipv4Prefix, Packet, TcpFlags};
use routing_loops::simnet::{Engine, Route, SimConfig, SimDuration, SimTime, TopologyBuilder};
use std::net::Ipv4Addr;

fn main() {
    // 1. A tiny network: src -> c1 <-> c2 -> edge (owning 203.0.113.0/24).
    let mut b = TopologyBuilder::new();
    let src = b.node("src", Ipv4Addr::new(10, 0, 0, 1));
    let c1 = b.node("c1", Ipv4Addr::new(10, 0, 0, 2));
    let c2 = b.node("c2", Ipv4Addr::new(10, 0, 0, 3));
    let edge = b.node("edge", Ipv4Addr::new(10, 0, 0, 4));
    let prefix: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
    b.attach_prefix(edge, prefix);
    let (l_src_c1, _) = b.duplex(src, c1, 622_000_000, SimDuration::from_micros(500));
    let (l_c1_c2, l_c2_c1) = b.duplex(c1, c2, 622_000_000, SimDuration::from_millis(2));
    let (l_c2_edge, _) = b.duplex(c2, edge, 622_000_000, SimDuration::from_micros(500));
    let topo = b.build();

    // 2. Steady-state routes, then a scripted inconsistency: at t = 1 s the
    //    c2 -> edge link fails and c2 points back at c1 (it has stale
    //    knowledge of an alternative), while c1 keeps pointing at c2 until
    //    t = 1.25 s. That 250 ms disagreement is a transient routing loop.
    let mut engine = Engine::new(topo, SimConfig::default());
    engine.install_route(src, prefix, Route::Link(l_src_c1));
    engine.install_route(c1, prefix, Route::Link(l_c1_c2));
    engine.install_route(c2, prefix, Route::Link(l_c2_edge));
    engine.schedule_link_down(SimTime::from_secs(1), l_c2_edge);
    engine.schedule_fib_insert(SimTime::from_secs(1), c2, prefix, Route::Link(l_c2_c1));
    engine.schedule_fib_remove(SimTime::from_millis(1_250), c1, prefix);

    // 3. A packet stream into the doomed prefix, 1 packet per 10 ms.
    let mut t = SimTime::ZERO;
    let mut ident = 0u16;
    while t < SimTime::from_secs(2) {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 64, 0, 7),
            Ipv4Addr::new(203, 0, 113, 42),
            40_000,
            80,
            TcpFlags::ACK,
            vec![0u8; 512],
        );
        p.ip.ident = ident;
        p.ip.ttl = 61;
        p.fill_checksums();
        engine.schedule_inject(t, src, p);
        ident = ident.wrapping_add(1);
        t += SimDuration::from_millis(10);
    }

    // 4. Monitor the c1 -> c2 link, run, and hand the trace to the
    //    detector — exactly the paper's §IV pipeline.
    engine.add_tap(l_c1_c2);
    let report = engine.run();
    let records = records_from_tap(&engine.taps()[0]);
    let detection = Detector::new(DetectorConfig::default()).run(&records);

    println!("monitored link saw {} packets", records.len());
    println!(
        "engine: {} delivered, {} dropped ({} TTL-expired)",
        report.delivered,
        report.total_drops(),
        report.drop_count(routing_loops::simnet::DropCause::TtlExpired),
    );
    println!(
        "detector: {} raw candidates -> {} validated replica streams -> {} routing loop(s)",
        detection.stats.raw_candidates,
        detection.streams.len(),
        detection.loops.len(),
    );
    for (i, s) in detection.streams.iter().enumerate().take(5) {
        println!(
            "  stream {i}: dst {} ident {:#06x}, {} replicas, TTL {} -> {} (delta {}), \
             spacing {:.2} ms, duration {:.1} ms",
            s.key.dst,
            s.key.ident,
            s.len(),
            s.first_ttl(),
            s.last_ttl(),
            s.ttl_delta(),
            s.mean_spacing_ns() as f64 / 1e6,
            s.duration_ns() as f64 / 1e6,
        );
    }
    if let Some(l) = detection.loops.first() {
        println!(
            "loop on {}: [{:.3} s, {:.3} s], {} streams, {} replicas",
            l.prefix,
            l.start_ns as f64 / 1e9,
            l.end_ns as f64 / 1e9,
            l.num_streams(),
            l.replica_count(),
        );
    }
}
