//! Full backbone workload: simulate one of the paper-shaped backbone
//! links (IGP failures, EGP withdrawals, calibrated traffic), detect loops
//! in the tapped trace, and compare against the control-plane ground
//! truth.
//!
//! ```text
//! cargo run --release --example backbone_failure
//! ```

use routing_loops::backbone::{paper_backbones, run_backbone};
use routing_loops::loopscope::{analysis, impact, Detector, DetectorConfig};

fn main() {
    // Backbone 1 at 20% scale: ~1 simulated minute, a few failures.
    let mut spec = paper_backbones(0.2).remove(0);
    spec.name = "Backbone 1 (demo scale)".into();
    println!("simulating {} …", spec.name);
    let run = run_backbone(&spec);

    let detection = Detector::new(DetectorConfig::default()).run(&run.records);
    let summary = analysis::trace_summary(&run.records, &detection.streams);

    println!(
        "trace: {:.1} s, {} packets, {:.1} Mbps average",
        summary.duration_ns as f64 / 1e9,
        summary.total_packets,
        summary.avg_bandwidth_bps / 1e6,
    );
    println!(
        "detector: {} replica streams from {} unique looping packets, merged into {} loops",
        detection.streams.len(),
        detection.looped_unique_packets(),
        detection.loops.len(),
    );

    // TTL delta distribution (Figure 2's shape: delta 2 dominates).
    let deltas = analysis::ttl_delta_distribution(&detection.streams);
    for (delta, count) in deltas.iter() {
        println!(
            "  TTL delta {delta}: {count} streams ({:.1}%)",
            deltas.fraction(delta) * 100.0
        );
    }

    // Ground truth: the scenario compiler knows exactly when each prefix's
    // forwarding graph was cyclic.
    println!(
        "ground truth: {} loop windows from the control-plane schedule",
        run.compiled.windows.len()
    );
    for w in run.compiled.windows.iter().take(8) {
        println!(
            "  window on {}: {:.3} s .. {}",
            w.prefix,
            w.start.as_secs_f64(),
            w.end
                .map(|e| format!("{:.3} s", e.as_secs_f64()))
                .unwrap_or_else(|| "open".into()),
        );
    }

    // Agreement check: every detected loop should overlap a window.
    let slack = 200_000_000u64;
    let inside = detection
        .loops
        .iter()
        .filter(|l| {
            run.compiled.windows.iter().any(|w| {
                l.start_ns + slack >= w.start.as_nanos()
                    && w.end.is_none_or(|e| l.end_ns <= e.as_nanos() + slack)
            })
        })
        .count();
    println!(
        "agreement: {inside}/{} detected loops fall inside ground-truth windows",
        detection.loops.len()
    );

    // §VI impact numbers.
    let est = impact::escape_estimate(&detection.streams);
    let escaped = run.report.deliveries.iter().filter(|d| d.looped).count();
    println!(
        "impact: {} looping packets died on trace evidence; engine says {} escaped their loop",
        est.died, escaped
    );
}
