//! Analyse a pcap file — the deployment path for real traces.
//!
//! Without arguments the example writes its own demo trace first (a
//! simulated backbone tap exported at the paper's 40-byte snap length) and
//! then analyses it, so it runs out of the box:
//!
//! ```text
//! cargo run --release --example pcap_analysis            # self-contained demo
//! cargo run --release --example pcap_analysis -- my.pcap # your own capture
//! cargo run --release --example pcap_analysis -- --emit-demo demo.pcap
//!                                # write the demo trace and exit (fixture
//!                                # generation for scripts/check.sh)
//! ```

use routing_loops::backbone::{paper_backbones, run_backbone};
use routing_loops::convert::{records_from_pcap, write_tap_to_pcap, PAPER_SNAPLEN};
use routing_loops::loopscope::{analysis, Detector, DetectorConfig};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn write_demo_trace(path: &std::path::Path) {
    let mut spec = paper_backbones(0.1).remove(2); // Backbone 3, small
    spec.name = "pcap demo".into();
    let run = run_backbone(&spec);
    let file = File::create(path).expect("create pcap");
    let written =
        write_tap_to_pcap(&run.tap, PAPER_SNAPLEN, BufWriter::new(file)).expect("write pcap");
    println!("wrote {written} records at snaplen {PAPER_SNAPLEN}");
}

fn main() {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--emit-demo") {
        let dest = std::env::args().nth(2).expect("--emit-demo needs a path");
        write_demo_trace(std::path::Path::new(&dest));
        return;
    }
    let path = match &arg {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let p = std::env::temp_dir().join("routing_loops_demo.pcap");
            println!("no pcap given — writing demo trace to {}", p.display());
            write_demo_trace(&p);
            p
        }
    };

    let file = File::open(&path).expect("open pcap");
    let (records, skipped) = records_from_pcap(BufReader::new(file)).expect("parse pcap");
    println!(
        "{}: {} records ({} unparseable skipped)",
        path.display(),
        records.len(),
        skipped
    );

    let detection = Detector::new(DetectorConfig::default()).run(&records);
    let summary = analysis::trace_summary(&records, &detection.streams);
    println!(
        "{:.1} s of trace, {:.2} Mbps average",
        summary.duration_ns as f64 / 1e9,
        summary.avg_bandwidth_bps / 1e6
    );
    println!(
        "{} replica streams, {} routing loops, {} looped packets",
        detection.streams.len(),
        detection.loops.len(),
        detection.looped_unique_packets()
    );
    for l in detection.loops.iter().take(10) {
        println!(
            "  loop on {}: {:.3} s .. {:.3} s ({} streams, TTL delta {})",
            l.prefix,
            l.start_ns as f64 / 1e9,
            l.end_ns as f64 / 1e9,
            l.num_streams(),
            l.ttl_delta(),
        );
    }
}
