//! Streaming detection: watch loops get flagged *as the trace plays*,
//! instead of after an offline pass — the operational mode an ISP NOC
//! would run.
//!
//! ```text
//! cargo run --release --example online_monitor
//! cargo run --release --example online_monitor -- 200
//!                     # …with live telemetry JSONL every 200 ms on stderr
//! ```

use routing_loops::backbone::{paper_backbones, run_backbone};
use routing_loops::loopscope::online::{OnlineDetector, OnlineEvent};
use routing_loops::loopscope::{Detector, DetectorConfig};
use routing_loops::telemetry;

fn main() {
    // An optional millisecond interval turns on the live exporter — the
    // same sampler `loopdetect --metrics-interval` uses, here monitoring
    // the streaming detector's own counters while the replay runs.
    let sampler = std::env::args().nth(1).map(|ms| {
        let ms: u64 = ms.parse().expect("argument must be an interval in ms");
        telemetry::export::Sampler::spawn(
            telemetry::global(),
            std::time::Duration::from_millis(ms.max(1)),
            Box::new(telemetry::export::JsonlConsumer::new(std::io::stderr())),
        )
    });
    let mut spec = paper_backbones(0.15).remove(0);
    spec.name = "online demo".into();
    println!("simulating a backbone link with failures …");
    let run = run_backbone(&spec);
    println!(
        "replaying {} trace records through the streaming detector\n",
        run.records.len()
    );

    let mut det = OnlineDetector::new(DetectorConfig::default());
    let mut n_streams = 0usize;
    let mut n_loops = 0usize;
    for rec in &run.records {
        for event in det.push(rec) {
            match event {
                OnlineEvent::Stream(s) => {
                    n_streams += 1;
                    if n_streams <= 8 {
                        println!(
                            "[{:9.3}s] stream: dst {} looped {}x (TTL {} -> {}, delta {})",
                            rec.timestamp_ns as f64 / 1e9,
                            s.key.dst,
                            s.len(),
                            s.first_ttl(),
                            s.last_ttl(),
                            s.ttl_delta(),
                        );
                    }
                }
                OnlineEvent::Loop(l) => {
                    n_loops += 1;
                    println!(
                        "[{:9.3}s] *** ROUTING LOOP on {}: {:.3}s, {} packets trapped ***",
                        rec.timestamp_ns as f64 / 1e9,
                        l.prefix,
                        l.duration_ns() as f64 / 1e9,
                        l.num_streams(),
                    );
                }
            }
        }
    }
    let (tail, stats) = det.finish();
    for event in &tail {
        if let OnlineEvent::Loop(l) = event {
            n_loops += 1;
            println!(
                "[  at end  ] *** ROUTING LOOP on {}: {:.3}s, {} packets trapped ***",
                l.prefix,
                l.duration_ns() as f64 / 1e9,
                l.num_streams(),
            );
        }
    }
    n_streams += tail
        .iter()
        .filter(|e| matches!(e, OnlineEvent::Stream(_)))
        .count();

    println!(
        "\nstreaming totals: {n_streams} validated streams, {n_loops} loops \
         ({} candidates examined, {} short-rejected, {} co-loop-rejected)",
        stats.raw_candidates, stats.rejected_short, stats.rejected_covalidation
    );

    // Cross-check against the offline pass.
    let offline = Detector::new(DetectorConfig::default()).run(&run.records);
    println!(
        "offline cross-check: {} streams, {} loops — {}",
        offline.streams.len(),
        offline.loops.len(),
        if offline.streams.len() == n_streams && offline.loops.len() == n_loops {
            "identical"
        } else {
            "MISMATCH (bug!)"
        }
    );

    if let Some(s) = sampler {
        s.stop().expect("metrics export failed");
    }
}
