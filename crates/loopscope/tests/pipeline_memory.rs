//! Bounded-memory guarantee for the streaming pipeline: peak live heap
//! while detecting and analysing a trace must not scale with trace length.
//! A counting global allocator tracks live bytes; the same synthetic
//! workload (fixed 64 destination /24s, fixed loop content, growing
//! background traffic) runs at N and 4N records, and the peak-heap delta
//! of the long run must stay within a constant factor of the short one —
//! not the 4x a buffering implementation would show.

use loopscope::analysis::AnalysisAccumulator;
use loopscope::pipeline::{
    run_pipeline, PipelineError, RecordSource, Sink, SourceSummary, StreamingEngine,
};
use loopscope::{DetectorConfig, PipelineResult, TraceRecord};
use net_types::{Packet, TcpFlags};
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicIsize, Ordering};

struct CountingAlloc;

static LIVE: AtomicIsize = AtomicIsize::new(0);
static PEAK: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live =
                LIVE.fetch_add(layout.size() as isize, Ordering::SeqCst) + layout.size() as isize;
            PEAK.fetch_max(live, Ordering::SeqCst);
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        LIVE.fetch_sub(layout.size() as isize, Ordering::SeqCst);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak live-heap growth (bytes above the starting level) while `f` runs.
fn peak_during<R>(f: impl FnOnce() -> R) -> (isize, R) {
    let before = LIVE.load(Ordering::SeqCst);
    PEAK.store(before, Ordering::SeqCst);
    let r = f();
    (PEAK.load(Ordering::SeqCst) - before, r)
}

const BATCH: usize = 512;
const SPACING_NS: u64 = 1_000_000; // one background record per ms
const LOOPS: usize = 8;

/// Generates records on the fly — never holds more than one batch — so the
/// only O(trace) state anywhere in the run would have to be the pipeline's.
struct SynthSource {
    total: usize,
    templates: Vec<TraceRecord>, // one background packet per /24
    loop_records: Vec<TraceRecord>,
}

impl SynthSource {
    fn new(total: usize) -> Self {
        let mut templates = Vec::new();
        for i in 0..64u8 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 3, i, 1),
                Ipv4Addr::new(10, i, 0, 9),
                50_000,
                443,
                TcpFlags::ACK,
                &b"bg"[..],
            );
            p.ip.ttl = 57;
            p.fill_checksums();
            templates.push(TraceRecord::from_packet(0, &p));
        }
        // Fixed loop content near the trace start: 8 loops of 5 sightings.
        let mut loop_records = Vec::new();
        for j in 0..LOOPS {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 5, 0, 1),
                Ipv4Addr::new(203, 0, j as u8, 7),
                40_000,
                80,
                TcpFlags::ACK,
                &b"lp"[..],
            );
            p.ip.ident = 700 + j as u16;
            p.ip.ttl = 60;
            p.fill_checksums();
            let base = 5_000_000 + j as u64 * 60_000_000;
            for k in 0..5u64 {
                if k > 0 {
                    assert!(p.ip.decrement_ttl());
                    assert!(p.ip.decrement_ttl());
                }
                loop_records.push(TraceRecord::from_packet(base + k * 3_000_000, &p));
            }
        }
        Self {
            total,
            templates,
            loop_records,
        }
    }
}

impl RecordSource for SynthSource {
    fn for_each_batch(
        &mut self,
        f: &mut dyn FnMut(&[TraceRecord]) -> Result<(), PipelineError>,
    ) -> Result<SourceSummary, PipelineError> {
        let mut batch: Vec<TraceRecord> = Vec::with_capacity(BATCH);
        let mut loop_iter = self.loop_records.iter().copied().peekable();
        let mut emitted = 0u64;
        let mut i = 0usize;
        while i < self.total {
            batch.clear();
            while i < self.total && batch.len() < BATCH {
                let ts = i as u64 * SPACING_NS;
                // Interleave the fixed loop sightings at their timestamps.
                while loop_iter.peek().is_some_and(|r| r.timestamp_ns <= ts) {
                    batch.push(loop_iter.next().unwrap());
                    emitted += 1;
                }
                let mut rec = self.templates[i % self.templates.len()];
                rec.timestamp_ns = ts;
                rec.ident = (i / self.templates.len()) as u16;
                batch.push(rec);
                emitted += 1;
                i += 1;
            }
            f(&batch)?;
        }
        let tail: Vec<TraceRecord> = loop_iter.collect();
        if !tail.is_empty() {
            emitted += tail.len() as u64;
            f(&tail)?;
        }
        Ok(SourceSummary {
            records: emitted,
            skipped: 0,
        })
    }
}

/// A tight horizon so eviction is active well inside the short run — the
/// default (merge gap 60 s) would need hours of trace to exercise it.
fn cfg() -> DetectorConfig {
    DetectorConfig {
        max_replica_gap_ns: 50_000_000,
        merge_gap_ns: 1_000_000_000,
        ..DetectorConfig::default()
    }
}

#[test]
fn streaming_peak_memory_does_not_scale_with_trace_length() {
    let n = 60_000usize;

    // Warm-up run so one-time allocations (thread-locals, hash seeds,
    // telemetry registries) don't count against the short run.
    let _ = detect_inner(n / 4);

    let (peak_short, short) = detect_inner(n);
    let (peak_long, long) = detect_inner(4 * n);

    // Same loop content regardless of trace length.
    assert_eq!(short.loops.len(), long.loops.len());
    assert_eq!(short.streams, long.streams);
    assert!(!short.loops.is_empty(), "fixture must contain loops");
    assert_eq!(long.records, short.records + 3 * n as u64);

    // The long run processed 4x the records; a buffering pipeline would
    // peak at ~4x the heap. Bounded streaming must stay within 2x (slack
    // for allocator noise and hash-map growth steps).
    assert!(
        peak_long < peak_short * 2 + (64 << 10),
        "peak heap scales with trace length: {peak_short} B at {n} records, \
         {peak_long} B at {} records",
        4 * n
    );
}

fn detect_inner(total: usize) -> (isize, PipelineResult) {
    peak_during(|| {
        let mut source = SynthSource::new(total);
        let mut engine = StreamingEngine::new(cfg());
        let mut acc = AnalysisAccumulator::new();
        let mut sinks: Vec<&mut dyn Sink> = vec![&mut acc];
        run_pipeline(&mut source, &mut engine, &mut sinks).expect("pipeline run")
    })
}
