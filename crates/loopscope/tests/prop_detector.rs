//! Property tests for the detection pipeline's core invariants.

use loopscope::{Detector, DetectorConfig, TraceRecord};
use net_types::{Packet, TcpFlags};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Builds the tap view of one packet circulating a loop: `n` sightings,
/// TTL dropping by `delta` each, spaced `spacing_ns` apart.
#[allow(clippy::too_many_arguments)]
fn loop_sightings(
    start_ns: u64,
    spacing_ns: u64,
    first_ttl: u8,
    delta: u8,
    n: usize,
    ident: u16,
    dst: Ipv4Addr,
    src_octet: u8,
) -> Vec<TraceRecord> {
    let mut p = Packet::tcp_flags(
        Ipv4Addr::new(100, src_octet, 0, 1),
        dst,
        40000,
        80,
        TcpFlags::ACK,
        &b"x"[..],
    );
    p.ip.ident = ident;
    p.ip.ttl = first_ttl;
    p.fill_checksums();
    let mut out = Vec::new();
    for k in 0..n {
        if k > 0 {
            for _ in 0..delta {
                assert!(p.ip.decrement_ttl());
            }
        }
        out.push(TraceRecord::from_packet(
            start_ns + k as u64 * spacing_ns,
            &p,
        ));
    }
    out
}

proptest! {
    /// A clean n-sighting loop yields exactly one validated stream with n
    /// replicas and the right delta — for any loop size, spacing, and
    /// starting TTL that fits.
    #[test]
    fn clean_loop_detected_exactly(
        delta in 2u8..9,
        n in 3usize..20,
        ttl_head in 0u8..60,
        spacing_ms in 1u64..200,
        ident in any::<u16>(),
    ) {
        let first_ttl = (delta as usize * n + ttl_head as usize).min(255) as u8;
        prop_assume!(first_ttl as usize >= delta as usize * n);
        let recs = loop_sightings(
            1_000,
            spacing_ms * 1_000_000,
            first_ttl,
            delta,
            n,
            ident,
            Ipv4Addr::new(203, 0, 113, 7),
            1,
        );
        let result = Detector::new(DetectorConfig {
            // Spacings up to 200 ms exceed the default 1 s gap? No — but
            // stay explicit about the bound the property relies on.
            max_replica_gap_ns: 1_000_000_000,
            ..DetectorConfig::default()
        })
        .run(&recs);
        prop_assert_eq!(result.streams.len(), 1);
        let s = &result.streams[0];
        prop_assert_eq!(s.len(), n);
        prop_assert_eq!(s.ttl_delta(), delta);
        prop_assert_eq!(s.first_ttl(), first_ttl);
        prop_assert_eq!(result.loops.len(), 1);
        prop_assert_eq!(result.loops[0].replica_count(), n);
    }

    /// Ordinary (non-looping) traffic never produces streams, whatever the
    /// flow structure: idents all distinct.
    #[test]
    fn distinct_idents_never_detected(
        n in 1usize..200,
        ttl in 2u8..255,
        base_ident in any::<u16>(),
    ) {
        let mut recs = Vec::new();
        for i in 0..n {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 0, 0, 1),
                Ipv4Addr::new(203, 0, 113, 7),
                40000,
                80,
                TcpFlags::ACK,
                &b"x"[..],
            );
            p.ip.ident = base_ident.wrapping_add(i as u16);
            p.ip.ttl = ttl;
            p.fill_checksums();
            recs.push(TraceRecord::from_packet(i as u64 * 1_000, &p));
        }
        prop_assume!(n <= 65_536); // no ident wrap
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        prop_assert!(result.streams.is_empty());
        prop_assert_eq!(result.stats.raw_candidates, 0);
    }

    /// Detection distributes over independent loops: running the detector
    /// on k interleaved loops (distinct /24s) finds exactly k streams and
    /// k merged loops.
    #[test]
    fn independent_loops_compose(
        k in 1usize..8,
        n in 3usize..10,
        spacing_ms in 1u64..50,
    ) {
        let mut recs = Vec::new();
        for j in 0..k {
            recs.extend(loop_sightings(
                j as u64 * 777,
                spacing_ms * 1_000_000,
                64,
                2,
                n,
                j as u16,
                Ipv4Addr::new(203, j as u8, 113, 7),
                j as u8,
            ));
        }
        recs.sort_by_key(|r| r.timestamp_ns);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        prop_assert_eq!(result.streams.len(), k);
        prop_assert_eq!(result.loops.len(), k);
        prop_assert_eq!(result.stats.looped_sightings, (k * n) as u64);
    }

    /// Validated streams always have strictly decreasing TTLs, at least
    /// min_ttl_delta apart, and non-decreasing timestamps.
    #[test]
    fn stream_internal_invariants(
        k in 1usize..5,
        n in 3usize..12,
        delta in 2u8..5,
    ) {
        let mut recs = Vec::new();
        for j in 0..k {
            recs.extend(loop_sightings(
                j as u64 * 500,
                2_000_000,
                200,
                delta,
                n,
                j as u16,
                Ipv4Addr::new(198, 51, j as u8, 1),
                j as u8,
            ));
        }
        recs.sort_by_key(|r| r.timestamp_ns);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        for s in &result.streams {
            for w in s.observations.windows(2) {
                prop_assert!(w[0].ttl >= w[1].ttl + 2);
                prop_assert!(w[0].timestamp_ns <= w[1].timestamp_ns);
            }
            // Record indices are consistent with the source records.
            for (obs, &idx) in s.observations.iter().zip(&s.record_indices) {
                prop_assert_eq!(recs[idx].ttl, obs.ttl);
                prop_assert_eq!(recs[idx].timestamp_ns, obs.timestamp_ns);
            }
        }
    }

    /// Merged loops partition the validated streams: every stream lands in
    /// exactly one loop, loops of the same prefix do not overlap, and loop
    /// intervals cover their member streams.
    #[test]
    fn merge_partitions_streams(
        k in 1usize..6,
        n in 3usize..8,
        gap_s in 0u64..120,
    ) {
        let mut recs = Vec::new();
        // Same /24, sequential bursts separated by gap_s.
        for j in 0..k {
            recs.extend(loop_sightings(
                j as u64 * gap_s * 1_000_000_000 + j as u64,
                1_000_000,
                64,
                2,
                n,
                j as u16,
                Ipv4Addr::new(203, 0, 113, 7),
                j as u8,
            ));
        }
        recs.sort_by_key(|r| r.timestamp_ns);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        let total_in_loops: usize = result.loops.iter().map(|l| l.num_streams()).sum();
        prop_assert_eq!(total_in_loops, result.streams.len());
        for l in &result.loops {
            prop_assert!(l.start_ns <= l.end_ns);
            for s in &l.streams {
                prop_assert!(s.start_ns() >= l.start_ns);
                prop_assert!(s.end_ns() <= l.end_ns);
                prop_assert_eq!(s.dst_slash24(), l.prefix);
            }
        }
        // Same-prefix loops are disjoint and ordered.
        for w in result.loops.windows(2) {
            if w[0].prefix == w[1].prefix {
                prop_assert!(w[0].end_ns < w[1].start_ns);
            }
        }
    }
}

mod online_equivalence {
    use super::*;
    use loopscope::online::{run_streaming, OnlineEvent};

    proptest! {
        /// The streaming detector is observationally equivalent to the
        /// offline pipeline: same validated streams, same loop partition.
        #[test]
        fn online_matches_offline(
            k in 1usize..6,
            n in 3usize..12,
            delta in 2u8..5,
            gap_s in 0u64..100,
            noise in 0usize..100,
        ) {
            let mut recs = Vec::new();
            for j in 0..k {
                recs.extend(loop_sightings(
                    j as u64 * (gap_s * 1_000_000_000 + 13),
                    1_000_000,
                    200,
                    delta,
                    n,
                    j as u16,
                    Ipv4Addr::new(203, 0, (j % 3) as u8, 7),
                    j as u8,
                ));
            }
            for i in 0..noise {
                let mut p = Packet::tcp_flags(
                    Ipv4Addr::new(100, 9, 9, 9),
                    Ipv4Addr::new(20, 1, (i % 4) as u8, 1),
                    700,
                    80,
                    TcpFlags::ACK,
                    &b""[..],
                );
                p.ip.ident = i as u16;
                p.fill_checksums();
                recs.push(TraceRecord::from_packet(i as u64 * 37_000_000, &p));
            }
            recs.sort_by_key(|r| r.timestamp_ns);

            let offline = Detector::new(DetectorConfig::default()).run(&recs);
            let (events, stats) = run_streaming(DetectorConfig::default(), &recs);

            let mut streams: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    OnlineEvent::Stream(s) => Some(s),
                    _ => None,
                })
                .collect();
            // Online events arrive in emission order; offline output is
            // sorted. Compare as sets via a canonical order.
            streams.sort_by_key(|s| (s.start_ns(), s.key.ident));
            prop_assert_eq!(streams.len(), offline.streams.len());
            for (a, b) in streams.iter().zip(&offline.streams) {
                prop_assert_eq!(&a.key, &b.key);
                prop_assert_eq!(&a.observations, &b.observations);
            }
            let mut loops: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    OnlineEvent::Loop(l) => Some(l),
                    _ => None,
                })
                .collect();
            loops.sort_by_key(|l| (l.prefix, l.start_ns));
            prop_assert_eq!(loops.len(), offline.loops.len());
            for (a, b) in loops.iter().zip(&offline.loops) {
                prop_assert_eq!(a.prefix, b.prefix);
                prop_assert_eq!(a.start_ns, b.start_ns);
                prop_assert_eq!(a.end_ns, b.end_ns);
                prop_assert_eq!(a.num_streams(), b.num_streams());
            }
            prop_assert_eq!(stats.raw_candidates, offline.stats.raw_candidates);
            prop_assert_eq!(stats.rejected_short, offline.stats.rejected_short);
            prop_assert_eq!(
                stats.rejected_covalidation,
                offline.stats.rejected_covalidation
            );
        }
    }
}

proptest! {
    /// Adversarially forged level-0 collisions — down to *every* record
    /// sharing one fingerprint — never change `DetectionResult` vs the
    /// exact-map-only reference path. The forgery stays a pure function
    /// of the key (the contract ingest upholds: same key ⇒ same
    /// fingerprint) but squeezes all fingerprints into `buckets` values,
    /// so the pre-filter sees nothing but collisions and must escalate
    /// its way to correctness through full key compares.
    #[test]
    fn forced_fingerprint_collisions_never_change_results(
        loops in 1usize..6,
        noise in 0usize..120,
        buckets in 1u64..8,
        spacing_ms in 1u64..50,
    ) {
        let mut recs = Vec::new();
        for i in 0..loops {
            recs.extend(loop_sightings(
                1_000 + i as u64 * 37_000,
                spacing_ms * 1_000_000,
                60,
                2,
                5,
                i as u16,
                Ipv4Addr::new(203, 0, 113, (i % 200) as u8 + 1),
                1,
            ));
        }
        for i in 0..noise {
            // Distinct idents: ordinary traffic, never replicas.
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 9, 0, 1),
                Ipv4Addr::new(198, 51, 100, (i % 200) as u8 + 1),
                3000,
                80,
                TcpFlags::ACK,
                &b"n"[..],
            );
            p.ip.ident = 10_000 + i as u16;
            p.ip.ttl = 57;
            p.fill_checksums();
            recs.push(TraceRecord::from_packet(500 + i as u64 * 293_000, &p));
        }
        recs.sort_by_key(|r| r.timestamp_ns);
        // `% 1` forges fingerprint 0 for every record — also covering the
        // scanner's empty-slot-sentinel normalisation.
        for r in &mut recs {
            r.fingerprint = loopscope::ReplicaKey::of(r).fingerprint() % buckets;
        }
        let on = Detector::new(DetectorConfig::default()).run(&recs);
        let off = Detector::new(DetectorConfig {
            use_prefilter: false,
            ..DetectorConfig::default()
        })
        .run(&recs);
        prop_assert_eq!(&on.streams, &off.streams);
        prop_assert_eq!(&on.loops, &off.loops);
        prop_assert_eq!(&on.looped_flags, &off.looped_flags);
        prop_assert_eq!(on.stats, off.stats);
    }
}
