//! Property test for `OnlineDetector::with_history_horizon` eviction: with
//! the documented safe horizon (merge gap + 256 replica gaps), streaming
//! detection must equal offline detection even when loops and merge gaps
//! straddle the eviction boundary — i.e. when the detector is actively
//! discarding history while the trace is still running.

use loopscope::pipeline::{run_pipeline, SerialEngine, SliceSource, StreamingEngine};
use loopscope::{DetectorConfig, PipelineResult, TraceRecord};
use net_types::{Packet, TcpFlags};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Tight gaps so the safe horizon is short relative to the trace and the
/// eviction path actually runs (default gaps would need hours of trace).
fn tight_cfg() -> DetectorConfig {
    DetectorConfig {
        max_replica_gap_ns: 50_000_000, // 50 ms
        merge_gap_ns: 1_000_000_000,    // 1 s
        ..DetectorConfig::default()
    }
}

fn safe_horizon(cfg: &DetectorConfig) -> u64 {
    cfg.merge_gap_ns + cfg.max_replica_gap_ns.saturating_mul(256)
}

/// `n` sightings of one looping packet, TTL dropping by `delta` each.
fn loop_sightings(
    start_ns: u64,
    spacing_ns: u64,
    n: usize,
    ident: u16,
    dst: Ipv4Addr,
) -> Vec<TraceRecord> {
    let delta = 2u8;
    let mut p = Packet::tcp_flags(
        Ipv4Addr::new(100, 7, 0, 1),
        dst,
        40_000,
        80,
        TcpFlags::ACK,
        &b"x"[..],
    );
    p.ip.ident = ident;
    p.ip.ttl = 64;
    p.fill_checksums();
    let mut out = Vec::new();
    for k in 0..n {
        if k > 0 {
            for _ in 0..delta {
                assert!(p.ip.decrement_ttl());
            }
        }
        out.push(TraceRecord::from_packet(
            start_ns + k as u64 * spacing_ns,
            &p,
        ));
    }
    out
}

/// Non-looping background packet to `dst` at `ts`.
fn background(ts: u64, ident: u16, dst: Ipv4Addr) -> TraceRecord {
    let mut p = Packet::tcp_flags(
        Ipv4Addr::new(100, 9, 0, 1),
        dst,
        50_000,
        443,
        TcpFlags::ACK,
        &b"y"[..],
    );
    p.ip.ident = ident;
    p.ip.ttl = 57;
    p.fill_checksums();
    TraceRecord::from_packet(ts, &p)
}

fn run(records: &[TraceRecord], cfg: DetectorConfig, horizon: Option<u64>) -> PipelineResult {
    let mut source = SliceSource::new(records);
    if let Some(h) = horizon {
        run_pipeline(
            &mut source,
            &mut StreamingEngine::new(cfg).with_history_horizon(h),
            &mut [],
        )
    } else {
        run_pipeline(&mut source, &mut SerialEngine::new(cfg), &mut [])
    }
    .expect("in-memory pipeline cannot fail")
}

proptest! {
    /// Loops scattered across a trace many horizons long — with repeat
    /// visits to the same /24 at gaps bracketing the merge gap, so merges
    /// must reach across evicted history — detect identically online.
    #[test]
    fn eviction_preserves_offline_equality(
        // Each entry: (loop start in horizon-quanta milli-fractions,
        // spacing ms, sightings, revisit gap as a fraction of merge gap).
        loops in proptest::collection::vec(
            (0u64..4_000, 2u64..45, 3usize..9, 50u64..200),
            2..6,
        ),
        bg_every_ms in 200u64..900,
    ) {
        let cfg = tight_cfg();
        let horizon = safe_horizon(&cfg);
        let mut records: Vec<TraceRecord> = Vec::new();
        for (i, &(start_frac, spacing_ms, n, revisit_pct)) in loops.iter().enumerate() {
            // Spread starts across ~4 horizons so eviction is active while
            // later loops are still open.
            let start_ns = start_frac * horizon / 1_000;
            let dst = Ipv4Addr::new(203, 0, i as u8, 7);
            records.extend(loop_sightings(start_ns, spacing_ms * 1_000_000, n, 100 + i as u16, dst));
            // A second loop at the same /24, `revisit_pct`% of the merge
            // gap after the first ends: below 100 it must merge, above it
            // must not — both decisions depend on history at the boundary.
            let first_end = start_ns + (n as u64 - 1) * spacing_ms * 1_000_000;
            let revisit_ns = first_end + cfg.merge_gap_ns * revisit_pct / 100;
            records.extend(loop_sightings(revisit_ns, spacing_ms * 1_000_000, n, 200 + i as u16, dst));
        }
        // Background traffic to an unrelated /24 keeps the clock (and the
        // eviction cursor) advancing between loops.
        let span = records.iter().map(|r| r.timestamp_ns).max().unwrap_or(0) + horizon;
        let mut t = 0u64;
        let mut ident = 40_000u16;
        while t < span {
            records.push(background(t, ident, Ipv4Addr::new(198, 51, 100, 9)));
            ident = ident.wrapping_add(1);
            t += bg_every_ms * 1_000_000;
        }
        records.sort_by_key(|r| r.timestamp_ns);

        let offline = run(&records, cfg, None);
        prop_assert!(!offline.streams.is_empty(), "fixture must contain loops");
        let online = run(&records, cfg, Some(horizon));
        prop_assert_eq!(&online.streams, &offline.streams);
        prop_assert_eq!(&online.loops, &offline.loops);
        prop_assert_eq!(online.stats, offline.stats);
    }
}
