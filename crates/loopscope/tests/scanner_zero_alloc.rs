//! Regression guard for the level-0 probe path of the two-level candidate
//! index: pushing a trace of first sightings — the dominant shape of real
//! backbone traffic — through [`CandidateScanner`] must not touch the heap
//! at all once the scanner exists. Every record lands in the pre-filter's
//! inline seed lane; the exact map and its per-candidate `Vec`s are never
//! reached.
//!
//! The guard is a counting [`GlobalAlloc`] wrapper around the system
//! allocator. This file holds exactly one test so no sibling test thread
//! can allocate concurrently and pollute the count; lazily-registered
//! telemetry counters are forced ahead of the measured window by a warm-up
//! scan.

use loopscope::{CandidateScanner, DetectorConfig, TraceRecord};
use net_types::{Packet, TcpFlags};
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// `n` records with pairwise-distinct replica keys (distinct idents and
/// destinations): every push is a first sighting.
fn first_sightings(n: usize) -> Vec<TraceRecord> {
    assert!(n <= usize::from(u16::MAX));
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 1, (i / 251) as u8, 1),
            Ipv4Addr::new(203, (i % 200) as u8, 113, 9),
            4000,
            80,
            TcpFlags::ACK,
            &b"payload"[..],
        );
        p.ip.ident = i as u16;
        p.ip.ttl = 60;
        p.fill_checksums();
        out.push(TraceRecord::from_packet(i as u64 * 1_000, &p));
    }
    out
}

fn scan(records: &[TraceRecord]) -> (u64, u64) {
    // Sized for the whole trace, as `Detector::find_candidates` sizes for
    // its quarter-of-the-trace heuristic: no growth sweep can trigger.
    let mut scanner = CandidateScanner::with_capacity(DetectorConfig::default(), records.len());
    let start = ALLOCATIONS.load(Ordering::Relaxed);
    for (idx, rec) in records.iter().enumerate() {
        scanner.push(idx, rec);
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - start;
    let (done, counters) = scanner.finish();
    assert!(done.is_empty(), "distinct keys must yield no streams");
    assert_eq!(counters.opened, records.len() as u64);
    assert_eq!(counters.discarded, records.len() as u64);
    (counters.opened, allocs)
}

#[test]
fn first_sighting_probe_path_performs_no_allocations() {
    // Warm-up: forces telemetry's lazily-registered counters (touched in
    // `finish`) and any other one-time initialisation outside the
    // measured window.
    let small = first_sightings(64);
    let (warm, _) = scan(&small);
    assert_eq!(warm, 64);

    let records = first_sightings(60_000);
    let (opened, allocs) = scan(&records);
    assert_eq!(opened, 60_000);
    assert_eq!(
        allocs, 0,
        "the level-0 probe path must not allocate per record (saw {allocs} allocations)"
    );
}
