//! Compact trace records: what a 40-byte-snaplen monitor knows about a
//! packet.

use net_types::{Ipv4Header, Ipv4Prefix, Packet, Transport};
use std::net::Ipv4Addr;

/// Everything the detector can see of the transport layer within the first
/// 40 bytes of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportSummary {
    /// TCP header fields.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number.
        seq: u32,
        /// Acknowledgement number.
        ack: u32,
        /// Raw flag byte (low 6 bits).
        flags: u8,
        /// Receive window.
        window: u16,
        /// TCP checksum — the payload-identity proxy.
        checksum: u16,
        /// Urgent pointer.
        urgent: u16,
    },
    /// UDP header fields.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Datagram length.
        length: u16,
        /// UDP checksum — the payload-identity proxy.
        checksum: u16,
    },
    /// ICMP header fields.
    Icmp {
        /// Message type.
        icmp_type: u8,
        /// Message code.
        code: u8,
        /// ICMP checksum — covers the body, so it doubles as the payload
        /// proxy.
        checksum: u16,
        /// Rest-of-header bytes (echo ident/seq).
        rest: [u8; 4],
    },
    /// Anything else: the first 8 bytes after the IP header, zero-padded.
    Other {
        /// Leading post-IP bytes.
        lead: [u8; 8],
        /// How many of `lead` were actually captured.
        len: u8,
    },
}

/// One trace record: timestamp plus the header fields of one captured
/// packet. ~56 bytes, so multi-million-packet traces stay cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Capture timestamp in nanoseconds since the trace epoch.
    pub timestamp_ns: u64,
    /// IP source.
    pub src: Ipv4Addr,
    /// IP destination.
    pub dst: Ipv4Addr,
    /// IP protocol number.
    pub protocol: u8,
    /// IP identification.
    pub ident: u16,
    /// IP total length.
    pub total_len: u16,
    /// Type of service.
    pub tos: u8,
    /// Time to live — the field that *varies* across replicas.
    pub ttl: u8,
    /// Flags/fragment-offset word (DF/MF + 13-bit offset).
    pub frag_word: u16,
    /// IP header checksum — varies with the TTL.
    pub ip_checksum: u16,
    /// Transport summary.
    pub transport: TransportSummary,
    /// Level-0 fingerprint of the replica-key fields
    /// ([`crate::ReplicaKey::fingerprint`]), computed once here at ingest
    /// and carried through shard dispatch so no later stage rehashes the
    /// full key. Zero is a legal (if unlikely) value; the candidate
    /// scanner normalises it away from its empty-slot sentinel.
    pub fingerprint: u64,
}

impl TraceRecord {
    /// Builds a record from a full in-memory packet (simulated taps).
    pub fn from_packet(timestamp_ns: u64, p: &Packet) -> Self {
        let transport = match &p.transport {
            Transport::Tcp(h) => TransportSummary::Tcp {
                src_port: h.src_port,
                dst_port: h.dst_port,
                seq: h.seq,
                ack: h.ack,
                flags: h.flags.0,
                window: h.window,
                checksum: h.checksum,
                urgent: h.urgent,
            },
            Transport::Udp(h) => TransportSummary::Udp {
                src_port: h.src_port,
                dst_port: h.dst_port,
                length: h.length,
                checksum: h.checksum,
            },
            Transport::Icmp(h) => TransportSummary::Icmp {
                icmp_type: h.icmp_type.as_u8(),
                code: h.code,
                checksum: h.checksum,
                rest: h.rest,
            },
            Transport::Opaque(b) => {
                let mut lead = [0u8; 8];
                let n = b.len().min(8);
                lead[..n].copy_from_slice(&b[..n]);
                TransportSummary::Other { lead, len: n as u8 }
            }
        };
        Self {
            timestamp_ns,
            src: p.ip.src,
            dst: p.ip.dst,
            protocol: p.ip.protocol.as_u8(),
            ident: p.ip.ident,
            total_len: p.ip.total_len,
            tos: p.ip.tos,
            ttl: p.ip.ttl,
            frag_word: frag_word(&p.ip),
            ip_checksum: p.ip.checksum,
            transport,
            fingerprint: 0,
        }
        .with_fingerprint()
    }

    /// Parses a record from captured wire bytes (pcap path). The IP header
    /// must be complete; a truncated or missing transport header degrades
    /// to [`TransportSummary::Other`] over whatever bytes exist, rather
    /// than failing — monitors capture what they capture.
    pub fn from_wire_bytes(timestamp_ns: u64, bytes: &[u8]) -> net_types::Result<Self> {
        let (ip, ip_len) = Ipv4Header::parse(bytes)?;
        let body = &bytes[ip_len..];
        let transport = match net_types::IpProtocol::from_u8(ip.protocol.as_u8()) {
            net_types::IpProtocol::Tcp => match net_types::TcpHeader::parse(body) {
                Ok((h, _)) => TransportSummary::Tcp {
                    src_port: h.src_port,
                    dst_port: h.dst_port,
                    seq: h.seq,
                    ack: h.ack,
                    flags: h.flags.0,
                    window: h.window,
                    checksum: h.checksum,
                    urgent: h.urgent,
                },
                Err(_) => other_summary(body),
            },
            net_types::IpProtocol::Udp => match net_types::UdpHeader::parse(body) {
                Ok((h, _)) => TransportSummary::Udp {
                    src_port: h.src_port,
                    dst_port: h.dst_port,
                    length: h.length,
                    checksum: h.checksum,
                },
                Err(_) => other_summary(body),
            },
            net_types::IpProtocol::Icmp => match net_types::IcmpHeader::parse(body) {
                Ok((h, _)) => TransportSummary::Icmp {
                    icmp_type: h.icmp_type.as_u8(),
                    code: h.code,
                    checksum: h.checksum,
                    rest: h.rest,
                },
                Err(_) => other_summary(body),
            },
            _ => other_summary(body),
        };
        Ok(Self {
            timestamp_ns,
            src: ip.src,
            dst: ip.dst,
            protocol: ip.protocol.as_u8(),
            ident: ip.ident,
            total_len: ip.total_len,
            tos: ip.tos,
            ttl: ip.ttl,
            frag_word: frag_word(&ip),
            ip_checksum: ip.checksum,
            transport,
            fingerprint: 0,
        }
        .with_fingerprint())
    }

    /// Stamps [`Self::fingerprint`] from the replica-key fields — the
    /// tail of both constructors, so every record the detector ever sees
    /// carries a fingerprint consistent with its key. Public for code
    /// that materialises records outside the wire constructors (the
    /// columnar corpus, synthetic fixtures).
    pub fn with_fingerprint(mut self) -> Self {
        self.fingerprint = crate::key::ReplicaKey::of(&self).fingerprint();
        self
    }

    /// The destination's /24 — the stream-aggregation unit (§IV-A.2).
    pub fn dst_slash24(&self) -> Ipv4Prefix {
        Ipv4Prefix::slash24_of(self.dst)
    }

    /// The transport checksum used as the payload-identity proxy, when the
    /// transport has one.
    pub fn transport_checksum(&self) -> Option<u16> {
        match self.transport {
            TransportSummary::Tcp { checksum, .. }
            | TransportSummary::Udp { checksum, .. }
            | TransportSummary::Icmp { checksum, .. } => Some(checksum),
            TransportSummary::Other { .. } => None,
        }
    }
}

fn frag_word(ip: &Ipv4Header) -> u16 {
    let mut w = ip.frag_offset & 0x1fff;
    if ip.dont_frag {
        w |= 0x4000;
    }
    if ip.more_frags {
        w |= 0x2000;
    }
    w
}

fn other_summary(body: &[u8]) -> TransportSummary {
    let mut lead = [0u8; 8];
    let n = body.len().min(8);
    lead[..n].copy_from_slice(&body[..n]);
    TransportSummary::Other { lead, len: n as u8 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::{IcmpHeader, IpProtocol, TcpFlags, UdpHeader};

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(100, 1, 1, 1), Ipv4Addr::new(203, 0, 113, 44))
    }

    #[test]
    fn from_packet_and_from_wire_agree() {
        let (src, dst) = addrs();
        let packets = vec![
            Packet::tcp_flags(src, dst, 999, 80, TcpFlags::SYN | TcpFlags::ACK, &b"xy"[..]),
            Packet::udp(src, dst, UdpHeader::new(53, 53), &b"q"[..]),
            Packet::icmp(src, dst, IcmpHeader::echo(true, 7, 3), &b"ping"[..]),
            Packet::opaque(src, dst, IpProtocol::Igmp, vec![0x16, 1, 2, 3]),
        ];
        for p in packets {
            let a = TraceRecord::from_packet(555, &p);
            let b = TraceRecord::from_wire_bytes(555, &p.emit()).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn snaplen_40_keeps_tcp_summary() {
        let (src, dst) = addrs();
        let p = Packet::tcp_flags(src, dst, 5, 6, TcpFlags::ACK, vec![0u8; 1000]);
        let rec = TraceRecord::from_wire_bytes(1, &p.snap(40)).unwrap();
        match rec.transport {
            TransportSummary::Tcp {
                src_port, checksum, ..
            } => {
                assert_eq!(src_port, 5);
                assert_eq!(Some(checksum), p.transport_checksum());
            }
            _ => panic!("expected TCP summary"),
        }
        assert_eq!(rec.total_len, 1040);
        assert_eq!(rec.transport_checksum(), p.transport_checksum());
    }

    #[test]
    fn truncated_transport_degrades_to_other() {
        let (src, dst) = addrs();
        let p = Packet::tcp_flags(src, dst, 5, 6, TcpFlags::ACK, &b""[..]);
        // 30 bytes: full IP header + 10 bytes of TCP.
        let rec = TraceRecord::from_wire_bytes(1, &p.snap(30)).unwrap();
        match rec.transport {
            TransportSummary::Other { len, .. } => assert_eq!(len, 8),
            _ => panic!("expected Other for truncated TCP"),
        }
    }

    #[test]
    fn truncated_ip_header_errors() {
        let (src, dst) = addrs();
        let p = Packet::udp(src, dst, UdpHeader::new(1, 2), &b""[..]);
        assert!(TraceRecord::from_wire_bytes(1, &p.snap(12)).is_err());
    }

    #[test]
    fn dst_slash24() {
        let (src, dst) = addrs();
        let p = Packet::udp(src, dst, UdpHeader::new(1, 2), &b""[..]);
        let rec = TraceRecord::from_packet(0, &p);
        assert_eq!(rec.dst_slash24(), "203.0.113.0/24".parse().unwrap());
    }

    #[test]
    fn frag_word_encodes_flags() {
        let (src, dst) = addrs();
        let mut p = Packet::udp(src, dst, UdpHeader::new(1, 2), &b""[..]);
        p.ip.dont_frag = true;
        p.ip.frag_offset = 0x123;
        p.fill_checksums();
        let rec = TraceRecord::from_packet(0, &p);
        assert_eq!(rec.frag_word, 0x4000 | 0x123);
    }

    #[test]
    fn opaque_lead_padded() {
        let (src, dst) = addrs();
        let p = Packet::opaque(src, dst, IpProtocol::Other(47), vec![9, 8, 7]);
        let rec = TraceRecord::from_packet(0, &p);
        match rec.transport {
            TransportSummary::Other { lead, len } => {
                assert_eq!(len, 3);
                assert_eq!(&lead[..3], &[9, 8, 7]);
                assert_eq!(&lead[3..], &[0; 5]);
            }
            _ => panic!(),
        }
        assert_eq!(rec.transport_checksum(), None);
    }
}
