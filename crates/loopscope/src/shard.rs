//! Sharded parallel detection: the offline pipeline fanned out over
//! `std::thread` workers, with output byte-identical to the serial path.
//!
//! **Status: ablation.** The central dispatcher measured here moves every
//! record across a thread boundary, and on real traces that dispatch cost
//! exceeds the entire serial detection pass — `BENCH_parallel.json`
//! recorded speedups of 0.42–0.95× at every thread count. The production
//! parallel path is [`crate::block::BlockParallelDetector`], which splits
//! the trace into contiguous ranges and moves no records between threads;
//! this ring dispatcher stays behind `loopdetect --engine ring` (and
//! `bench_parallel --engine ring`) as the comparison point that documents
//! *why* the share-nothing design wins.
//!
//! # Why sharding by destination /24 is sound
//!
//! Every stage of the paper's algorithm is keyed no coarser than the
//! destination /24 of the replica key:
//!
//! * **Step 1** (candidate grouping) partitions records by the full
//!   [`ReplicaKey`], which contains the destination address — all
//!   sightings of one key share one /24.
//! * **Step 2**'s co-loop rule consults only packets *to the candidate's
//!   own /24*, and whether those packets are themselves looped is decided
//!   by candidates whose keys carry a destination in that same /24.
//! * **Step 3** merges streams with "identical destination address
//!   prefixes" and its gap-clean rule again only inspects packets to that
//!   prefix.
//!
//! So routing every record to a shard chosen by a **stable hash of its
//! destination /24** gives each worker a self-contained sub-trace: no
//! stage ever needs state held by another shard. Each worker runs the
//! unmodified serial stages on its sub-trace (which preserves the global
//! timestamp order, because the producer feeds shards in trace order),
//! and the per-shard results are concatenated and re-sorted in the
//! deterministic key order the serial pipeline uses. The result —
//! streams, loops, per-record flags, and stage counters — is equal to
//! [`Detector::run`]'s output on every trace, which `tests/pipeline.rs`
//! and the bench determinism guard enforce.
//!
//! Workers are fed through bounded SPSC ring buffers (one per shard,
//! batched to amortise synchronisation), so candidate scanning overlaps
//! with the producer's pass over the trace. Synchronisation is
//! deliberately lock-light: whole batches move through the ring, the
//! consumer drains *everything* buffered under a single lock acquisition
//! (`Ring::pop_all`), and condvar wakeups are **edge-triggered** — the
//! consumer is signalled only on the empty→non-empty transition and the
//! producer only on full→non-full, so the steady-state cost per batch is
//! one uncontended mutex acquire with no syscalls. Everything is
//! std-only: `std::thread`, `Mutex`, `Condvar`.

use crate::config::DetectorConfig;
use crate::key::ReplicaKey;
use crate::merge::{self, RoutingLoop};
use crate::record::TraceRecord;
use crate::replica::{CandidateScanner, DetectionResult, DetectionStats, Detector};
use crate::stream::ReplicaStream;
use crate::validate::{self, PrefixIndex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;
use telemetry::tm_info;
use telemetry::trace::{self, TraceName};

/// Records per batch pushed into a shard ring. Large enough that ring
/// synchronisation is a rounding error next to per-record hash-map work.
const BATCH_RECORDS: usize = 1024;

/// Batches a ring holds before the producer blocks — bounds per-shard
/// buffering at `RING_BATCHES * BATCH_RECORDS` records.
const RING_BATCHES: usize = 8;

/// Stable shard assignment for a replica key: FNV-1a over the key's
/// destination /24, reduced modulo `shards`.
///
/// The hash is a fixed arithmetic function of the address bytes — no
/// per-process seed, no `RandomState` — so the same key lands on the same
/// shard in every run, on every platform, for the life of the format.
pub fn shard_of(key: &ReplicaKey, shards: usize) -> usize {
    shard_of_dst(key.dst, shards)
}

/// [`shard_of`] for a raw record (same function: the replica key's
/// destination is the record's destination).
pub fn shard_of_record(rec: &TraceRecord, shards: usize) -> usize {
    shard_of_dst(rec.dst, shards)
}

fn shard_of_dst(dst: std::net::Ipv4Addr, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    // FNV-1a, 64-bit, over the /24 network bytes (the host byte is
    // masked off so the whole prefix co-locates).
    let net = u32::from(dst) & 0xffff_ff00;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in net.to_be_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// A bounded single-producer single-consumer ring of record batches.
///
/// Blocking (Condvar-based) rather than spinning: the pipeline must
/// degrade gracefully on machines with fewer cores than shards, where a
/// spinning producer would starve the very workers it feeds.
/// Trace span bracketing a producer blocked on a full ring.
static TR_RING_STALL: TraceName = TraceName::new("shard.ring_full_stall");
/// Trace span bracketing a consumer blocked on an empty ring.
static TR_RING_WAIT: TraceName = TraceName::new("shard.ring_wait");
/// Trace instant marking one batch handed to a shard ring.
static TR_DISPATCH_BATCH: TraceName = TraceName::new("shard.dispatch_batch");

struct Ring {
    state: Mutex<RingState>,
    not_full: Condvar,
    not_empty: Condvar,
    depth_gauge: &'static telemetry::Gauge,
    /// Times the producer found this ring full and had to block.
    stall_counter: &'static telemetry::Counter,
    /// Consumer time spent blocked on an empty ring (idle time).
    wait_timer: &'static telemetry::Timer,
    /// Per-shard queue-depth counter track in the event trace.
    tr_depth: TraceName,
}

struct RingState {
    batches: VecDeque<Vec<(usize, TraceRecord)>>,
    closed: bool,
}

impl Ring {
    fn new(shard: usize) -> Self {
        Self {
            state: Mutex::new(RingState {
                batches: VecDeque::with_capacity(RING_BATCHES),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            depth_gauge: telemetry::global().gauge(shard_metric(shard, "queue_depth")),
            stall_counter: telemetry::global().counter(shard_metric(shard, "full_stalls")),
            wait_timer: telemetry::global().timer(shard_metric(shard, "wait")),
            tr_depth: TraceName::new(shard_metric(shard, "queue_depth")),
        }
    }

    /// Producer side: blocks while the ring is full.
    ///
    /// The consumer is woken only on the empty→non-empty edge: while it is
    /// busy chewing a previous drain it will re-check the queue under the
    /// lock before sleeping, so intermediate pushes need no signal. With
    /// one producer and one consumer per ring, the waiter (if any) always
    /// observed the state that makes the edge signal necessary.
    fn push(&self, batch: Vec<(usize, TraceRecord)>) {
        let mut st = self.state.lock().expect("ring poisoned");
        if st.batches.len() >= RING_BATCHES {
            // Backpressure: the worker is behind. Count the stall and
            // bracket the blocked interval in the event trace.
            self.stall_counter.inc();
            let _stalled = trace::span(&TR_RING_STALL);
            while st.batches.len() >= RING_BATCHES {
                st = self.not_full.wait(st).expect("ring poisoned");
            }
        }
        let was_empty = st.batches.is_empty();
        st.batches.push_back(batch);
        self.depth_gauge.set(st.batches.len() as i64);
        trace::counter(&self.tr_depth, st.batches.len() as u64);
        drop(st);
        if was_empty {
            self.not_empty.notify_one();
        }
    }

    /// Producer side: no further batches will arrive.
    fn close(&self) {
        self.state.lock().expect("ring poisoned").closed = true;
        self.not_empty.notify_one();
    }

    /// Consumer side: drains *every* buffered batch into `into` under one
    /// lock acquisition (the caller's deque is swapped in as the new empty
    /// ring storage, so capacities ping-pong and nothing is reallocated in
    /// steady state). Blocks while the ring is empty; returns `false` once
    /// it is closed and drained. The producer is woken only on the
    /// full→non-full edge.
    fn pop_all(&self, into: &mut VecDeque<Vec<(usize, TraceRecord)>>) -> bool {
        debug_assert!(into.is_empty(), "drain target must be empty");
        let mut st = self.state.lock().expect("ring poisoned");
        loop {
            if !st.batches.is_empty() {
                let was_full = st.batches.len() >= RING_BATCHES;
                std::mem::swap(&mut st.batches, into);
                self.depth_gauge.set(0);
                trace::counter(&self.tr_depth, 0);
                drop(st);
                if was_full {
                    self.not_full.notify_one();
                }
                return true;
            }
            if st.closed {
                return false;
            }
            // Idle time: the worker outran the producer. Accumulate it on
            // the per-shard wait timer and bracket it in the trace.
            let idle_start = Instant::now();
            let _waiting = trace::span(&TR_RING_WAIT);
            st = self.not_empty.wait(st).expect("ring poisoned");
            self.wait_timer
                .record(idle_start.elapsed().as_nanos() as u64);
        }
    }
}

/// One worker's share of the pipeline output, in shard-local terms except
/// for the already-remapped record indices.
struct ShardPartial {
    stats: DetectionStats,
    streams: Vec<ReplicaStream>,
    loops: Vec<RoutingLoop>,
    /// Global indices of records that belong to any raw candidate.
    looped_global: Vec<usize>,
}

/// The parallel detector: [`Detector`] semantics, N-way sharded.
///
/// `threads == 1` is *exactly* the legacy path — it delegates to
/// [`Detector::run`] without spawning anything.
#[derive(Debug, Clone)]
pub struct ShardedDetector {
    cfg: DetectorConfig,
    threads: usize,
}

impl ShardedDetector {
    /// Creates a sharded detector over `threads` worker shards.
    ///
    /// # Panics
    /// Panics on an invalid configuration or `threads == 0`.
    pub fn new(cfg: DetectorConfig, threads: usize) -> Self {
        cfg.validate().expect("invalid detector configuration");
        assert!(threads >= 1, "thread count must be at least 1");
        Self { cfg, threads }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// The shard/worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the full pipeline, sharded over the worker threads, producing
    /// output equal to [`Detector::run`] on the same trace.
    ///
    /// # Panics
    /// Panics when records are not sorted by timestamp, exactly like the
    /// serial pipeline.
    pub fn run(&self, records: &[TraceRecord]) -> DetectionResult {
        if self.threads == 1 {
            return Detector::new(self.cfg).run(records);
        }
        assert!(
            records
                .windows(2)
                .all(|w| w[0].timestamp_ns <= w[1].timestamp_ns),
            "trace records must be sorted by timestamp"
        );
        let _t = telemetry::span("shard.run");
        telemetry::global()
            .gauge("shard.threads")
            .set(self.threads as i64);

        let n = self.threads;
        // Uniform sharding makes records.len()/n the expected sub-trace
        // size; workers pre-size their buffers from it so ingest never
        // reallocates in the common case.
        let per_shard_estimate = records.len() / n + 1;
        let rings: Vec<Ring> = (0..n).map(Ring::new).collect();
        let partials: Vec<ShardPartial> = std::thread::scope(|scope| {
            let handles: Vec<_> = rings
                .iter()
                .enumerate()
                .map(|(shard, ring)| {
                    let cfg = self.cfg;
                    // Named threads label the per-worker rows in trace
                    // viewers (and panic messages).
                    std::thread::Builder::new()
                        .name(format!("shard-w{shard}"))
                        .spawn_scoped(scope, move || {
                            run_shard(shard, cfg, ring, per_shard_estimate)
                        })
                        .expect("spawn shard worker")
                })
                .collect();

            // Producer: route every record to its shard, in trace order,
            // flushing per-shard batches as they fill.
            {
                let _t = telemetry::span("shard.dispatch");
                let mut pending: Vec<Vec<(usize, TraceRecord)>> =
                    (0..n).map(|_| Vec::with_capacity(BATCH_RECORDS)).collect();
                for (idx, rec) in records.iter().enumerate() {
                    let shard = shard_of_record(rec, n);
                    pending[shard].push((idx, *rec));
                    if pending[shard].len() >= BATCH_RECORDS {
                        trace::instant(&TR_DISPATCH_BATCH);
                        rings[shard].push(std::mem::replace(
                            &mut pending[shard],
                            Vec::with_capacity(BATCH_RECORDS),
                        ));
                    }
                }
                for (shard, batch) in pending.into_iter().enumerate() {
                    if !batch.is_empty() {
                        rings[shard].push(batch);
                    }
                    rings[shard].close();
                }
            }

            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        // Deterministic merge: concatenate shard outputs and restore the
        // serial pipeline's total orders. Streams: the serial path emits
        // candidates sorted by (start, first record) then stably re-sorted
        // by (start, ident) — i.e. the total order (start, ident, first
        // record). Loops: (prefix, start); every prefix lives in exactly
        // one shard, so ties keep their within-shard (= serial) order.
        let _tm = telemetry::span("shard.merge_results");
        let mut stats = DetectionStats::default();
        let mut streams = Vec::new();
        let mut loops = Vec::new();
        let mut looped_flags = vec![false; records.len()];
        for p in partials {
            stats.total_records += p.stats.total_records;
            stats.raw_candidates += p.stats.raw_candidates;
            stats.rejected_short += p.stats.rejected_short;
            stats.rejected_covalidation += p.stats.rejected_covalidation;
            stats.checksum_splits += p.stats.checksum_splits;
            stats.validated_streams += p.stats.validated_streams;
            stats.routing_loops += p.stats.routing_loops;
            stats.looped_sightings += p.stats.looped_sightings;
            for idx in p.looped_global {
                looped_flags[idx] = true;
            }
            streams.extend(p.streams);
            loops.extend(p.loops);
        }
        streams.sort_by_key(|s| (s.start_ns(), s.key.ident, s.record_indices[0]));
        loops.sort_by_key(|l| (l.prefix, l.start_ns));
        tm_info!(
            "sharded detection complete: {} records over {} shards, {} streams, {} loops",
            stats.total_records,
            n,
            stats.validated_streams,
            stats.routing_loops
        );

        DetectionResult {
            streams,
            loops,
            looped_flags,
            stats,
        }
    }
}

/// One worker: drain the ring into a shard-local sub-trace (scanning for
/// candidates as records arrive), then run validation and merging on it,
/// and remap record indices back to global trace positions.
///
/// `estimate` is the expected sub-trace size; the record buffers and the
/// scanner's candidate table are pre-sized from it, so the ingest loop
/// runs without reallocation on uniformly sharded traces. Stage timers
/// ("shard.detect" / "shard.validate" / "shard.merge") aggregate across
/// workers, so their totals are worker-seconds, not wall time.
fn run_shard(shard: usize, cfg: DetectorConfig, ring: &Ring, estimate: usize) -> ShardPartial {
    let records_counter = telemetry::global().counter(shard_metric(shard, "records"));
    let streams_counter = telemetry::global().counter(shard_metric(shard, "streams"));
    // Busy time = worker lifetime minus time blocked on the empty ring
    // (which `Ring::pop_all` accumulates on the per-shard wait timer).
    // Only this worker writes those timers, so a before/after read of the
    // wait total scopes the subtraction to this run.
    let wait_timer = telemetry::global().timer(shard_metric(shard, "wait"));
    let busy_timer = telemetry::global().timer(shard_metric(shard, "busy"));
    let alive_start = Instant::now();
    let waited_before_ns = wait_timer.total_ns();

    let mut records: Vec<TraceRecord> = Vec::with_capacity(estimate);
    let mut globals: Vec<usize> = Vec::with_capacity(estimate);
    let mut scanner = CandidateScanner::with_capacity(cfg, estimate / 4);
    let (candidates, counters) = {
        let _t = telemetry::span("shard.detect");
        let mut drained: VecDeque<Vec<(usize, TraceRecord)>> =
            VecDeque::with_capacity(RING_BATCHES);
        while ring.pop_all(&mut drained) {
            for batch in drained.drain(..) {
                records_counter.add(batch.len() as u64);
                for (gidx, rec) in batch {
                    scanner.push(records.len(), &rec);
                    records.push(rec);
                    globals.push(gidx);
                }
            }
        }
        scanner.finish()
    };
    let mut stats = DetectionStats {
        total_records: records.len() as u64,
        raw_candidates: candidates.len() as u64,
        checksum_splits: counters.checksum_splits,
        ..DetectionStats::default()
    };

    let mut looped_flags = vec![false; records.len()];
    for c in &candidates {
        for &idx in &c.record_indices {
            looped_flags[idx] = true;
        }
    }

    let (index, validated) = {
        let _t = telemetry::span("shard.validate");
        let index = PrefixIndex::build(&records);
        let validated = validate::validate(
            &records,
            candidates,
            &looped_flags,
            &index,
            &cfg,
            &mut stats,
        );
        (index, validated)
    };
    stats.validated_streams = validated.len() as u64;
    stats.looped_sightings = validated.iter().map(|s| s.len() as u64).sum();
    streams_counter.add(validated.len() as u64);

    let loops = {
        let _t = telemetry::span("shard.merge");
        merge::merge(&records, &validated, &looped_flags, &index, &cfg)
    };
    stats.routing_loops = loops.len() as u64;

    // Shard-local record indices -> global trace positions. The mapping is
    // strictly increasing, so every within-shard order survives.
    let remap = |s: &mut ReplicaStream| {
        for idx in &mut s.record_indices {
            *idx = globals[*idx];
        }
    };
    let mut streams = validated;
    streams.iter_mut().for_each(remap);
    let mut loops = loops;
    for l in &mut loops {
        l.streams.iter_mut().for_each(remap);
    }
    let looped_global = looped_flags
        .iter()
        .enumerate()
        .filter_map(|(i, &f)| if f { Some(globals[i]) } else { None })
        .collect();

    let alive_ns = alive_start.elapsed().as_nanos() as u64;
    let waited_ns = wait_timer.total_ns() - waited_before_ns;
    busy_timer.record(alive_ns.saturating_sub(waited_ns));

    ShardPartial {
        stats,
        streams,
        loops,
        looped_global,
    }
}

/// Builds a compile-time table of `shard.w<i>.<field>` names for one
/// field across the prebuilt shard indices.
macro_rules! shard_name_table {
    ($field:literal; $($n:literal),* $(,)?) => {
        [$(concat!("shard.w", $n, ".", $field)),*]
    };
}

/// Shard indices with compile-time metric names. Thread counts above this
/// fall back to the (cold, locked) interner — nobody shards finer than
/// the machine's core count in practice.
const PREBUILT_SHARDS: usize = 32;

static SHARD_RECORDS: [&str; PREBUILT_SHARDS] = shard_name_table!("records";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static SHARD_STREAMS: [&str; PREBUILT_SHARDS] = shard_name_table!("streams";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static SHARD_QUEUE_DEPTH: [&str; PREBUILT_SHARDS] = shard_name_table!("queue_depth";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static SHARD_FULL_STALLS: [&str; PREBUILT_SHARDS] = shard_name_table!("full_stalls";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static SHARD_WAIT: [&str; PREBUILT_SHARDS] = shard_name_table!("wait";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static SHARD_BUSY: [&str; PREBUILT_SHARDS] = shard_name_table!("busy";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);

/// Resolves the `shard.w<i>.<field>` metric name. The telemetry registry
/// wants `&'static str`; for the common case (shard index below
/// [`PREBUILT_SHARDS`], known field) the name is a compile-time literal —
/// no allocation, no lock. Exotic combinations fall back to a bounded
/// leaking interner.
fn shard_metric(shard: usize, field: &str) -> &'static str {
    if shard < PREBUILT_SHARDS {
        match field {
            "records" => return SHARD_RECORDS[shard],
            "streams" => return SHARD_STREAMS[shard],
            "queue_depth" => return SHARD_QUEUE_DEPTH[shard],
            "full_stalls" => return SHARD_FULL_STALLS[shard],
            "wait" => return SHARD_WAIT[shard],
            "busy" => return SHARD_BUSY[shard],
            _ => {}
        }
    }
    intern_shard_metric(shard, field)
}

/// Cold path of [`shard_metric`]: formats, interns, and leaks the name.
/// The set of names is tiny (a few per shard) and deduplicated, so the
/// leak is bounded.
fn intern_shard_metric(shard: usize, field: &str) -> &'static str {
    static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut map = INTERNED.lock().expect("intern table poisoned");
    let name = format!("shard.w{shard}.{field}");
    if let Some(s) = map.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    map.insert(name, leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    fn looping_records(
        start_ns: u64,
        spacing_ns: u64,
        first_ttl: u8,
        n: usize,
        ident: u16,
        dst: Ipv4Addr,
    ) -> Vec<TraceRecord> {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 7, 7, 7),
            dst,
            5555,
            80,
            TcpFlags::ACK,
            &b"data"[..],
        );
        p.ip.ident = ident;
        p.ip.ttl = first_ttl;
        p.fill_checksums();
        let mut out = Vec::new();
        let mut t = start_ns;
        for k in 0..n {
            if k > 0 {
                p.ip.decrement_ttl();
                p.ip.decrement_ttl();
            }
            out.push(TraceRecord::from_packet(t, &p));
            t += spacing_ns;
        }
        out
    }

    /// A mixed trace: loops to several /24s plus background noise.
    fn mixed_trace() -> Vec<TraceRecord> {
        let mut recs = Vec::new();
        for j in 0..12u16 {
            recs.extend(looping_records(
                u64::from(j) * 500_000_000,
                1_500_000,
                64,
                4 + usize::from(j % 3),
                j,
                Ipv4Addr::new(203, 0, (j % 6) as u8, 1 + (j % 200) as u8),
            ));
        }
        for i in 0..400u16 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 2, 2, 2),
                Ipv4Addr::new(20, 0, (i % 9) as u8, 1),
                1000,
                80,
                TcpFlags::ACK,
                &b""[..],
            );
            p.ip.ident = i;
            p.fill_checksums();
            recs.push(TraceRecord::from_packet(u64::from(i) * 20_000_000, &p));
        }
        recs.sort_by_key(|r| r.timestamp_ns);
        recs
    }

    fn assert_results_equal(
        a: &crate::replica::DetectionResult,
        b: &crate::replica::DetectionResult,
    ) {
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.streams, b.streams);
        assert_eq!(a.loops, b.loops);
        assert_eq!(a.looped_flags, b.looped_flags);
    }

    #[test]
    fn shard_key_is_stable_across_reruns() {
        // The assignment is pure arithmetic on the address bytes: repeated
        // evaluation, fresh detectors, and fresh processes all agree. The
        // pinned values double as a cross-process regression anchor — they
        // may only change with an intentional format bump.
        let recs = looping_records(0, 1_000, 60, 3, 7, Ipv4Addr::new(203, 0, 113, 9));
        let key = ReplicaKey::of(&recs[0]);
        let first = shard_of(&key, 8);
        for _ in 0..100 {
            assert_eq!(shard_of(&key, 8), first);
        }
        assert_eq!(shard_of_record(&recs[1], 8), first);
        // Pinned FNV-1a outputs for known prefixes.
        assert_eq!(shard_of_dst(Ipv4Addr::new(203, 0, 113, 9), 8), 7);
        assert_eq!(shard_of_dst(Ipv4Addr::new(198, 51, 100, 25), 8), 2);
        assert_eq!(shard_of_dst(Ipv4Addr::new(10, 0, 0, 1), 4), 3);
    }

    #[test]
    fn whole_slash24_shares_a_shard() {
        for shards in [2usize, 3, 4, 8, 16] {
            let a = shard_of_dst(Ipv4Addr::new(203, 0, 113, 1), shards);
            for host in [2u8, 9, 77, 255] {
                assert_eq!(
                    shard_of_dst(Ipv4Addr::new(203, 0, 113, host), shards),
                    a,
                    "host byte must not affect the shard ({shards} shards)"
                );
            }
        }
    }

    #[test]
    fn shards_spread_prefixes() {
        // 256 distinct /24s over 8 shards: every shard sees some traffic.
        let mut seen = vec![false; 8];
        for third in 0..=255u8 {
            seen[shard_of_dst(Ipv4Addr::new(10, 1, third, 1), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shard got nothing: {seen:?}");
    }

    #[test]
    fn single_thread_is_legacy_path() {
        let recs = mixed_trace();
        let serial = Detector::new(DetectorConfig::default()).run(&recs);
        let one = ShardedDetector::new(DetectorConfig::default(), 1).run(&recs);
        assert_results_equal(&serial, &one);
    }

    #[test]
    fn parallel_matches_serial_on_mixed_trace() {
        let recs = mixed_trace();
        let serial = Detector::new(DetectorConfig::default()).run(&recs);
        assert!(!serial.streams.is_empty());
        for threads in [2usize, 3, 4, 8] {
            let par = ShardedDetector::new(DetectorConfig::default(), threads).run(&recs);
            assert_results_equal(&serial, &par);
        }
    }

    #[test]
    fn parallel_matches_serial_under_ablation_configs() {
        let recs = mixed_trace();
        for cfg in [
            DetectorConfig::no_validation(),
            DetectorConfig::default().with_merge_gap_minutes(5),
            DetectorConfig {
                verify_checksum_consistency: false,
                ..DetectorConfig::default()
            },
            DetectorConfig {
                use_prefilter: false,
                ..DetectorConfig::default()
            },
        ] {
            let serial = Detector::new(cfg).run(&recs);
            let par = ShardedDetector::new(cfg, 4).run(&recs);
            assert_results_equal(&serial, &par);
        }
    }

    #[test]
    fn prefilter_ablation_is_invisible_at_every_thread_count() {
        // The two-level candidate index must be output-invisible: serial
        // with and without the pre-filter agree, and every sharded run in
        // either mode agrees with both.
        let recs = mixed_trace();
        let on = Detector::new(DetectorConfig::default()).run(&recs);
        assert!(!on.streams.is_empty());
        let off_cfg = DetectorConfig {
            use_prefilter: false,
            ..DetectorConfig::default()
        };
        let off = Detector::new(off_cfg).run(&recs);
        assert_results_equal(&on, &off);
        for threads in [2usize, 3, 4, 8] {
            let par_on = ShardedDetector::new(DetectorConfig::default(), threads).run(&recs);
            assert_results_equal(&on, &par_on);
            let par_off = ShardedDetector::new(off_cfg, threads).run(&recs);
            assert_results_equal(&on, &par_off);
        }
    }

    #[test]
    fn empty_and_tiny_traces() {
        let det = ShardedDetector::new(DetectorConfig::default(), 4);
        let empty = det.run(&[]);
        assert!(empty.streams.is_empty() && empty.loops.is_empty());
        let tiny = looping_records(0, 1_000_000, 60, 5, 1, Ipv4Addr::new(203, 0, 113, 1));
        let serial = Detector::new(DetectorConfig::default()).run(&tiny);
        let par = det.run(&tiny);
        assert_results_equal(&serial, &par);
    }

    #[test]
    fn more_threads_than_records() {
        let tiny = looping_records(0, 1_000_000, 60, 4, 1, Ipv4Addr::new(203, 0, 113, 1));
        let serial = Detector::new(DetectorConfig::default()).run(&tiny);
        let par = ShardedDetector::new(DetectorConfig::default(), 8).run(&tiny);
        assert_results_equal(&serial, &par);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_panics_sharded() {
        let mut recs = looping_records(0, 1_000_000, 60, 3, 1, Ipv4Addr::new(203, 0, 113, 1));
        recs.swap(0, 2);
        ShardedDetector::new(DetectorConfig::default(), 2).run(&recs);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_rejected() {
        ShardedDetector::new(DetectorConfig::default(), 0);
    }

    #[test]
    fn ring_delivers_in_order_and_closes() {
        let ring = Ring::new(999);
        let recs = looping_records(0, 1_000, 60, 3, 1, Ipv4Addr::new(203, 0, 113, 1));
        std::thread::scope(|s| {
            let r = &ring;
            let producer = s.spawn(move || {
                for (i, rec) in recs.iter().enumerate() {
                    r.push(vec![(i, *rec)]);
                }
                r.close();
            });
            let consumer = s.spawn(move || {
                let mut got = Vec::new();
                let mut drained = VecDeque::new();
                while r.pop_all(&mut drained) {
                    for batch in drained.drain(..) {
                        got.extend(batch.into_iter().map(|(i, _)| i));
                    }
                }
                got
            });
            producer.join().unwrap();
            assert_eq!(consumer.join().unwrap(), vec![0, 1, 2]);
        });
    }

    #[test]
    fn ring_backpressure_with_slow_consumer() {
        // Fill the ring past capacity so the producer must block, then
        // drain in bulk: exercises both condvar edges (empty→non-empty
        // wakes the consumer, full→non-full wakes the producer).
        let ring = Ring::new(998);
        let recs = looping_records(0, 1_000, 60, 3, 1, Ipv4Addr::new(203, 0, 113, 1));
        let total = RING_BATCHES * 3;
        std::thread::scope(|s| {
            let r = &ring;
            let producer = s.spawn(move || {
                for i in 0..total {
                    r.push(vec![(i, recs[0])]);
                }
                r.close();
            });
            let consumer = s.spawn(move || {
                let mut got = Vec::new();
                let mut drained = VecDeque::new();
                while r.pop_all(&mut drained) {
                    // Hold the drained set briefly so the ring refills.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    for batch in drained.drain(..) {
                        got.extend(batch.into_iter().map(|(i, _)| i));
                    }
                }
                got
            });
            producer.join().unwrap();
            let got = consumer.join().unwrap();
            assert_eq!(got, (0..total).collect::<Vec<_>>());
        });
    }

    #[test]
    fn shard_metric_names_are_static_and_cover_fallback() {
        assert_eq!(shard_metric(0, "records"), "shard.w0.records");
        assert_eq!(shard_metric(7, "streams"), "shard.w7.streams");
        assert_eq!(shard_metric(31, "queue_depth"), "shard.w31.queue_depth");
        assert_eq!(shard_metric(2, "full_stalls"), "shard.w2.full_stalls");
        assert_eq!(shard_metric(5, "wait"), "shard.w5.wait");
        assert_eq!(shard_metric(9, "busy"), "shard.w9.busy");
        // Prebuilt lookups return the same literal every time (no interner
        // involvement): pointer-equal, not just string-equal.
        assert!(std::ptr::eq(
            shard_metric(3, "records"),
            shard_metric(3, "records")
        ));
        // Beyond the table, the interner fallback still works and dedups.
        assert_eq!(shard_metric(100, "records"), "shard.w100.records");
        assert!(std::ptr::eq(
            shard_metric(100, "records"),
            shard_metric(100, "records")
        ));
    }

    #[test]
    fn per_shard_metrics_registered() {
        let recs = mixed_trace();
        ShardedDetector::new(DetectorConfig::default(), 2).run(&recs);
        let snap = telemetry::global().snapshot();
        assert!(snap.counters.contains_key("shard.w0.records"));
        assert!(snap.counters.contains_key("shard.w1.records"));
        assert!(snap.counters.contains_key("shard.w0.streams"));
        assert!(snap.counters.contains_key("shard.w0.full_stalls"));
        assert!(snap.gauges.contains_key("shard.w0.queue_depth"));
        // Worker time accounting: both workers recorded one busy interval,
        // bounded by their lifetime.
        for w in 0..2 {
            let busy = &snap.timers[&format!("shard.w{w}.busy")];
            assert!(busy.calls >= 1, "worker {w} busy timer never recorded");
        }
        let total: u64 = (0..2)
            .map(|i| snap.counters[&format!("shard.w{i}.records")])
            .sum();
        assert!(total >= recs.len() as u64, "all records routed to shards");
    }
}
