//! Share-nothing block-parallel detection.
//!
//! The ring-dispatcher fan-out in [`crate::shard`] moves every record
//! across a thread boundary and pays for it: on the committed baseline the
//! dispatch stage alone costs more than the entire serial run. This module
//! replaces it with the opposite design — **records never move**. The
//! time-sorted trace is split into `W` contiguous ranges; each worker runs
//! the full candidate scan on its own range in place, and a cheap
//! boundary-reconciliation pass stitches the per-range results back into
//! exactly the serial output.
//!
//! # Why block partitioning is sound
//!
//! Step 1 (candidate grouping) is decomposable **per replica key**: the
//! scanner's verdict for a sighting depends only on the previous sighting
//! of the *same key* (`check_continuation`: TTL monotonicity, checksum
//! consistency, and freshness — `gap <= max_replica_gap_ns`). Two
//! consecutive same-key sightings that land in different ranges fall into
//! one of two cases:
//!
//! * **Non-fresh** (gap beyond `max_replica_gap_ns`): the serial scanner
//!   would close the old candidate and open a new one — precisely what two
//!   independent range scans produce. No split is charged either way
//!   (`checksum_split` requires freshness), so counters agree too.
//! * **Fresh**: the range scans may disagree with serial. These are the
//!   *boundary-affected* keys, and they are detectable from the outside:
//!   the key must have a sighting within `max_replica_gap_ns` *before* the
//!   split point and another within `max_replica_gap_ns` *after* it.
//!
//! Reconciliation therefore computes, per split point, the set of
//! ingest-time fingerprints appearing in both the tail window `[T - gap,
//! T)` and the head window `[T, L + gap]` (where `T` is the first
//! timestamp at/after the split and `L` the last before it — windows are
//! taken over the whole trace, not just the adjacent ranges, so a key
//! spanning an entire quiet middle range is still caught). Every candidate
//! whose (normalised) fingerprint is in that *affected* set is discarded
//! from the per-range results and re-derived by one serial rescan
//! restricted to records carrying an affected fingerprint, in global trace
//! order with global indices. Fingerprint collisions are harmless: the
//! affected set is keyed by fingerprint, so colliding keys are always
//! rescanned (or kept) together, and the rescan itself runs the exact
//! scanner. Checksum-split counts are reconciled the same way: per-range
//! splits charged to unaffected fingerprints are kept, splits from the
//! rescan are added, and splits charged to affected fingerprints are
//! dropped with their candidates.
//!
//! Steps 2–3 reuse the destination-/24 soundness argument from
//! [`crate::shard`]: validation and merge consult only records and
//! candidates of one /24, so the reconciled candidate list is partitioned
//! by [`shard_of`] and validated/merged by `W` workers sharing the
//! *global* record slice, looped flags, and prefix index — again, no
//! record movement. The final stitch re-sorts with the serial pipeline's
//! canonical orderings (`(start, ident, first_index)` for streams,
//! `(prefix, start)` for loops), which are total orders, so output is
//! byte-identical to [`Detector::run`] at every worker count — including
//! `W = 1`, which runs the same machinery (uniform telemetry schema, no
//! serial special case).

use crate::config::DetectorConfig;
use crate::fxhash::FxHashSet;
use crate::merge::{self, RoutingLoop};
use crate::record::TraceRecord;
use crate::replica::{normalise_fp, CandidateScanner, DetectionResult, DetectionStats};
use crate::shard::shard_of;
use crate::stream::ReplicaStream;
use crate::validate::{self, IndexPartial, PrefixIndex};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;
use telemetry::tm_info;

#[cfg(doc)]
use crate::replica::{check_continuation, Detector};

/// One worker's share of the step-1 scan.
struct ScanPartial {
    /// Candidates found in this range, carrying global record indices.
    candidates: Vec<ReplicaStream>,
    /// Normalised fingerprints behind this range's checksum-split events.
    split_fps: Vec<u64>,
    /// This range's share of the step-2 [`PrefixIndex`], built here so the
    /// index work overlaps the scan instead of serialising after it.
    index_part: IndexPartial,
}

/// One worker's share of the step-2/3 validate+merge.
struct FinishPartial {
    streams: Vec<ReplicaStream>,
    loops: Vec<RoutingLoop>,
    rejected_short: u64,
    rejected_covalidation: u64,
}

/// The share-nothing block-parallel detector: output byte-identical to
/// [`Detector::run`] at every worker count.
#[derive(Debug, Clone)]
pub struct BlockParallelDetector {
    cfg: DetectorConfig,
    threads: usize,
}

impl BlockParallelDetector {
    /// Creates a detector fanning out over `threads` workers.
    ///
    /// # Panics
    /// Panics on an invalid configuration or `threads == 0`.
    pub fn new(cfg: DetectorConfig, threads: usize) -> Self {
        cfg.validate().expect("invalid detector configuration");
        assert!(threads > 0, "thread count must be positive");
        Self { cfg, threads }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the full pipeline on a time-sorted trace, splitting it into
    /// (up to) `threads` even record ranges.
    ///
    /// # Panics
    /// Panics when records are not sorted by timestamp.
    pub fn run(&self, records: &[TraceRecord]) -> DetectionResult {
        let splits = even_splits(records.len(), self.threads);
        self.run_with_splits(records, &splits)
    }

    /// [`Self::run`] with explicit interior split points (record indices,
    /// each in `(0, len)`). Exposed so tests can torture arbitrary — in
    /// particular adversarial — boundaries; output is byte-identical to
    /// serial for *any* choice of split points.
    pub fn run_with_splits(&self, records: &[TraceRecord], splits: &[usize]) -> DetectionResult {
        assert!(
            records
                .windows(2)
                .all(|w| w[0].timestamp_ns <= w[1].timestamp_ns),
            "trace records must be sorted by timestamp"
        );
        let mut splits: Vec<usize> = splits
            .iter()
            .copied()
            .filter(|&s| s > 0 && s < records.len())
            .collect();
        splits.sort_unstable();
        splits.dedup();

        let workers = splits.len() + 1;
        telemetry::global()
            .gauge("block.workers")
            .set(workers as i64);

        // Phase A: per-range candidate scans, share-nothing. Each worker
        // also builds its range's share of the step-2 prefix index, so
        // the formerly serial index rebuild overlaps the scan.
        let mut partials = self.scan_ranges(records, &splits);
        let index_parts: Vec<IndexPartial> = partials
            .iter_mut()
            .map(|p| std::mem::take(&mut p.index_part))
            .collect();

        // Boundary reconciliation: find fingerprints whose serial
        // candidates could differ from the per-range ones, rescan exactly
        // those keys serially, and splice.
        let (candidates, checksum_splits) = {
            let _t = telemetry::span("block.reconcile");
            self.reconcile(records, &splits, partials)
        };

        let mut stats = DetectionStats {
            total_records: records.len() as u64,
            raw_candidates: candidates.len() as u64,
            checksum_splits,
            ..Default::default()
        };

        let mut looped_flags = vec![false; records.len()];
        for c in &candidates {
            for &idx in &c.record_indices {
                looped_flags[idx] = true;
            }
        }

        // Only the cheap per-range merge remains serial here; the O(n)
        // posting construction already happened inside the scan workers.
        let index = {
            let _t = telemetry::span("block.index");
            PrefixIndex::from_partials(index_parts)
        };

        // Phase B: validate + merge, partitioned by destination /24.
        let finished = self.finish_candidates(records, candidates, &looped_flags, &index, workers);

        // Stitch: canonical serial orderings over the concatenation.
        let (streams, loops) = {
            let _t = telemetry::span("block.stitch");
            let mut streams = Vec::new();
            let mut loops = Vec::new();
            for part in finished {
                stats.rejected_short += part.rejected_short;
                stats.rejected_covalidation += part.rejected_covalidation;
                streams.extend(part.streams);
                loops.extend(part.loops);
            }
            streams.sort_by_key(|s| (s.start_ns(), s.key.ident, s.record_indices[0]));
            loops.sort_by_key(|l| (l.prefix, l.start_ns));
            (streams, loops)
        };
        stats.validated_streams = streams.len() as u64;
        stats.looped_sightings = streams.iter().map(|s| s.len() as u64).sum();
        stats.routing_loops = loops.len() as u64;
        tm_info!(
            "block detection complete: {} records over {} workers, {} validated streams, {} routing loops",
            stats.total_records,
            workers,
            stats.validated_streams,
            stats.routing_loops
        );

        DetectionResult {
            streams,
            loops,
            looped_flags,
            stats,
        }
    }

    /// Phase A: each worker scans its own contiguous range in place,
    /// pushing global record indices.
    fn scan_ranges(&self, records: &[TraceRecord], splits: &[usize]) -> Vec<ScanPartial> {
        let bounds = range_bounds(records.len(), splits);
        std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .enumerate()
                .map(|(w, &(lo, hi))| {
                    let slice = &records[lo..hi];
                    let cfg = self.cfg;
                    std::thread::Builder::new()
                        .name(format!("block-w{w}"))
                        .spawn_scoped(scope, move || {
                            let started = Instant::now();
                            let _agg = telemetry::span("block.scan");
                            telemetry::global()
                                .counter(block_metric(w, "records"))
                                .add(slice.len() as u64);
                            let mut scanner = CandidateScanner::with_capacity(cfg, slice.len() / 4);
                            for (off, rec) in slice.iter().enumerate() {
                                scanner.push(lo + off, rec);
                            }
                            let (candidates, _counters, split_fps) = scanner.finish_with_splits();
                            let scan_ns = started.elapsed().as_nanos() as u64;
                            telemetry::global()
                                .timer(block_metric(w, "scan"))
                                .record(scan_ns);
                            let index_started = Instant::now();
                            let index_part = PrefixIndex::build_range(records, lo, hi);
                            telemetry::global()
                                .timer(block_metric(w, "index"))
                                .record(index_started.elapsed().as_nanos() as u64);
                            telemetry::global()
                                .timer(block_metric(w, "busy"))
                                .record(started.elapsed().as_nanos() as u64);
                            ScanPartial {
                                candidates,
                                split_fps,
                                index_part,
                            }
                        })
                        .expect("spawn block scan worker")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("block scan worker panicked"))
                .collect()
        })
    }

    /// Boundary reconciliation (see module docs): returns the exact serial
    /// candidate list (sorted `(start, first_index)`) and checksum-split
    /// count.
    fn reconcile(
        &self,
        records: &[TraceRecord],
        splits: &[usize],
        partials: Vec<ScanPartial>,
    ) -> (Vec<ReplicaStream>, u64) {
        let affected = affected_fingerprints(records, splits, self.cfg.max_replica_gap_ns);

        // Rescan every record of an affected key, serially, in global
        // order. The affected set is tiny next to the trace (a handful of
        // keys per boundary), so this is one cheap filtered pass.
        let mut rescan_candidates = Vec::new();
        let mut rescan_splits = 0u64;
        if !affected.is_empty() {
            let mut scanner = CandidateScanner::with_capacity(self.cfg, affected.len());
            for (idx, rec) in records.iter().enumerate() {
                if affected.contains(&normalise_fp(rec.fingerprint)) {
                    scanner.push(idx, rec);
                }
            }
            let (c, counters, _fps) = scanner.finish_with_splits();
            rescan_candidates = c;
            rescan_splits = counters.checksum_splits;
        }

        let mut candidates = Vec::new();
        let mut checksum_splits = rescan_splits;
        for part in partials {
            checksum_splits += part
                .split_fps
                .iter()
                .filter(|fp| !affected.contains(fp))
                .count() as u64;
            candidates.extend(
                part.candidates
                    .into_iter()
                    .filter(|c| !affected.contains(&normalise_fp(c.key.fingerprint()))),
            );
        }
        candidates.extend(rescan_candidates);
        // The serial scanner's close order re-sorted by (start, first
        // index): first indices are unique per candidate, so this is a
        // total order and concatenation order cannot leak through.
        candidates.sort_by_key(|s| (s.start_ns(), s.record_indices[0]));
        (candidates, checksum_splits)
    }

    /// Phase B: validate + merge over `workers` destination-/24 groups.
    /// Workers share the full record slice, looped flags, and prefix
    /// index — candidates are the only thing partitioned.
    fn finish_candidates(
        &self,
        records: &[TraceRecord],
        candidates: Vec<ReplicaStream>,
        looped_flags: &[bool],
        index: &PrefixIndex,
        workers: usize,
    ) -> Vec<FinishPartial> {
        let mut groups: Vec<Vec<ReplicaStream>> = (0..workers).map(|_| Vec::new()).collect();
        for cand in candidates {
            let w = shard_of(&cand.key, workers);
            groups[w].push(cand);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .enumerate()
                .map(|(w, group)| {
                    let cfg = self.cfg;
                    std::thread::Builder::new()
                        .name(format!("block-w{w}"))
                        .spawn_scoped(scope, move || {
                            let started = Instant::now();
                            let mut stats = DetectionStats::default();
                            let streams = {
                                let _agg = telemetry::span("block.validate");
                                validate::validate(
                                    records,
                                    group,
                                    looped_flags,
                                    index,
                                    &cfg,
                                    &mut stats,
                                )
                            };
                            telemetry::global()
                                .timer(block_metric(w, "validate"))
                                .record(started.elapsed().as_nanos() as u64);
                            let merge_started = Instant::now();
                            let loops = {
                                let _agg = telemetry::span("block.merge");
                                merge::merge(records, &streams, looped_flags, index, &cfg)
                            };
                            telemetry::global()
                                .timer(block_metric(w, "merge"))
                                .record(merge_started.elapsed().as_nanos() as u64);
                            telemetry::global()
                                .timer(block_metric(w, "busy"))
                                .record(started.elapsed().as_nanos() as u64);
                            FinishPartial {
                                streams,
                                loops,
                                rejected_short: stats.rejected_short,
                                rejected_covalidation: stats.rejected_covalidation,
                            }
                        })
                        .expect("spawn block finish worker")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("block finish worker panicked"))
                .collect()
        })
    }
}

/// Evenly spaced interior split points for `len` records over `threads`
/// ranges (fewer when the trace is shorter than the thread count).
pub fn even_splits(len: usize, threads: usize) -> Vec<usize> {
    let workers = threads.max(1).min(len.max(1));
    let chunk = len.div_ceil(workers);
    (1..workers)
        .map(|w| w * chunk)
        .filter(|&s| s > 0 && s < len)
        .collect()
}

/// `[lo, hi)` range per worker for the given interior split points.
fn range_bounds(len: usize, splits: &[usize]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::with_capacity(splits.len() + 1);
    let mut lo = 0;
    for &s in splits {
        bounds.push((lo, s));
        lo = s;
    }
    bounds.push((lo, len));
    bounds
}

/// The normalised fingerprints whose candidates may differ between the
/// per-range scans and the serial scan: keys with a sighting within
/// `gap_ns` on *both* sides of some split point (see module docs).
fn affected_fingerprints(records: &[TraceRecord], splits: &[usize], gap_ns: u64) -> FxHashSet<u64> {
    let mut affected = FxHashSet::default();
    for &s in splits {
        let t_right = records[s].timestamp_ns;
        let l_left = records[s - 1].timestamp_ns;
        // Tail window over the whole prefix of the trace (a key can span
        // an entire quiet middle range), head window over the whole
        // suffix.
        let tail_lo =
            records[..s].partition_point(|r| r.timestamp_ns < t_right.saturating_sub(gap_ns));
        let head_hi =
            s + records[s..].partition_point(|r| r.timestamp_ns <= l_left.saturating_add(gap_ns));
        let tail_fps: FxHashSet<u64> = records[tail_lo..s]
            .iter()
            .map(|r| normalise_fp(r.fingerprint))
            .collect();
        for rec in &records[s..head_hi] {
            let fp = normalise_fp(rec.fingerprint);
            if tail_fps.contains(&fp) {
                affected.insert(fp);
            }
        }
    }
    affected
}

/// Builds a compile-time table of `block.w<i>.<field>` names for one
/// field across the prebuilt worker indices.
macro_rules! block_name_table {
    ($field:literal; $($n:literal),* $(,)?) => {
        [$(concat!("block.w", $n, ".", $field)),*]
    };
}

/// Worker indices with compile-time metric names; higher counts fall back
/// to the (cold, locked) interner.
const PREBUILT_WORKERS: usize = 32;

static BLOCK_RECORDS: [&str; PREBUILT_WORKERS] = block_name_table!("records";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static BLOCK_SCAN: [&str; PREBUILT_WORKERS] = block_name_table!("scan";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static BLOCK_INDEX: [&str; PREBUILT_WORKERS] = block_name_table!("index";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static BLOCK_VALIDATE: [&str; PREBUILT_WORKERS] = block_name_table!("validate";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static BLOCK_MERGE: [&str; PREBUILT_WORKERS] = block_name_table!("merge";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
static BLOCK_BUSY: [&str; PREBUILT_WORKERS] = block_name_table!("busy";
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);

/// Resolves the `block.w<i>.<field>` metric name (compile-time literal on
/// the common path, bounded leaking interner otherwise — same scheme as
/// `shard_metric`). Public so the bench harness can read the same
/// per-worker timers it writes.
pub fn block_metric(worker: usize, field: &str) -> &'static str {
    if worker < PREBUILT_WORKERS {
        match field {
            "records" => return BLOCK_RECORDS[worker],
            "scan" => return BLOCK_SCAN[worker],
            "index" => return BLOCK_INDEX[worker],
            "validate" => return BLOCK_VALIDATE[worker],
            "merge" => return BLOCK_MERGE[worker],
            "busy" => return BLOCK_BUSY[worker],
            _ => {}
        }
    }
    intern_block_metric(worker, field)
}

/// Cold path of [`block_metric`]: formats, interns, and leaks the name.
fn intern_block_metric(worker: usize, field: &str) -> &'static str {
    static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut map = INTERNED.lock().expect("intern table poisoned");
    let name = format!("block.w{worker}.{field}");
    if let Some(s) = map.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    map.insert(name, leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::Detector;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    fn looping_records(
        start_ns: u64,
        spacing_ns: u64,
        first_ttl: u8,
        n: usize,
        ident: u16,
        dst: Ipv4Addr,
    ) -> Vec<TraceRecord> {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 7, 7, 7),
            dst,
            5555,
            80,
            TcpFlags::ACK,
            &b""[..],
        );
        p.ip.ident = ident;
        (0..n)
            .map(|i| {
                p.ip.ttl = first_ttl - i as u8;
                p.fill_checksums();
                TraceRecord::from_packet(start_ns + i as u64 * spacing_ns, &p)
            })
            .collect()
    }

    fn assert_identical(records: &[TraceRecord], splits: &[usize]) {
        let cfg = DetectorConfig::default();
        let serial = Detector::new(cfg).run(records);
        let block =
            BlockParallelDetector::new(cfg, splits.len() + 1).run_with_splits(records, splits);
        assert_eq!(
            serial.streams, block.streams,
            "streams diverge at splits {splits:?}"
        );
        assert_eq!(
            serial.loops, block.loops,
            "loops diverge at splits {splits:?}"
        );
        assert_eq!(serial.looped_flags, block.looped_flags);
        assert_eq!(
            serial.stats, block.stats,
            "stats diverge at splits {splits:?}"
        );
    }

    #[test]
    fn even_splits_cover_edge_cases() {
        assert!(even_splits(0, 4).is_empty());
        assert!(even_splits(1, 8).is_empty());
        assert_eq!(even_splits(100, 1), Vec::<usize>::new());
        assert_eq!(even_splits(100, 4), vec![25, 50, 75]);
        // More threads than records: one record per worker, no dupes.
        assert_eq!(even_splits(3, 8), vec![1, 2]);
    }

    #[test]
    fn split_through_the_middle_of_a_stream_is_reconciled() {
        let dst = Ipv4Addr::new(203, 0, 113, 9);
        let records = looping_records(1_000, 40_000_000, 60, 8, 77, dst);
        for s in 1..records.len() {
            assert_identical(&records, &[s]);
        }
    }

    #[test]
    fn every_record_its_own_range() {
        let mut records =
            looping_records(1_000, 40_000_000, 60, 6, 1, Ipv4Addr::new(203, 0, 113, 9));
        records.extend(looping_records(
            2_000,
            50_000_000,
            50,
            5,
            2,
            Ipv4Addr::new(198, 51, 100, 3),
        ));
        records.sort_by_key(|r| r.timestamp_ns);
        let splits: Vec<usize> = (1..records.len()).collect();
        assert_identical(&records, &splits);
    }

    #[test]
    fn non_fresh_boundary_needs_no_rescan() {
        let dst = Ipv4Addr::new(203, 0, 113, 9);
        let mut records = looping_records(1_000, 40_000_000, 60, 4, 5, dst);
        // Second burst of the same key far beyond the replica gap.
        let resume = records.last().unwrap().timestamp_ns + 10_000_000_000;
        records.extend(looping_records(resume, 40_000_000, 58, 4, 5, dst));
        let affected =
            affected_fingerprints(&records, &[4], DetectorConfig::default().max_replica_gap_ns);
        assert!(
            affected.is_empty(),
            "non-fresh boundary must not mark keys affected"
        );
        assert_identical(&records, &[4]);
    }

    #[test]
    fn key_spanning_a_whole_middle_range_is_caught() {
        let dst = Ipv4Addr::new(203, 0, 113, 9);
        // Key A brackets a quiet middle range filled by key B only.
        let mut records = looping_records(1_000, 900_000_000, 60, 4, 9, dst);
        records.extend(looping_records(
            1_100,
            10_000,
            50,
            6,
            10,
            Ipv4Addr::new(198, 51, 100, 3),
        ));
        records.sort_by_key(|r| r.timestamp_ns);
        // Splits isolating the B-burst into its own middle range.
        assert_identical(&records, &[2, 7]);
    }

    #[test]
    fn empty_and_single_record_traces() {
        assert_identical(&[], &[]);
        let one = looping_records(1_000, 1, 60, 1, 3, Ipv4Addr::new(203, 0, 113, 9));
        assert_identical(&one, &[]);
    }

    #[test]
    fn run_matches_serial_at_many_thread_counts() {
        let mut records = Vec::new();
        for (i, dst) in [
            Ipv4Addr::new(203, 0, 113, 9),
            Ipv4Addr::new(198, 51, 100, 3),
            Ipv4Addr::new(192, 0, 2, 200),
        ]
        .into_iter()
        .enumerate()
        {
            records.extend(looping_records(
                1_000 + i as u64 * 7,
                40_000_000,
                60,
                7,
                i as u16,
                dst,
            ));
        }
        records.sort_by_key(|r| r.timestamp_ns);
        let cfg = DetectorConfig::default();
        let serial = Detector::new(cfg).run(&records);
        for threads in [1, 2, 3, 4, 8, 16] {
            let block = BlockParallelDetector::new(cfg, threads).run(&records);
            assert_eq!(serial.streams, block.streams, "threads={threads}");
            assert_eq!(serial.loops, block.loops, "threads={threads}");
            assert_eq!(serial.stats, block.stats, "threads={threads}");
        }
    }

    #[test]
    fn block_metric_names_are_static_and_cover_fallback() {
        assert_eq!(block_metric(0, "records"), "block.w0.records");
        assert_eq!(block_metric(31, "busy"), "block.w31.busy");
        assert_eq!(block_metric(100, "scan"), "block.w100.scan");
        assert!(std::ptr::eq(
            block_metric(100, "scan"),
            block_metric(100, "scan")
        ));
    }
}
