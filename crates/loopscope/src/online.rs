//! Online (streaming) loop detection.
//!
//! The paper's pipeline is offline: it assumes the whole trace is on disk.
//! An operator who wants to *alarm* on loops needs the same logic as a
//! single pass with bounded memory. This module provides that: records are
//! pushed in timestamp order, and validated replica streams / merged
//! routing loops are emitted as soon as the evidence is complete —
//! a stream when its candidate has been silent for the replica gap, a loop
//! when its prefix has been loop-free for the merge gap.
//!
//! Semantics match the offline [`crate::Detector`] exactly on any trace
//! (the equivalence is property-tested), with one bounded-memory knob:
//! [`OnlineDetector::with_history_horizon`] limits how much per-prefix
//! packet history is retained for the co-loop and gap-clean rules. The
//! default horizon covers the merge gap, which is what exact equivalence
//! requires.

use crate::config::DetectorConfig;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::key::ReplicaKey;
use crate::merge::RoutingLoop;
use crate::record::TraceRecord;
use crate::stream::{Observation, ReplicaStream};
use std::collections::VecDeque;
use telemetry::trace::{self, TraceName};
use telemetry::{tm_trace, LazyCounter, LazyGauge};

static TM_OPEN_CANDIDATES: LazyGauge = LazyGauge::new("online.open_candidates");
static TM_PREFIX_HISTORY: LazyGauge = LazyGauge::new("online.prefix_history");
static TM_STREAMS_EMITTED: LazyCounter = LazyCounter::new("online.streams_emitted");
static TM_LOOPS_EMITTED: LazyCounter = LazyCounter::new("online.loops_emitted");

// Event-trace instants marking the moment evidence completed — the
// temporal signal a cumulative counter cannot carry.
static TR_STREAM_EMITTED: TraceName = TraceName::new("online.stream_emitted");
static TR_LOOP_EMITTED: TraceName = TraceName::new("online.loop_emitted");

/// Events emitted by the streaming detector.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineEvent {
    /// A validated replica stream (post step 2).
    Stream(ReplicaStream),
    /// A merged routing loop, emitted once its prefix has been quiet for
    /// the merge gap (post step 3).
    Loop(RoutingLoop),
}

#[derive(Debug)]
struct OpenCandidate {
    observations: Vec<Observation>,
    record_seqs: Vec<u64>,
    last_ip_checksum: u16,
    protocol: u8,
}

#[derive(Debug, Default)]
struct PrefixState {
    /// Recent records to this /24: `(timestamp, record sequence number)`.
    history: VecDeque<(u64, u64)>,
    /// Validated streams not yet committed to an emitted loop. Merging is
    /// deferred until no open candidate can change the outcome, so the
    /// result is byte-identical to the offline merge.
    pending: Vec<ReplicaStream>,
    /// First-observation time of every open candidate to this prefix.
    open_cands: FxHashMap<ReplicaKey, u64>,
}

/// Single-pass detector.
pub struct OnlineDetector {
    cfg: DetectorConfig,
    history_horizon_ns: u64,
    now: u64,
    seq: u64,
    open: FxHashMap<ReplicaKey, OpenCandidate>,
    prefixes: FxHashMap<net_types::Ipv4Prefix, PrefixState>,
    /// Sequence numbers of records known to belong to a candidate with at
    /// least two sightings ("looped" in the §IV-A.2 sense).
    looped_seqs: FxHashSet<u64>,
    /// Validated streams waiting for their prefix's loop to close; kept
    /// inside `open_loop` once merged.
    stats: OnlineStats,
}

/// Streaming counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Records consumed.
    pub records: u64,
    /// Candidates with >= 2 sightings seen so far.
    pub raw_candidates: u64,
    /// Rejected: too few replicas.
    pub rejected_short: u64,
    /// Rejected: co-loop rule.
    pub rejected_covalidation: u64,
    /// Times a sighting failed the RFC 1624 checksum-consistency check and
    /// forced a candidate split (same quantity as
    /// [`crate::DetectionStats::checksum_splits`]).
    pub checksum_splits: u64,
    /// Validated streams emitted.
    pub streams_emitted: u64,
    /// Loops emitted.
    pub loops_emitted: u64,
    /// Total replica sightings across emitted streams (same quantity as
    /// [`crate::DetectionStats::looped_sightings`]).
    pub looped_sightings: u64,
}

impl OnlineStats {
    /// The streaming counters mapped onto the offline
    /// [`crate::DetectionStats`] layout. On identical input every field
    /// matches the offline detector's — the pipeline conformance tests
    /// assert it.
    pub fn as_detection_stats(&self) -> crate::replica::DetectionStats {
        crate::replica::DetectionStats {
            total_records: self.records,
            raw_candidates: self.raw_candidates,
            rejected_short: self.rejected_short,
            rejected_covalidation: self.rejected_covalidation,
            checksum_splits: self.checksum_splits,
            validated_streams: self.streams_emitted,
            routing_loops: self.loops_emitted,
            looped_sightings: self.looped_sightings,
        }
    }
}

impl OnlineDetector {
    /// Creates a streaming detector with the given (offline-compatible)
    /// configuration.
    pub fn new(cfg: DetectorConfig) -> Self {
        cfg.validate().expect("invalid detector configuration");
        // Exact offline equivalence needs history reaching back from the
        // moment a gap-clean check runs to the start of the gap. A check
        // runs when the later stream closes, i.e. up to one replica gap
        // after its last sighting; the stream itself can span up to 255
        // inter-replica gaps (a TTL is at most 255); and the merge gap
        // precedes the stream. Hence:
        //   horizon >= merge_gap + (255 + 1) * replica_gap.
        let horizon = cfg.merge_gap_ns + cfg.max_replica_gap_ns.saturating_mul(256);
        Self {
            cfg,
            history_horizon_ns: horizon,
            now: 0,
            seq: 0,
            open: FxHashMap::default(),
            prefixes: FxHashMap::default(),
            looped_seqs: FxHashSet::default(),
            stats: OnlineStats::default(),
        }
    }

    /// Shrinks the retained per-prefix history (bounded-memory mode). With
    /// a horizon below the merge gap, step 3's gap-clean rule degrades to
    /// "no *remembered* non-looped packet in the gap", which can merge
    /// loops the offline detector would keep apart.
    pub fn with_history_horizon(mut self, horizon_ns: u64) -> Self {
        self.history_horizon_ns = horizon_ns;
        self
    }

    /// Streaming counters so far.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Number of currently-open candidates (memory introspection).
    pub fn open_candidates(&self) -> usize {
        self.open.len()
    }

    /// Pushes one record; returns any events whose evidence completed.
    ///
    /// # Panics
    /// Panics when records go backwards in time.
    pub fn push(&mut self, rec: &TraceRecord) -> Vec<OnlineEvent> {
        assert!(
            rec.timestamp_ns >= self.now,
            "records must be pushed in timestamp order"
        );
        self.now = rec.timestamp_ns;
        self.stats.records += 1;
        let seq = self.seq;
        self.seq += 1;
        let mut events = Vec::new();

        // Expire stale candidates and quiet loops *before* processing, so
        // a record at time T sees exactly the state the offline pass would
        // have built from records before T.
        self.expire(&mut events);

        // Record history for the co-loop / gap-clean rules.
        let prefix = rec.dst_slash24();
        let pstate = self.prefixes.entry(prefix).or_default();
        pstate.history.push_back((rec.timestamp_ns, seq));
        TM_PREFIX_HISTORY.add(1);

        // Step 1 (incremental): candidate join / split.
        let key = ReplicaKey::of(rec);
        match self.open.get_mut(&key) {
            Some(cand) => {
                let last = *cand.observations.last().expect("non-empty");
                // The same continuation rule, verbatim, as the offline
                // scanner — equivalence depends on it.
                let check = crate::replica::check_continuation(
                    &self.cfg,
                    last,
                    cand.last_ip_checksum,
                    cand.protocol,
                    rec,
                );
                if check.joins {
                    cand.observations.push(Observation {
                        timestamp_ns: rec.timestamp_ns,
                        ttl: rec.ttl,
                    });
                    cand.record_seqs.push(seq);
                    cand.last_ip_checksum = rec.ip_checksum;
                    if cand.observations.len() == 2 {
                        self.stats.raw_candidates += 1;
                        for s in &cand.record_seqs {
                            self.looped_seqs.insert(*s);
                        }
                    } else if cand.observations.len() > 2 {
                        self.looped_seqs.insert(seq);
                    }
                } else {
                    if check.checksum_split {
                        self.stats.checksum_splits += 1;
                    }
                    let cand = self.open.remove(&key).unwrap();
                    self.close_candidate(key, cand, &mut events);
                    self.open.insert(key, OpenCandidate::new(rec, seq));
                    self.prefixes
                        .entry(prefix)
                        .or_default()
                        .open_cands
                        .insert(key, rec.timestamp_ns);
                }
            }
            None => {
                self.open.insert(key, OpenCandidate::new(rec, seq));
                self.prefixes
                    .entry(prefix)
                    .or_default()
                    .open_cands
                    .insert(key, rec.timestamp_ns);
            }
        }
        TM_OPEN_CANDIDATES.set(self.open.len() as i64);
        events
    }

    /// Flushes everything at end of trace; returns the tail events and
    /// the final counters.
    pub fn finish(mut self) -> (Vec<OnlineEvent>, OnlineStats) {
        let mut events = Vec::new();
        let mut keys: Vec<(u64, u16, ReplicaKey)> = self
            .open
            .iter()
            .map(|(k, c)| (c.observations[0].timestamp_ns, k.ident, *k))
            .collect();
        keys.sort_unstable_by_key(|(start, ident, _)| (*start, *ident));
        for (_, _, key) in keys {
            let cand = self.open.remove(&key).unwrap();
            self.close_candidate(key, cand, &mut events);
        }
        // Force-flush every pending loop.
        let prefixes: Vec<net_types::Ipv4Prefix> = self.prefixes.keys().copied().collect();
        for p in prefixes {
            self.flush_final_loops(p, true, &mut events);
        }
        events.sort_by_key(|e| match e {
            OnlineEvent::Stream(s) => (0u8, s.start_ns(), s.key.ident),
            OnlineEvent::Loop(l) => (1u8, l.start_ns, 0),
        });
        (events, self.stats)
    }

    fn expire(&mut self, events: &mut Vec<OnlineEvent>) {
        // Candidates silent past the replica gap can never grow again.
        // Close them in stream-start order (HashMap order would make the
        // output depend on hasher state).
        let cutoff = self.now.saturating_sub(self.cfg.max_replica_gap_ns);
        let mut stale: Vec<(u64, u16, ReplicaKey)> = self
            .open
            .iter()
            .filter(|(_, c)| c.observations.last().unwrap().timestamp_ns < cutoff)
            .map(|(k, c)| (c.observations[0].timestamp_ns, k.ident, *k))
            .collect();
        stale.sort_unstable_by_key(|(start, ident, _)| (*start, *ident));
        for (_, _, key) in stale {
            let cand = self.open.remove(&key).unwrap();
            self.close_candidate(key, cand, events);
        }
        // Emit loops whose composition can no longer change, and trim
        // history.
        let prefixes: Vec<net_types::Ipv4Prefix> = self.prefixes.keys().copied().collect();
        for p in prefixes {
            self.flush_final_loops(p, false, events);
            let state = self.prefixes.get_mut(&p).expect("listed");
            let h_cutoff = self.now.saturating_sub(self.history_horizon_ns);
            while state.history.front().is_some_and(|(t, _)| *t < h_cutoff) {
                let (_, old_seq) = state.history.pop_front().unwrap();
                self.looped_seqs.remove(&old_seq);
                TM_PREFIX_HISTORY.add(-1);
            }
        }
    }

    /// Runs the offline merge over this prefix's pending streams and emits
    /// every loop that no future stream can still join: future streams
    /// start no earlier than `min(now, earliest open candidate)`, so a loop
    /// whose end lies more than the merge gap before that point is final.
    /// With `force`, everything is emitted (end of trace).
    fn flush_final_loops(
        &mut self,
        prefix: net_types::Ipv4Prefix,
        force: bool,
        events: &mut Vec<OnlineEvent>,
    ) {
        let Some(state) = self.prefixes.get(&prefix) else {
            return;
        };
        if state.pending.is_empty() {
            return;
        }
        let barrier = state
            .open_cands
            .values()
            .copied()
            .min()
            .unwrap_or(u64::MAX)
            .min(self.now);
        // Offline-identical merge over pending streams, sorted by start.
        let mut streams: Vec<ReplicaStream> = state.pending.clone();
        streams.sort_by_key(|s| (s.start_ns(), s.end_ns(), s.key.ident));
        let mut loops: Vec<RoutingLoop> = Vec::new();
        for s in streams {
            match loops.last_mut() {
                Some(l)
                    if s.start_ns() <= l.end_ns
                        || (s.start_ns() - l.end_ns <= self.cfg.merge_gap_ns
                            && self.gap_is_clean(prefix, l.end_ns, s.start_ns())) =>
                {
                    l.start_ns = l.start_ns.min(s.start_ns());
                    l.end_ns = l.end_ns.max(s.end_ns());
                    l.streams.push(s);
                }
                _ => loops.push(RoutingLoop {
                    prefix,
                    start_ns: s.start_ns(),
                    end_ns: s.end_ns(),
                    streams: vec![s],
                }),
            }
        }
        // Emit the final prefix-ordered loops; keep the rest pending.
        let mut remaining: Vec<ReplicaStream> = Vec::new();
        for l in loops {
            let is_final = force || l.end_ns.saturating_add(self.cfg.merge_gap_ns) < barrier;
            if is_final {
                self.stats.loops_emitted += 1;
                TM_LOOPS_EMITTED.inc();
                trace::instant(&TR_LOOP_EMITTED);
                tm_trace!(
                    "loop finalised for {}: {} streams over {} ns",
                    l.prefix,
                    l.streams.len(),
                    l.end_ns - l.start_ns
                );
                events.push(OnlineEvent::Loop(l));
            } else {
                remaining.extend(l.streams);
            }
        }
        self.prefixes
            .get_mut(&prefix)
            .expect("still present")
            .pending = remaining;
    }

    /// The offline gap-clean rule over retained history: no non-looped
    /// packet to the prefix in the open interval `(from, to)`.
    fn gap_is_clean(&self, prefix: net_types::Ipv4Prefix, from: u64, to: u64) -> bool {
        if to <= from + 1 {
            return true;
        }
        let Some(state) = self.prefixes.get(&prefix) else {
            return true;
        };
        state
            .history
            .iter()
            .filter(|(t, _)| *t > from && *t < to)
            .all(|(_, seq)| self.looped_seqs.contains(seq))
    }

    fn close_candidate(
        &mut self,
        key: ReplicaKey,
        cand: OpenCandidate,
        events: &mut Vec<OnlineEvent>,
    ) {
        if let Some(state) = self
            .prefixes
            .get_mut(&net_types::Ipv4Prefix::slash24_of(key.dst))
        {
            state.open_cands.remove(&key);
        }
        if cand.observations.len() < 2 {
            return;
        }
        let stream = ReplicaStream {
            key,
            observations: cand.observations,
            // The offline record indices are global positions; online we
            // use sequence numbers, which coincide when the same trace is
            // replayed from the start.
            record_indices: cand.record_seqs.iter().map(|s| *s as usize).collect(),
        };
        // Step 2.
        if stream.len() < self.cfg.min_stream_len {
            self.stats.rejected_short += 1;
            return;
        }
        if self.cfg.covalidate_prefix && !self.co_loop_holds(&stream) {
            self.stats.rejected_covalidation += 1;
            return;
        }
        self.stats.streams_emitted += 1;
        self.stats.looped_sightings += stream.len() as u64;
        TM_STREAMS_EMITTED.inc();
        trace::instant(&TR_STREAM_EMITTED);
        events.push(OnlineEvent::Stream(stream.clone()));
        // Step 3 is deferred: the stream joins the prefix's pending set and
        // loops are emitted once their composition is final.
        self.prefixes
            .entry(stream.dst_slash24())
            .or_default()
            .pending
            .push(stream);
    }

    fn co_loop_holds(&self, stream: &ReplicaStream) -> bool {
        let slack = (stream.mean_spacing_ns() as f64 * self.cfg.covalidate_slack_spacings) as u64;
        let from = stream.start_ns().saturating_add(slack);
        let to = stream.end_ns().saturating_sub(slack);
        if from > to {
            return true;
        }
        let Some(state) = self.prefixes.get(&stream.dst_slash24()) else {
            return true;
        };
        state
            .history
            .iter()
            .filter(|(t, _)| *t >= from && *t <= to)
            .all(|(_, seq)| self.looped_seqs.contains(seq))
    }
}

impl OpenCandidate {
    fn new(rec: &TraceRecord, seq: u64) -> Self {
        Self {
            observations: vec![Observation {
                timestamp_ns: rec.timestamp_ns,
                ttl: rec.ttl,
            }],
            record_seqs: vec![seq],
            last_ip_checksum: rec.ip_checksum,
            protocol: rec.protocol,
        }
    }
}

/// Runs the streaming detector over a full trace and collects the events —
/// the bridge used to compare online and offline results.
pub fn run_streaming(
    cfg: DetectorConfig,
    records: &[TraceRecord],
) -> (Vec<OnlineEvent>, OnlineStats) {
    let mut det = OnlineDetector::new(cfg);
    let mut events = Vec::new();
    for rec in records {
        events.extend(det.push(rec));
    }
    let (mut tail, stats) = det.finish();
    events.append(&mut tail);
    (events, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::Detector;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    fn looping_records(
        start_ns: u64,
        spacing_ns: u64,
        first_ttl: u8,
        n: usize,
        ident: u16,
        dst: Ipv4Addr,
    ) -> Vec<TraceRecord> {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 7, 7, 7),
            dst,
            5555,
            80,
            TcpFlags::ACK,
            &b"data"[..],
        );
        p.ip.ident = ident;
        p.ip.ttl = first_ttl;
        p.fill_checksums();
        let mut out = Vec::new();
        let mut t = start_ns;
        for k in 0..n {
            if k > 0 {
                p.ip.decrement_ttl();
                p.ip.decrement_ttl();
            }
            out.push(TraceRecord::from_packet(t, &p));
            t += spacing_ns;
        }
        out
    }

    fn streams_of(events: &[OnlineEvent]) -> Vec<&ReplicaStream> {
        events
            .iter()
            .filter_map(|e| match e {
                OnlineEvent::Stream(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn loops_of(events: &[OnlineEvent]) -> Vec<&RoutingLoop> {
        events
            .iter()
            .filter_map(|e| match e {
                OnlineEvent::Loop(l) => Some(l),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn single_loop_streamed() {
        let recs = looping_records(0, 1_000_000, 60, 10, 1, Ipv4Addr::new(203, 0, 113, 1));
        let (events, stats) = run_streaming(DetectorConfig::default(), &recs);
        let streams = streams_of(&events);
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].len(), 10);
        assert_eq!(loops_of(&events).len(), 1);
        assert_eq!(stats.records, 10);
        assert_eq!(stats.streams_emitted, 1);
    }

    #[test]
    fn stream_emitted_on_gap_expiry_not_before() {
        let recs = looping_records(0, 1_000_000, 60, 5, 1, Ipv4Addr::new(203, 0, 113, 1));
        let mut det = OnlineDetector::new(DetectorConfig::default());
        let mut live_events = Vec::new();
        for r in &recs {
            live_events.extend(det.push(r));
        }
        assert!(live_events.is_empty(), "stream still open, nothing emitted");
        // A later unrelated record past the gap triggers the flush.
        let mut other = Packet::tcp_flags(
            Ipv4Addr::new(100, 1, 1, 1),
            Ipv4Addr::new(198, 51, 100, 1),
            9,
            9,
            TcpFlags::ACK,
            &b""[..],
        );
        other.ip.ident = 999;
        other.fill_checksums();
        let late = TraceRecord::from_packet(10_000_000_000, &other);
        let events = det.push(&late);
        assert_eq!(streams_of(&events).len(), 1);
    }

    #[test]
    fn matches_offline_on_multi_loop_trace() {
        let mut recs = Vec::new();
        for j in 0..6u16 {
            recs.extend(looping_records(
                u64::from(j) * 2_000_000_000,
                1_500_000,
                64,
                4 + usize::from(j % 3),
                j,
                Ipv4Addr::new(203, 0, (j % 4) as u8, 1),
            ));
        }
        // Background noise.
        for i in 0..200u16 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 2, 2, 2),
                Ipv4Addr::new(20, 0, (i % 5) as u8, 1),
                1000,
                80,
                TcpFlags::ACK,
                &b""[..],
            );
            p.ip.ident = i;
            p.fill_checksums();
            recs.push(TraceRecord::from_packet(u64::from(i) * 40_000_000, &p));
        }
        recs.sort_by_key(|r| r.timestamp_ns);

        let offline = Detector::new(DetectorConfig::default()).run(&recs);
        let (events, stats) = run_streaming(DetectorConfig::default(), &recs);
        let streams = streams_of(&events);
        assert_eq!(streams.len(), offline.streams.len());
        for (a, b) in streams.iter().zip(&offline.streams) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.observations, b.observations);
        }
        let loops = loops_of(&events);
        assert_eq!(loops.len(), offline.loops.len());
        assert_eq!(stats.raw_candidates, offline.stats.raw_candidates);
        assert_eq!(stats.rejected_short, offline.stats.rejected_short);
    }

    #[test]
    fn covalidation_applies_online() {
        let mut recs = looping_records(0, 1_000_000, 60, 5, 1, Ipv4Addr::new(203, 0, 113, 9));
        let mut bystander = Packet::tcp_flags(
            Ipv4Addr::new(100, 2, 2, 2),
            Ipv4Addr::new(203, 0, 113, 10),
            777,
            443,
            TcpFlags::ACK,
            &b""[..],
        );
        bystander.ip.ident = 999;
        bystander.fill_checksums();
        recs.push(TraceRecord::from_packet(2_000_000, &bystander));
        recs.sort_by_key(|r| r.timestamp_ns);
        let (events, stats) = run_streaming(DetectorConfig::default(), &recs);
        assert!(streams_of(&events).is_empty());
        assert_eq!(stats.rejected_covalidation, 1);
    }

    #[test]
    fn long_stream_dirty_gap_matches_offline() {
        // Regression: the gap-clean check for a *long* later stream runs
        // long after the gap itself. A non-looped packet early in the gap
        // must still veto the merge, which requires the history horizon to
        // cover merge_gap + the stream's own duration.
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let mut recs = looping_records(0, 1_000_000, 30, 4, 1, dst); // L1: ~3 ms
                                                                     // The dirty bystander: one non-looped packet to the /24 at 300 ms.
        let mut bystander = Packet::tcp_flags(
            Ipv4Addr::new(100, 2, 2, 2),
            Ipv4Addr::new(203, 0, 113, 40),
            777,
            443,
            TcpFlags::ACK,
            &b""[..],
        );
        bystander.ip.ident = 999;
        bystander.fill_checksums();
        recs.push(TraceRecord::from_packet(300_000_000, &bystander));
        // L2: 25 sightings spaced 200 ms -> ~4.8 s duration, starting 59 s
        // after L1 (inside the 60 s merge gap).
        recs.extend(looping_records(59_000_000_000, 200_000_000, 64, 25, 2, dst));
        // A trailing unrelated record to force expiry + flush via push.
        let mut trailer = Packet::tcp_flags(
            Ipv4Addr::new(100, 3, 3, 3),
            Ipv4Addr::new(198, 51, 100, 1),
            5,
            6,
            TcpFlags::ACK,
            &b""[..],
        );
        trailer.ip.ident = 1234;
        trailer.fill_checksums();
        recs.push(TraceRecord::from_packet(70_000_000_000, &trailer));
        recs.sort_by_key(|r| r.timestamp_ns);

        let offline = Detector::new(DetectorConfig::default()).run(&recs);
        assert_eq!(offline.loops.len(), 2, "offline must keep the loops apart");
        let (events, _) = run_streaming(DetectorConfig::default(), &recs);
        assert_eq!(
            loops_of(&events).len(),
            2,
            "online must also keep them apart"
        );
    }

    #[test]
    fn merge_gap_bridges_online() {
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let mut recs = looping_records(0, 1_000_000, 60, 4, 1, dst);
        recs.extend(looping_records(30_000_000_000, 1_000_000, 60, 4, 2, dst));
        recs.sort_by_key(|r| r.timestamp_ns);
        let (events, _) = run_streaming(DetectorConfig::default(), &recs);
        let loops = loops_of(&events);
        assert_eq!(loops.len(), 1, "30 s gap must bridge");
        assert_eq!(loops[0].num_streams(), 2);
    }

    #[test]
    fn unrelated_traffic_bounded_memory() {
        let mut det = OnlineDetector::new(DetectorConfig::default());
        for i in 0..20_000u32 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 3, 3, 3),
                Ipv4Addr::new(20, 1, (i % 7) as u8, 1),
                2000,
                80,
                TcpFlags::ACK,
                &b""[..],
            );
            p.ip.ident = i as u16;
            p.fill_checksums();
            // 10 ms apart: after the 1 s replica gap, old candidates are
            // evicted, so at most ~100 remain open.
            det.push(&TraceRecord::from_packet(u64::from(i) * 10_000_000, &p));
        }
        assert!(
            det.open_candidates() < 200,
            "candidate table must stay bounded, got {}",
            det.open_candidates()
        );
    }

    #[test]
    #[should_panic(expected = "timestamp order")]
    fn out_of_order_panics() {
        let recs = looping_records(
            1_000_000,
            1_000_000,
            60,
            3,
            1,
            Ipv4Addr::new(203, 0, 113, 1),
        );
        let mut det = OnlineDetector::new(DetectorConfig::default());
        det.push(&recs[2]);
        det.push(&recs[0]);
    }
}
