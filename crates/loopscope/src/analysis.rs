//! Derivation of every figure/table statistic from a detection run.
//!
//! Every statistic here is a *fold*: [`AnalysisAccumulator`] computes the
//! whole §V suite incrementally — records as they are ingested, streams
//! and loops as they are emitted — so a streaming pipeline run produces
//! the full report in one pass with memory bounded by the number of
//! streams, never the number of records. The historical slice functions
//! (`trace_summary`, `mix_all`, …) are thin wrappers over the same folds
//! and remain the convenient API when the trace is already in memory.

use crate::merge::RoutingLoop;
use crate::record::TraceRecord;
use crate::stream::ReplicaStream;
use crate::traffic_class;
use stats::{CategoricalDist, Cdf, Histogram};

/// Table I row material for one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Observation window length in nanoseconds.
    pub duration_ns: u64,
    /// Total packets captured.
    pub total_packets: u64,
    /// Total bytes (original wire lengths).
    pub total_bytes: u64,
    /// Average offered bandwidth in bits per second.
    pub avg_bandwidth_bps: f64,
    /// Unique packets that looped (one per validated replica stream).
    pub looped_packets: u64,
    /// Total replica sightings (each looping packet seen k times counts k).
    pub looped_sightings: u64,
}

/// The full §V analysis of one trace: everything the paper's figures and
/// tables report, as produced by [`AnalysisAccumulator::report`].
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Table I row.
    pub summary: TraceSummary,
    /// Figure 2: TTL-delta distribution across replica streams.
    pub ttl_delta: Histogram,
    /// Figure 3: CDF of replicas per stream.
    pub stream_size_cdf: Cdf,
    /// Figure 4: CDF of mean inter-replica spacing, milliseconds.
    pub spacing_cdf_ms: Cdf,
    /// Figure 8: CDF of replica stream duration, milliseconds.
    pub stream_duration_cdf_ms: Cdf,
    /// Figure 9: CDF of merged routing-loop duration, seconds.
    pub loop_duration_cdf_s: Cdf,
    /// Figure 5: traffic mix of all traffic on the link.
    pub mix_all: CategoricalDist,
    /// Figure 6: traffic mix of looped traffic (per sighting).
    pub mix_looped: CategoricalDist,
    /// Figure 7: `(time_s, destination)` scatter of replica streams.
    pub dest_scatter: Vec<(f64, std::net::Ipv4Addr)>,
    /// Class-C share of replica-stream destinations.
    pub class_c_share: f64,
}

/// Single-pass fold of the entire §V statistic suite.
///
/// Feed it records (via [`AnalysisAccumulator::add_record`] or the
/// [`crate::pipeline::Sink`] impl) and the detection output (streams and
/// loops), then call [`AnalysisAccumulator::report`]. The result is
/// identical to running the slice functions over a fully materialised
/// trace: every statistic folds over records one at a time, and the
/// looped-traffic mix is computed from each stream's [`crate::ReplicaKey`]
/// — legitimate because replicas of one looped packet share every header
/// field the classifier reads (that is what makes them replicas).
#[derive(Debug, Clone)]
pub struct AnalysisAccumulator {
    first_ts: Option<u64>,
    last_ts: u64,
    total_packets: u64,
    total_bytes: u64,
    mix_all: CategoricalDist,
    mix_looped: CategoricalDist,
    ttl_delta: Histogram,
    stream_size: Cdf,
    spacing_ms: Cdf,
    stream_duration_ms: Cdf,
    loop_duration_s: Cdf,
    dest_scatter: Vec<(f64, std::net::Ipv4Addr)>,
    looped_packets: u64,
    looped_sightings: u64,
    class_c_streams: u64,
}

impl Default for AnalysisAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            first_ts: None,
            last_ts: 0,
            total_packets: 0,
            total_bytes: 0,
            mix_all: CategoricalDist::new(&traffic_class::CATEGORIES),
            mix_looped: CategoricalDist::new(&traffic_class::CATEGORIES),
            ttl_delta: Histogram::new(),
            stream_size: Cdf::new(),
            spacing_ms: Cdf::new(),
            stream_duration_ms: Cdf::new(),
            loop_duration_s: Cdf::new(),
            dest_scatter: Vec::new(),
            looped_packets: 0,
            looped_sightings: 0,
            class_c_streams: 0,
        }
    }

    /// Folds one captured record (Table I counts, Figure 5 mix).
    pub fn add_record(&mut self, rec: &TraceRecord) {
        self.first_ts.get_or_insert(rec.timestamp_ns);
        self.last_ts = rec.timestamp_ns;
        self.total_packets += 1;
        self.total_bytes += u64::from(rec.total_len);
        self.mix_all.record(&traffic_class::classify(rec));
    }

    /// Folds one validated replica stream (Figures 2, 3, 4, 6, 7, 8).
    pub fn add_stream(&mut self, s: &ReplicaStream) {
        self.ttl_delta.add(u64::from(s.ttl_delta()));
        self.stream_size.add(s.len() as f64);
        self.spacing_ms.add(s.mean_spacing_ns() as f64 / 1e6);
        self.stream_duration_ms.add(s.duration_ns() as f64 / 1e6);
        self.dest_scatter
            .push((s.start_ns() as f64 / 1e9, s.key.dst));
        // Every sighting of this stream classifies identically — the key
        // carries the destination and the full transport summary.
        self.mix_looped.record_n(
            &traffic_class::classify_parts(s.key.dst, &s.key.transport),
            s.len() as u64,
        );
        self.looped_packets += 1;
        self.looped_sightings += s.len() as u64;
        if (192..=223).contains(&s.key.dst.octets()[0]) {
            self.class_c_streams += 1;
        }
    }

    /// Folds one merged routing loop (Figure 9).
    pub fn add_loop(&mut self, l: &RoutingLoop) {
        self.loop_duration_s.add(l.duration_ns() as f64 / 1e9);
    }

    /// The Table I row from what has been folded so far.
    pub fn summary(&self) -> TraceSummary {
        let duration_ns = self.last_ts - self.first_ts.unwrap_or(self.last_ts);
        let avg_bandwidth_bps = if duration_ns > 0 {
            self.total_bytes as f64 * 8.0 / (duration_ns as f64 / 1e9)
        } else {
            0.0
        };
        TraceSummary {
            duration_ns,
            total_packets: self.total_packets,
            total_bytes: self.total_bytes,
            avg_bandwidth_bps,
            looped_packets: self.looped_packets,
            looped_sightings: self.looped_sightings,
        }
    }

    /// The full report from what has been folded so far.
    pub fn report(&self) -> AnalysisReport {
        let streams = self.looped_packets;
        AnalysisReport {
            summary: self.summary(),
            ttl_delta: self.ttl_delta.clone(),
            stream_size_cdf: self.stream_size.clone(),
            spacing_cdf_ms: self.spacing_ms.clone(),
            stream_duration_cdf_ms: self.stream_duration_ms.clone(),
            loop_duration_cdf_s: self.loop_duration_s.clone(),
            mix_all: self.mix_all.clone(),
            mix_looped: self.mix_looped.clone(),
            dest_scatter: self.dest_scatter.clone(),
            class_c_share: if streams == 0 {
                0.0
            } else {
                self.class_c_streams as f64 / streams as f64
            },
        }
    }
}

impl crate::pipeline::Sink for AnalysisAccumulator {
    fn on_record(&mut self, rec: &TraceRecord) -> std::io::Result<()> {
        self.add_record(rec);
        Ok(())
    }

    fn on_result(&mut self, result: &crate::pipeline::PipelineResult) -> std::io::Result<()> {
        for s in &result.streams {
            self.add_stream(s);
        }
        for l in &result.loops {
            self.add_loop(l);
        }
        Ok(())
    }
}

/// Computes the Table I row for a trace + its validated streams.
pub fn trace_summary(records: &[TraceRecord], streams: &[ReplicaStream]) -> TraceSummary {
    let mut acc = AnalysisAccumulator::new();
    for rec in records {
        acc.first_ts.get_or_insert(rec.timestamp_ns);
        acc.last_ts = rec.timestamp_ns;
        acc.total_packets += 1;
        acc.total_bytes += u64::from(rec.total_len);
    }
    acc.looped_packets = streams.len() as u64;
    acc.looped_sightings = streams.iter().map(|s| s.len() as u64).sum();
    acc.summary()
}

/// Figure 2: distribution of TTL deltas across replica streams.
pub fn ttl_delta_distribution(streams: &[ReplicaStream]) -> Histogram {
    let mut h = Histogram::new();
    for s in streams {
        h.add(u64::from(s.ttl_delta()));
    }
    h
}

/// Figure 3: CDF of the number of replicas per stream.
pub fn stream_size_cdf(streams: &[ReplicaStream]) -> Cdf {
    Cdf::from_samples(streams.iter().map(|s| s.len() as f64))
}

/// Figure 4: CDF of mean inter-replica spacing, in milliseconds.
pub fn spacing_cdf_ms(streams: &[ReplicaStream]) -> Cdf {
    Cdf::from_samples(streams.iter().map(|s| s.mean_spacing_ns() as f64 / 1e6))
}

/// Figure 8: CDF of replica stream duration, in milliseconds.
pub fn stream_duration_cdf_ms(streams: &[ReplicaStream]) -> Cdf {
    Cdf::from_samples(streams.iter().map(|s| s.duration_ns() as f64 / 1e6))
}

/// Figure 9: CDF of merged routing-loop duration, in seconds.
pub fn loop_duration_cdf_s(loops: &[RoutingLoop]) -> Cdf {
    Cdf::from_samples(loops.iter().map(|l| l.duration_ns() as f64 / 1e9))
}

/// Figure 7: `(time_s, destination)` scatter of replica streams.
pub fn dest_scatter(streams: &[ReplicaStream]) -> Vec<(f64, std::net::Ipv4Addr)> {
    streams
        .iter()
        .map(|s| (s.start_ns() as f64 / 1e9, s.key.dst))
        .collect()
}

/// Figure 5: traffic-type distribution of all traffic on the link.
pub fn mix_all(records: &[TraceRecord]) -> CategoricalDist {
    traffic_class::distribution(records.iter())
}

/// Figure 6: traffic-type distribution of looped traffic (every replica
/// sighting of every validated stream). Computed from the stream keys —
/// all replicas of a stream share the classified header fields, so this
/// equals classifying the underlying records individually.
pub fn mix_looped(streams: &[ReplicaStream]) -> CategoricalDist {
    let mut dist = CategoricalDist::new(&traffic_class::CATEGORIES);
    for s in streams {
        dist.record_n(
            &traffic_class::classify_parts(s.key.dst, &s.key.transport),
            s.len() as u64,
        );
    }
    dist
}

/// Figure 7 support: number of *distinct* looped /24s per time bucket —
/// the "wide spectrum of addresses are affected by routing loops during
/// the packet trace collection" observation, as a series.
pub fn dest_diversity_series(streams: &[ReplicaStream], bucket_ns: u64) -> Vec<(u64, usize)> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut buckets: BTreeMap<u64, BTreeSet<net_types::Ipv4Prefix>> = BTreeMap::new();
    for s in streams {
        let b = s.start_ns() / bucket_ns * bucket_ns;
        buckets.entry(b).or_default().insert(s.dst_slash24());
    }
    buckets.into_iter().map(|(t, set)| (t, set.len())).collect()
}

/// Class-C share of replica-stream destinations (Figure 7's observation
/// that "there are more looped packets in the Class C IP addresses").
pub fn class_c_share(streams: &[ReplicaStream]) -> f64 {
    if streams.is_empty() {
        return 0.0;
    }
    let class_c = streams
        .iter()
        .filter(|s| {
            let a = s.key.dst.octets()[0];
            (192..=223).contains(&a)
        })
        .count();
    class_c as f64 / streams.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::replica::{DetectionResult, Detector};
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    /// Fabricates a trace with `n_loops` independent loops (delta 2), each
    /// trapping one packet for `sightings` sightings, plus background
    /// traffic.
    fn fabricated(n_loops: u16, sightings: usize) -> (Vec<TraceRecord>, DetectionResult) {
        let mut recs = Vec::new();
        for k in 0..n_loops {
            let dst = Ipv4Addr::new(203, 0, (k % 250) as u8, 1);
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 0, 0, 1),
                dst,
                1000 + k,
                80,
                TcpFlags::ACK,
                &b""[..],
            );
            p.ip.ident = k;
            p.ip.ttl = 60;
            p.fill_checksums();
            let base = u64::from(k) * 100_000_000;
            for s in 0..sightings {
                if s > 0 {
                    p.ip.decrement_ttl();
                    p.ip.decrement_ttl();
                }
                recs.push(TraceRecord::from_packet(base + s as u64 * 1_000_000, &p));
            }
        }
        // Background packets to untouched prefixes.
        for j in 0..50u16 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 0, 0, 2),
                Ipv4Addr::new(11, 1, (j % 250) as u8, 1),
                2000,
                80,
                TcpFlags::ACK | TcpFlags::PSH,
                &b""[..],
            );
            p.ip.ident = j;
            p.fill_checksums();
            recs.push(TraceRecord::from_packet(u64::from(j) * 3_000_000, &p));
        }
        recs.sort_by_key(|r| r.timestamp_ns);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        (recs, result)
    }

    #[test]
    fn summary_counts() {
        let (recs, result) = fabricated(5, 4);
        let sum = trace_summary(&recs, &result.streams);
        assert_eq!(sum.total_packets, recs.len() as u64);
        assert_eq!(sum.looped_packets, 5);
        assert_eq!(sum.looped_sightings, 20);
        assert!(sum.avg_bandwidth_bps > 0.0);
        assert!(sum.total_bytes >= 40 * recs.len() as u64);
    }

    #[test]
    fn fig2_delta_mode_is_two() {
        let (_recs, result) = fabricated(6, 5);
        let h = ttl_delta_distribution(&result.streams);
        assert_eq!(h.mode(), Some(2));
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn fig3_sizes() {
        let (_recs, result) = fabricated(4, 7);
        let mut cdf = stream_size_cdf(&result.streams);
        assert_eq!(cdf.min(), Some(7.0));
        assert_eq!(cdf.max(), Some(7.0));
    }

    #[test]
    fn fig4_spacing_in_ms() {
        let (_recs, result) = fabricated(3, 5);
        let mut cdf = spacing_cdf_ms(&result.streams);
        // 1 ms spacing in fabrication.
        assert!((cdf.median().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig8_fig9_durations() {
        let (_recs, result) = fabricated(3, 5);
        let mut f8 = stream_duration_cdf_ms(&result.streams);
        assert!((f8.max().unwrap() - 4.0).abs() < 1e-9); // 4 gaps × 1 ms
        let mut f9 = loop_duration_cdf_s(&result.loops);
        assert_eq!(f9.len(), result.loops.len());
        assert!(f9.max().unwrap() < 1.0);
    }

    #[test]
    fn fig7_scatter_and_class_c() {
        let (_recs, result) = fabricated(4, 4);
        let scatter = dest_scatter(&result.streams);
        assert_eq!(scatter.len(), 4);
        assert!(scatter.iter().all(|(t, _)| *t >= 0.0));
        assert_eq!(class_c_share(&result.streams), 1.0); // all 203.x
        assert_eq!(class_c_share(&[]), 0.0);
    }

    #[test]
    fn fig7_diversity_series() {
        let (_recs, result) = fabricated(6, 4);
        // Streams start 100 ms apart; bucket by 250 ms.
        let series = dest_diversity_series(&result.streams, 250_000_000);
        let total: usize = series.iter().map(|(_, n)| n).sum();
        assert!(total >= 6, "every stream's prefix counted: {series:?}");
        assert!(series.windows(2).all(|w| w[0].0 < w[1].0), "sorted buckets");
        assert!(dest_diversity_series(&[], 1_000).is_empty());
    }

    #[test]
    fn fig5_fig6_mixes() {
        let (recs, result) = fabricated(3, 5);
        let all = mix_all(&recs);
        let looped = mix_looped(&result.streams);
        assert_eq!(all.items(), recs.len() as u64);
        assert_eq!(looped.items(), 15);
        // All looped traffic here is TCP ACK.
        assert!((looped.fraction("TCP") - 1.0).abs() < 1e-9);
        assert!((looped.fraction("ACK") - 1.0).abs() < 1e-9);
        assert_eq!(looped.count("PSH"), 0);
        // The background traffic has PSH, so the all-mix does.
        assert!(all.count("PSH") > 0);
    }

    #[test]
    fn mix_looped_key_based_equals_record_based() {
        // The incremental mix classifies stream keys; the definitionally
        // correct version classifies every underlying record. They must
        // agree, because replicas share all classified fields.
        let (recs, result) = fabricated(4, 6);
        let by_key = mix_looped(&result.streams);
        let by_record = crate::traffic_class::distribution(
            result
                .streams
                .iter()
                .flat_map(|s| s.record_indices.iter())
                .map(|&i| &recs[i]),
        );
        assert_eq!(by_key.items(), by_record.items());
        for cat in crate::traffic_class::CATEGORIES {
            assert_eq!(by_key.count(cat), by_record.count(cat), "category {cat}");
        }
    }

    #[test]
    fn accumulator_matches_slice_functions() {
        let (recs, result) = fabricated(5, 4);
        let mut acc = AnalysisAccumulator::new();
        for r in &recs {
            acc.add_record(r);
        }
        for s in &result.streams {
            acc.add_stream(s);
        }
        for l in &result.loops {
            acc.add_loop(l);
        }
        let report = acc.report();
        assert_eq!(report.summary, trace_summary(&recs, &result.streams));
        let mut inc = report.stream_size_cdf.clone();
        let mut slice = stream_size_cdf(&result.streams);
        assert_eq!(inc.steps(), slice.steps());
        let mut inc = report.loop_duration_cdf_s.clone();
        let mut slice = loop_duration_cdf_s(&result.loops);
        assert_eq!(inc.steps(), slice.steps());
        assert_eq!(
            report.ttl_delta.fractions(),
            ttl_delta_distribution(&result.streams).fractions()
        );
        assert_eq!(report.mix_all.fractions(), mix_all(&recs).fractions());
        assert_eq!(
            report.mix_looped.fractions(),
            mix_looped(&result.streams).fractions()
        );
        assert_eq!(report.dest_scatter, dest_scatter(&result.streams));
        assert_eq!(report.class_c_share, class_c_share(&result.streams));
    }
}
