//! Derivation of every figure/table statistic from a detection run.

use crate::merge::RoutingLoop;
use crate::record::TraceRecord;
use crate::replica::DetectionResult;
use crate::stream::ReplicaStream;
use crate::traffic_class;
use stats::{CategoricalDist, Cdf, Histogram};

/// Table I row material for one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Observation window length in nanoseconds.
    pub duration_ns: u64,
    /// Total packets captured.
    pub total_packets: u64,
    /// Total bytes (original wire lengths).
    pub total_bytes: u64,
    /// Average offered bandwidth in bits per second.
    pub avg_bandwidth_bps: f64,
    /// Unique packets that looped (one per validated replica stream).
    pub looped_packets: u64,
    /// Total replica sightings (each looping packet seen k times counts k).
    pub looped_sightings: u64,
}

/// Computes the Table I row for a trace + detection result.
pub fn trace_summary(records: &[TraceRecord], result: &DetectionResult) -> TraceSummary {
    let duration_ns = match (records.first(), records.last()) {
        (Some(a), Some(b)) => b.timestamp_ns - a.timestamp_ns,
        _ => 0,
    };
    let total_bytes: u64 = records.iter().map(|r| u64::from(r.total_len)).sum();
    let avg_bandwidth_bps = if duration_ns > 0 {
        total_bytes as f64 * 8.0 / (duration_ns as f64 / 1e9)
    } else {
        0.0
    };
    TraceSummary {
        duration_ns,
        total_packets: records.len() as u64,
        total_bytes,
        avg_bandwidth_bps,
        looped_packets: result.looped_unique_packets(),
        looped_sightings: result.stats.looped_sightings,
    }
}

/// Figure 2: distribution of TTL deltas across replica streams.
pub fn ttl_delta_distribution(streams: &[ReplicaStream]) -> Histogram {
    let mut h = Histogram::new();
    for s in streams {
        h.add(u64::from(s.ttl_delta()));
    }
    h
}

/// Figure 3: CDF of the number of replicas per stream.
pub fn stream_size_cdf(streams: &[ReplicaStream]) -> Cdf {
    Cdf::from_samples(streams.iter().map(|s| s.len() as f64))
}

/// Figure 4: CDF of mean inter-replica spacing, in milliseconds.
pub fn spacing_cdf_ms(streams: &[ReplicaStream]) -> Cdf {
    Cdf::from_samples(streams.iter().map(|s| s.mean_spacing_ns() as f64 / 1e6))
}

/// Figure 8: CDF of replica stream duration, in milliseconds.
pub fn stream_duration_cdf_ms(streams: &[ReplicaStream]) -> Cdf {
    Cdf::from_samples(streams.iter().map(|s| s.duration_ns() as f64 / 1e6))
}

/// Figure 9: CDF of merged routing-loop duration, in seconds.
pub fn loop_duration_cdf_s(loops: &[RoutingLoop]) -> Cdf {
    Cdf::from_samples(loops.iter().map(|l| l.duration_ns() as f64 / 1e9))
}

/// Figure 7: `(time_s, destination)` scatter of replica streams.
pub fn dest_scatter(streams: &[ReplicaStream]) -> Vec<(f64, std::net::Ipv4Addr)> {
    streams
        .iter()
        .map(|s| (s.start_ns() as f64 / 1e9, s.key.dst))
        .collect()
}

/// Figure 5: traffic-type distribution of all traffic on the link.
pub fn mix_all(records: &[TraceRecord]) -> CategoricalDist {
    traffic_class::distribution(records.iter())
}

/// Figure 6: traffic-type distribution of looped traffic (every replica
/// sighting of every validated stream).
pub fn mix_looped(records: &[TraceRecord], result: &DetectionResult) -> CategoricalDist {
    let looped_records = result
        .streams
        .iter()
        .flat_map(|s| s.record_indices.iter())
        .map(|&i| &records[i]);
    traffic_class::distribution(looped_records)
}

/// Figure 7 support: number of *distinct* looped /24s per time bucket —
/// the "wide spectrum of addresses are affected by routing loops during
/// the packet trace collection" observation, as a series.
pub fn dest_diversity_series(streams: &[ReplicaStream], bucket_ns: u64) -> Vec<(u64, usize)> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut buckets: BTreeMap<u64, BTreeSet<net_types::Ipv4Prefix>> = BTreeMap::new();
    for s in streams {
        let b = s.start_ns() / bucket_ns * bucket_ns;
        buckets.entry(b).or_default().insert(s.dst_slash24());
    }
    buckets.into_iter().map(|(t, set)| (t, set.len())).collect()
}

/// Class-C share of replica-stream destinations (Figure 7's observation
/// that "there are more looped packets in the Class C IP addresses").
pub fn class_c_share(streams: &[ReplicaStream]) -> f64 {
    if streams.is_empty() {
        return 0.0;
    }
    let class_c = streams
        .iter()
        .filter(|s| {
            let a = s.key.dst.octets()[0];
            (192..=223).contains(&a)
        })
        .count();
    class_c as f64 / streams.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::replica::Detector;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    /// Fabricates a trace with `n_loops` independent loops (delta 2), each
    /// trapping one packet for `sightings` sightings, plus background
    /// traffic.
    fn fabricated(n_loops: u16, sightings: usize) -> (Vec<TraceRecord>, DetectionResult) {
        let mut recs = Vec::new();
        for k in 0..n_loops {
            let dst = Ipv4Addr::new(203, 0, (k % 250) as u8, 1);
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 0, 0, 1),
                dst,
                1000 + k,
                80,
                TcpFlags::ACK,
                &b""[..],
            );
            p.ip.ident = k;
            p.ip.ttl = 60;
            p.fill_checksums();
            let base = u64::from(k) * 100_000_000;
            for s in 0..sightings {
                if s > 0 {
                    p.ip.decrement_ttl();
                    p.ip.decrement_ttl();
                }
                recs.push(TraceRecord::from_packet(base + s as u64 * 1_000_000, &p));
            }
        }
        // Background packets to untouched prefixes.
        for j in 0..50u16 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 0, 0, 2),
                Ipv4Addr::new(11, 1, (j % 250) as u8, 1),
                2000,
                80,
                TcpFlags::ACK | TcpFlags::PSH,
                &b""[..],
            );
            p.ip.ident = j;
            p.fill_checksums();
            recs.push(TraceRecord::from_packet(u64::from(j) * 3_000_000, &p));
        }
        recs.sort_by_key(|r| r.timestamp_ns);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        (recs, result)
    }

    #[test]
    fn summary_counts() {
        let (recs, result) = fabricated(5, 4);
        let sum = trace_summary(&recs, &result);
        assert_eq!(sum.total_packets, recs.len() as u64);
        assert_eq!(sum.looped_packets, 5);
        assert_eq!(sum.looped_sightings, 20);
        assert!(sum.avg_bandwidth_bps > 0.0);
        assert!(sum.total_bytes >= 40 * recs.len() as u64);
    }

    #[test]
    fn fig2_delta_mode_is_two() {
        let (_recs, result) = fabricated(6, 5);
        let h = ttl_delta_distribution(&result.streams);
        assert_eq!(h.mode(), Some(2));
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn fig3_sizes() {
        let (_recs, result) = fabricated(4, 7);
        let mut cdf = stream_size_cdf(&result.streams);
        assert_eq!(cdf.min(), Some(7.0));
        assert_eq!(cdf.max(), Some(7.0));
    }

    #[test]
    fn fig4_spacing_in_ms() {
        let (_recs, result) = fabricated(3, 5);
        let mut cdf = spacing_cdf_ms(&result.streams);
        // 1 ms spacing in fabrication.
        assert!((cdf.median().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig8_fig9_durations() {
        let (_recs, result) = fabricated(3, 5);
        let mut f8 = stream_duration_cdf_ms(&result.streams);
        assert!((f8.max().unwrap() - 4.0).abs() < 1e-9); // 4 gaps × 1 ms
        let mut f9 = loop_duration_cdf_s(&result.loops);
        assert_eq!(f9.len(), result.loops.len());
        assert!(f9.max().unwrap() < 1.0);
    }

    #[test]
    fn fig7_scatter_and_class_c() {
        let (_recs, result) = fabricated(4, 4);
        let scatter = dest_scatter(&result.streams);
        assert_eq!(scatter.len(), 4);
        assert!(scatter.iter().all(|(t, _)| *t >= 0.0));
        assert_eq!(class_c_share(&result.streams), 1.0); // all 203.x
        assert_eq!(class_c_share(&[]), 0.0);
    }

    #[test]
    fn fig7_diversity_series() {
        let (_recs, result) = fabricated(6, 4);
        // Streams start 100 ms apart; bucket by 250 ms.
        let series = dest_diversity_series(&result.streams, 250_000_000);
        let total: usize = series.iter().map(|(_, n)| n).sum();
        assert!(total >= 6, "every stream's prefix counted: {series:?}");
        assert!(series.windows(2).all(|w| w[0].0 < w[1].0), "sorted buckets");
        assert!(dest_diversity_series(&[], 1_000).is_empty());
    }

    #[test]
    fn fig5_fig6_mixes() {
        let (recs, result) = fabricated(3, 5);
        let all = mix_all(&recs);
        let looped = mix_looped(&recs, &result);
        assert_eq!(all.items(), recs.len() as u64);
        assert_eq!(looped.items(), 15);
        // All looped traffic here is TCP ACK.
        assert!((looped.fraction("TCP") - 1.0).abs() < 1e-9);
        assert!((looped.fraction("ACK") - 1.0).abs() < 1e-9);
        assert_eq!(looped.count("PSH"), 0);
        // The background traffic has PSH, so the all-mix does.
        assert!(all.count("PSH") > 0);
    }
}
