//! The unified Source→Engine→Sink detection pipeline.
//!
//! The paper's algorithm is one pipeline — ingest → replica detection →
//! validation → merge → §V analysis — and this module is the single seam
//! through which every execution mode runs it:
//!
//! ```text
//!   RecordSource ──batches──▶ Engine ──events──▶ canonical order ──▶ Sinks
//!   (slice, pcap,             (serial, sharded,  (streams, loops)    (CSV, JSONL,
//!    pcap sequence, tap)       streaming)                             analysis, …)
//! ```
//!
//! * A [`RecordSource`] yields timestamp-ordered [`TraceRecord`] batches:
//!   an in-memory slice ([`SliceSource`]), a pcap stream decoded through
//!   the zero-alloc [`pcaplib::PcapReader::read_into`] path
//!   ([`PcapSource`]), or a sequence of pcap files ([`PcapFileSequence`]).
//!   Simulator taps plug in through the root crate's `TapSource` wrapper.
//! * An [`Engine`] consumes the batches and emits
//!   [`OnlineEvent`]s. All three detectors implement it — [`SerialEngine`],
//!   [`ShardedEngine`], [`StreamingEngine`] — under one contract: on the
//!   same input they produce the same streams, loops, and
//!   [`DetectionStats`] (the conformance tests assert equality on every
//!   fixture).
//! * A [`Sink`] observes each record as it is ingested (for single-pass
//!   whole-trace statistics) and the finished [`PipelineResult`] (for
//!   per-stream/per-loop output). CSV and JSONL emitters live here;
//!   [`crate::analysis::AnalysisAccumulator`] is a sink too, which is what
//!   lets `--streaming` produce the full §V report in bounded memory.
//!
//! [`run_pipeline`] wires the three together, attaches the
//! `pipeline.*` telemetry spans at the stage boundaries, and puts the
//! emitted streams and loops into the canonical order — streams by
//! `(start, first record index)`, loops by `(prefix, start)` — so the
//! output bytes never depend on which engine ran.

use crate::block::BlockParallelDetector;
use crate::config::DetectorConfig;
use crate::merge::{LoopKind, RoutingLoop};
use crate::online::{OnlineDetector, OnlineEvent};
use crate::record::TraceRecord;
use crate::replica::{DetectionResult, DetectionStats, Detector};
use crate::shard::ShardedDetector;
use crate::stream::ReplicaStream;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Records per batch handed to the engine by streaming sources.
const PCAP_BATCH: usize = 1024;

/// A loop is reported as open-ended when it is still active this close to
/// the end of the trace (the tail gap the CLI has always used).
pub const OPEN_TAIL_GAP_NS: u64 = 2_000_000_000;

/// What a source delivered: parseable records and skipped (unparseable)
/// ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceSummary {
    /// Records handed to the engine.
    pub records: u64,
    /// Records skipped because their IP header could not be parsed.
    pub skipped: u64,
}

/// Failure while pulling records out of a source.
#[derive(Debug)]
pub enum SourceError {
    /// The pcap layer rejected the stream.
    Pcap(pcaplib::PcapError),
    /// An underlying file could not be opened or read.
    Io(std::io::Error),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Pcap(e) => write!(f, "pcap error: {e}"),
            SourceError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// Failure anywhere in a pipeline run.
#[derive(Debug)]
pub enum PipelineError {
    /// The source failed.
    Source(SourceError),
    /// A sink failed to write.
    Sink(std::io::Error),
    /// The run was cancelled mid-stream (shutdown request). Raised from a
    /// batch callback to unwind the source; [`run_pipeline_with_progress`]
    /// catches it, drains the engine, flushes the sinks, and returns a
    /// result with [`PipelineResult::interrupted`] set — it never escapes
    /// a pipeline run. Drivers that pump sources by hand (the monitor
    /// daemon) use it the same way.
    Interrupted,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Source(e) => write!(f, "source: {e}"),
            PipelineError::Sink(e) => write!(f, "sink: {e}"),
            PipelineError::Interrupted => write!(f, "interrupted"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SourceError> for PipelineError {
    fn from(e: SourceError) -> Self {
        PipelineError::Source(e)
    }
}

/// A supplier of timestamp-ordered trace records.
///
/// Sources are single-use: [`RecordSource::for_each_batch`] drains the
/// source. Batch boundaries are an implementation detail — engines must
/// produce identical results however the same records are batched.
pub trait RecordSource {
    /// Calls `f` with successive record batches until the source is
    /// exhausted, then reports how many records were delivered and how
    /// many were skipped as unparseable. Errors from `f` (sink failures)
    /// propagate unchanged.
    fn for_each_batch(
        &mut self,
        f: &mut dyn FnMut(&[TraceRecord]) -> Result<(), PipelineError>,
    ) -> Result<SourceSummary, PipelineError>;

    /// The whole trace as one in-memory slice, when the source already
    /// holds it. Lets [`run_pipeline`] hand the slice straight to
    /// [`Engine::run_slice`], skipping the per-batch copy — the offline
    /// detectors' hot path stays exactly as fast as calling them directly.
    fn as_slice(&self) -> Option<&[TraceRecord]> {
        None
    }

    /// Unparseable records dropped *before* this source was built, for
    /// sources wrapping a pre-decoded slice (the parallel pcap parse
    /// decodes — and skips — up front). Folded into the
    /// [`SourceSummary`] on the slice fast path.
    fn skipped_hint(&self) -> u64 {
        0
    }
}

/// A source over records already materialised in memory.
#[derive(Debug, Clone, Copy)]
pub struct SliceSource<'a> {
    records: &'a [TraceRecord],
    skipped: u64,
}

impl<'a> SliceSource<'a> {
    /// Wraps a record slice.
    pub fn new(records: &'a [TraceRecord]) -> Self {
        Self {
            records,
            skipped: 0,
        }
    }

    /// Wraps a slice that was decoded up front, recording how many
    /// unparseable records the decode dropped so the pipeline summary
    /// matches a streamed read of the same capture.
    pub fn with_skipped(records: &'a [TraceRecord], skipped: u64) -> Self {
        Self { records, skipped }
    }
}

impl RecordSource for SliceSource<'_> {
    fn for_each_batch(
        &mut self,
        f: &mut dyn FnMut(&[TraceRecord]) -> Result<(), PipelineError>,
    ) -> Result<SourceSummary, PipelineError> {
        f(self.records)?;
        Ok(SourceSummary {
            records: self.records.len() as u64,
            skipped: self.skipped,
        })
    }

    fn as_slice(&self) -> Option<&[TraceRecord]> {
        Some(self.records)
    }

    fn skipped_hint(&self) -> u64 {
        self.skipped
    }
}

/// A source decoding a pcap stream through the zero-alloc
/// [`pcaplib::PcapReader::read_into`] path. Unparseable records (non-IPv4
/// link noise) are skipped and counted in the [`SourceSummary`].
pub struct PcapSource<R: std::io::Read> {
    reader: pcaplib::PcapReader<R>,
}

impl<R: std::io::Read> PcapSource<R> {
    /// Opens a pcap stream (validates the file header).
    pub fn new(source: R) -> Result<Self, SourceError> {
        Ok(Self {
            reader: pcaplib::PcapReader::new(source).map_err(SourceError::Pcap)?,
        })
    }
}

impl<R: std::io::Read> RecordSource for PcapSource<R> {
    fn for_each_batch(
        &mut self,
        f: &mut dyn FnMut(&[TraceRecord]) -> Result<(), PipelineError>,
    ) -> Result<SourceSummary, PipelineError> {
        let mut buf = pcaplib::RecordBuf::new();
        let mut batch: Vec<TraceRecord> = Vec::with_capacity(PCAP_BATCH);
        let mut summary = SourceSummary::default();
        while self.reader.read_into(&mut buf).map_err(SourceError::Pcap)? {
            match TraceRecord::from_wire_bytes(buf.timestamp_ns(), buf.data()) {
                Ok(rec) => {
                    batch.push(rec);
                    if batch.len() == PCAP_BATCH {
                        summary.records += batch.len() as u64;
                        f(&batch)?;
                        batch.clear();
                    }
                }
                Err(_) => summary.skipped += 1,
            }
        }
        if !batch.is_empty() {
            summary.records += batch.len() as u64;
            f(&batch)?;
        }
        Ok(summary)
    }
}

/// A source concatenating several pcap files into one logical trace.
///
/// Files are read in the order given and must be globally timestamp-
/// ordered (each file's records later than the previous file's) — the
/// usual layout for rotated captures of one link. The engines enforce
/// ordering and panic on violations, exactly as they do for a single
/// out-of-order file.
pub struct PcapFileSequence {
    paths: Vec<PathBuf>,
    ingest_threads: usize,
}

impl PcapFileSequence {
    /// A sequence over the given paths, read in order.
    pub fn new<I, P>(paths: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<PathBuf>,
    {
        Self {
            paths: paths.into_iter().map(Into::into).collect(),
            ingest_threads: 1,
        }
    }

    /// Decodes up to `threads` files concurrently. Delivery order is
    /// unchanged — batches still arrive file by file in the order given —
    /// only the parse work is overlapped, so engines see exactly the
    /// serial byte stream. Decoded files are buffered until their turn,
    /// so peak memory grows with the decode lead; the offline engines
    /// buffer the whole trace anyway, single-pass streaming callers
    /// should keep this at 1.
    pub fn with_ingest_threads(mut self, threads: usize) -> Self {
        self.ingest_threads = threads.max(1);
        self
    }

    /// Fully decodes one file into memory.
    fn decode_file(path: &PathBuf) -> Result<(Vec<TraceRecord>, u64), PipelineError> {
        let file = std::fs::File::open(path).map_err(SourceError::Io)?;
        let mut src = PcapSource::new(std::io::BufReader::new(file))?;
        let mut records = Vec::new();
        let summary = src.for_each_batch(&mut |batch| {
            records.extend_from_slice(batch);
            Ok(())
        })?;
        Ok((records, summary.skipped))
    }
}

impl RecordSource for PcapFileSequence {
    fn for_each_batch(
        &mut self,
        f: &mut dyn FnMut(&[TraceRecord]) -> Result<(), PipelineError>,
    ) -> Result<SourceSummary, PipelineError> {
        let mut summary = SourceSummary::default();
        if self.ingest_threads <= 1 || self.paths.len() <= 1 {
            for path in &self.paths {
                let file = std::fs::File::open(path).map_err(SourceError::Io)?;
                let mut src = PcapSource::new(std::io::BufReader::new(file))?;
                let part = src.for_each_batch(f)?;
                summary.records += part.records;
                summary.skipped += part.skipped;
            }
            return Ok(summary);
        }

        // Parallel decode, ordered delivery: workers claim files through
        // an atomic ticket and park finished decodes in per-file slots;
        // this thread consumes the slots strictly in path order.
        type Slot = Option<Result<(Vec<TraceRecord>, u64), PipelineError>>;
        let workers = self.ingest_threads.min(self.paths.len());
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Slot>> = Mutex::new((0..self.paths.len()).map(|_| None).collect());
        let ready = Condvar::new();
        let paths = &self.paths;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= paths.len() {
                        break;
                    }
                    let decoded = Self::decode_file(&paths[i]);
                    slots.lock().expect("decode slots poisoned")[i] = Some(decoded);
                    ready.notify_all();
                });
            }
            for i in 0..paths.len() {
                let decoded = {
                    let mut guard = slots.lock().expect("decode slots poisoned");
                    loop {
                        if let Some(d) = guard[i].take() {
                            break d;
                        }
                        guard = ready.wait(guard).expect("decode slots poisoned");
                    }
                };
                let (records, skipped) = decoded?;
                summary.skipped += skipped;
                for chunk in records.chunks(PCAP_BATCH) {
                    summary.records += chunk.len() as u64;
                    f(chunk)?;
                }
            }
            Ok(summary)
        })
    }
}

/// Live state of an engine, for `--progress` reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineProgress {
    /// Records consumed so far.
    pub records: u64,
    /// Open (undecided) replica candidates right now. `None` when the
    /// engine buffers its input and has not started detecting yet — the
    /// offline engines have no open candidates until they run.
    pub open_candidates: Option<usize>,
}

/// One detection engine: consumes record batches, emits validated streams
/// and merged loops as [`OnlineEvent`]s, and reports [`DetectionStats`].
///
/// The primary contract is the incremental feed path: any number of
/// [`Engine::feed`] calls followed by exactly one [`Engine::finish`].
/// Batches can arrive over an arbitrarily long wall-clock span — the
/// monitor runtime keeps one engine per link alive for the life of the
/// link — and the one-shot [`Engine::run_slice`] is a thin wrapper over
/// feed + finish (buffering engines override it to skip their copy).
///
/// The contract all implementations share: on the same timestamp-ordered
/// input, the *set* of emitted streams and loops and every stats field
/// are identical. Emission *order* may differ (the streaming engine emits
/// as evidence completes); [`run_pipeline`] puts events into the
/// canonical order afterwards.
pub trait Engine {
    /// A short stable name ("serial", "sharded", "streaming").
    fn name(&self) -> &'static str;

    /// Consumes one batch, emitting any events whose evidence completed.
    fn feed(&mut self, batch: &[TraceRecord], emit: &mut dyn FnMut(OnlineEvent));

    /// Flushes remaining state at end of input and returns the final
    /// counters. Must be called exactly once, after all batches.
    fn finish(&mut self, emit: &mut dyn FnMut(OnlineEvent)) -> DetectionStats;

    /// Current progress, callable at any time.
    fn progress(&self) -> EngineProgress;

    /// Runs the whole trace in one call when the caller already owns a
    /// slice. Default is `feed` + `finish`; buffering engines override it
    /// to skip their internal copy.
    fn run_slice(
        &mut self,
        records: &[TraceRecord],
        emit: &mut dyn FnMut(OnlineEvent),
    ) -> DetectionStats {
        self.feed(records, emit);
        self.finish(emit)
    }
}

/// Moves a finished offline result out through the event interface.
fn emit_detection(result: DetectionResult, emit: &mut dyn FnMut(OnlineEvent)) -> DetectionStats {
    let stats = result.stats;
    for s in result.streams {
        emit(OnlineEvent::Stream(s));
    }
    for l in result.loops {
        emit(OnlineEvent::Loop(l));
    }
    stats
}

/// The exact offline detector ([`Detector`]) behind the [`Engine`]
/// interface. Buffers batches and runs the three-step pipeline at
/// [`Engine::finish`].
pub struct SerialEngine {
    det: Detector,
    buf: Vec<TraceRecord>,
    records: u64,
    done: bool,
}

impl SerialEngine {
    /// A serial engine with the given configuration.
    pub fn new(cfg: DetectorConfig) -> Self {
        Self {
            det: Detector::new(cfg),
            buf: Vec::new(),
            records: 0,
            done: false,
        }
    }
}

impl Engine for SerialEngine {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn feed(&mut self, batch: &[TraceRecord], _emit: &mut dyn FnMut(OnlineEvent)) {
        self.records += batch.len() as u64;
        self.buf.extend_from_slice(batch);
    }

    fn finish(&mut self, emit: &mut dyn FnMut(OnlineEvent)) -> DetectionStats {
        let buf = std::mem::take(&mut self.buf);
        self.done = true;
        emit_detection(self.det.run(&buf), emit)
    }

    fn progress(&self) -> EngineProgress {
        EngineProgress {
            records: self.records,
            open_candidates: if self.done { Some(0) } else { None },
        }
    }

    fn run_slice(
        &mut self,
        records: &[TraceRecord],
        emit: &mut dyn FnMut(OnlineEvent),
    ) -> DetectionStats {
        self.records += records.len() as u64;
        self.done = true;
        emit_detection(self.det.run(records), emit)
    }
}

/// The sharded parallel detector ([`ShardedDetector`]) behind the
/// [`Engine`] interface. Buffers batches and fans out at
/// [`Engine::finish`]; output is byte-identical to [`SerialEngine`].
pub struct ShardedEngine {
    det: ShardedDetector,
    buf: Vec<TraceRecord>,
    records: u64,
    done: bool,
}

impl ShardedEngine {
    /// A sharded engine over `threads` workers.
    pub fn new(cfg: DetectorConfig, threads: usize) -> Self {
        Self {
            det: ShardedDetector::new(cfg, threads),
            buf: Vec::new(),
            records: 0,
            done: false,
        }
    }
}

impl Engine for ShardedEngine {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn feed(&mut self, batch: &[TraceRecord], _emit: &mut dyn FnMut(OnlineEvent)) {
        self.records += batch.len() as u64;
        self.buf.extend_from_slice(batch);
    }

    fn finish(&mut self, emit: &mut dyn FnMut(OnlineEvent)) -> DetectionStats {
        let buf = std::mem::take(&mut self.buf);
        self.done = true;
        emit_detection(self.det.run(&buf), emit)
    }

    fn progress(&self) -> EngineProgress {
        EngineProgress {
            records: self.records,
            open_candidates: if self.done { Some(0) } else { None },
        }
    }

    fn run_slice(
        &mut self,
        records: &[TraceRecord],
        emit: &mut dyn FnMut(OnlineEvent),
    ) -> DetectionStats {
        self.records += records.len() as u64;
        self.done = true;
        emit_detection(self.det.run(records), emit)
    }
}

/// The share-nothing block-parallel detector ([`BlockParallelDetector`])
/// behind the [`Engine`] interface: the trace is split into contiguous
/// record ranges scanned in place by independent workers, with a
/// boundary-reconciliation pass keeping the output byte-identical to
/// [`SerialEngine`] at every thread count. This is the default parallel
/// engine; the ring-dispatcher [`ShardedEngine`] remains as an ablation.
pub struct BlockEngine {
    det: BlockParallelDetector,
    buf: Vec<TraceRecord>,
    records: u64,
    done: bool,
}

impl BlockEngine {
    /// A block-parallel engine over `threads` workers.
    pub fn new(cfg: DetectorConfig, threads: usize) -> Self {
        Self {
            det: BlockParallelDetector::new(cfg, threads),
            buf: Vec::new(),
            records: 0,
            done: false,
        }
    }
}

impl Engine for BlockEngine {
    fn name(&self) -> &'static str {
        "block"
    }

    fn feed(&mut self, batch: &[TraceRecord], _emit: &mut dyn FnMut(OnlineEvent)) {
        self.records += batch.len() as u64;
        self.buf.extend_from_slice(batch);
    }

    fn finish(&mut self, emit: &mut dyn FnMut(OnlineEvent)) -> DetectionStats {
        let buf = std::mem::take(&mut self.buf);
        self.done = true;
        emit_detection(self.det.run(&buf), emit)
    }

    fn progress(&self) -> EngineProgress {
        EngineProgress {
            records: self.records,
            open_candidates: if self.done { Some(0) } else { None },
        }
    }

    fn run_slice(
        &mut self,
        records: &[TraceRecord],
        emit: &mut dyn FnMut(OnlineEvent),
    ) -> DetectionStats {
        self.records += records.len() as u64;
        self.done = true;
        emit_detection(self.det.run(records), emit)
    }
}

/// The single-pass bounded-memory detector ([`OnlineDetector`]) behind the
/// [`Engine`] interface. Events flow out as their evidence completes; no
/// record buffer is kept.
pub struct StreamingEngine {
    det: Option<OnlineDetector>,
    records: u64,
}

impl StreamingEngine {
    /// A streaming engine with the given configuration (default horizon,
    /// which guarantees offline-identical output).
    pub fn new(cfg: DetectorConfig) -> Self {
        Self {
            det: Some(OnlineDetector::new(cfg)),
            records: 0,
        }
    }

    /// Shrinks the retained per-prefix history — see
    /// [`OnlineDetector::with_history_horizon`] for the semantics trade.
    pub fn with_history_horizon(mut self, horizon_ns: u64) -> Self {
        self.det = self.det.map(|d| d.with_history_horizon(horizon_ns));
        self
    }
}

impl Engine for StreamingEngine {
    fn name(&self) -> &'static str {
        "streaming"
    }

    fn feed(&mut self, batch: &[TraceRecord], emit: &mut dyn FnMut(OnlineEvent)) {
        let det = self.det.as_mut().expect("feed after finish");
        for rec in batch {
            self.records += 1;
            for ev in det.push(rec) {
                emit(ev);
            }
        }
    }

    fn finish(&mut self, emit: &mut dyn FnMut(OnlineEvent)) -> DetectionStats {
        let det = self.det.take().expect("finish called twice");
        let (events, stats) = det.finish();
        for ev in events {
            emit(ev);
        }
        stats.as_detection_stats()
    }

    fn progress(&self) -> EngineProgress {
        EngineProgress {
            records: self.records,
            open_candidates: Some(self.det.as_ref().map_or(0, OnlineDetector::open_candidates)),
        }
    }
}

/// Everything a pipeline run produced, in canonical order.
#[derive(Debug)]
pub struct PipelineResult {
    /// Validated replica streams, sorted by `(start, first record index)` —
    /// the serial detector's native order.
    pub streams: Vec<ReplicaStream>,
    /// Merged routing loops, sorted by `(prefix, start)`.
    pub loops: Vec<RoutingLoop>,
    /// Stage counters — identical across engines on the same input.
    pub stats: DetectionStats,
    /// Records the source delivered to the engine.
    pub records: u64,
    /// Unparseable records the source skipped.
    pub skipped: u64,
    /// Timestamp of the first record (0 on an empty trace).
    pub trace_start_ns: u64,
    /// Timestamp of the last record (0 on an empty trace).
    pub trace_end_ns: u64,
    /// True when the run was cancelled before the source drained (the
    /// progress callback broke out, e.g. on SIGINT). The engine was still
    /// flushed and every sink saw the partial result, so the output is a
    /// valid detection of the records consumed so far.
    pub interrupted: bool,
}

impl PipelineResult {
    /// Observation window length.
    pub fn duration_ns(&self) -> u64 {
        self.trace_end_ns.saturating_sub(self.trace_start_ns)
    }
}

/// A consumer of pipeline output.
///
/// `on_record` fires once per ingested record *during* the pass (this is
/// how whole-trace statistics are computed without a second traversal);
/// `on_result` fires once at the end with the canonical result.
pub trait Sink {
    /// Observes one ingested record. Default: ignore.
    fn on_record(&mut self, _rec: &TraceRecord) -> std::io::Result<()> {
        Ok(())
    }

    /// Consumes the finished result.
    fn on_result(&mut self, result: &PipelineResult) -> std::io::Result<()>;
}

/// Runs `source → engine → sinks` and returns the canonical result.
///
/// Telemetry spans: the whole run is `pipeline.run`; record delivery to
/// sinks accumulates under `pipeline.ingest`, engine work under
/// `pipeline.detect`, the end-of-input flush + canonical sort under
/// `pipeline.finish`, and `Sink::on_result` under `pipeline.sink`.
pub fn run_pipeline(
    source: &mut dyn RecordSource,
    engine: &mut dyn Engine,
    sinks: &mut [&mut dyn Sink],
) -> Result<PipelineResult, PipelineError> {
    run_pipeline_with_progress(source, engine, sinks, &mut |_| {
        std::ops::ControlFlow::Continue(())
    })
}

/// Marks an engine emission in the event trace: one instant per closed
/// stream or loop, so detections are visible on the timeline the moment
/// their evidence completed (free when tracing is disabled).
fn trace_emission(ev: &OnlineEvent) {
    use telemetry::trace::{self, TraceName};
    static TR_STREAM_CLOSED: TraceName = TraceName::new("pipeline.stream_closed");
    static TR_LOOP_CLOSED: TraceName = TraceName::new("pipeline.loop_closed");
    match ev {
        OnlineEvent::Stream(_) => trace::instant(&TR_STREAM_CLOSED),
        OnlineEvent::Loop(_) => trace::instant(&TR_LOOP_CLOSED),
    }
}

/// [`run_pipeline`] with a progress callback, invoked after every batch
/// (and once after the final flush) with the engine's live state.
///
/// The callback also carries the cancellation channel: returning
/// [`std::ops::ControlFlow::Break`] stops pulling from the source, after which the
/// engine is flushed normally, the sinks see the partial result, and the
/// returned [`PipelineResult`] has `interrupted` set. This is how SIGINT
/// becomes a graceful drain instead of a mid-stream death. On the
/// in-memory fast path the whole trace is one [`Engine::run_slice`] call,
/// so a break can only take effect after it — short in-memory runs finish
/// rather than cancel.
pub fn run_pipeline_with_progress(
    source: &mut dyn RecordSource,
    engine: &mut dyn Engine,
    sinks: &mut [&mut dyn Sink],
    progress: &mut dyn FnMut(&EngineProgress) -> std::ops::ControlFlow<()>,
) -> Result<PipelineResult, PipelineError> {
    let _run = telemetry::span("pipeline.run");
    let mut streams: Vec<ReplicaStream> = Vec::new();
    let mut loops: Vec<RoutingLoop> = Vec::new();
    let mut trace_start: Option<u64> = None;
    let mut trace_end: u64 = 0;
    let mut interrupted = false;

    let (summary, stats) = if let Some(slice) = source.as_slice() {
        // Fast path: the trace is already in memory, so the engine gets it
        // whole and buffering engines skip their internal copy.
        if let (Some(first), Some(last)) = (slice.first(), slice.last()) {
            trace_start = Some(first.timestamp_ns);
            trace_end = last.timestamp_ns;
        }
        if !sinks.is_empty() {
            let _t = telemetry::span("pipeline.ingest");
            for rec in slice {
                for sink in sinks.iter_mut() {
                    sink.on_record(rec).map_err(PipelineError::Sink)?;
                }
            }
        }
        let stats = {
            let _t = telemetry::span("pipeline.detect");
            let mut emit = |ev: OnlineEvent| {
                trace_emission(&ev);
                match ev {
                    OnlineEvent::Stream(s) => streams.push(s),
                    OnlineEvent::Loop(l) => loops.push(l),
                }
            };
            engine.run_slice(slice, &mut emit)
        };
        // One-shot slice runs cannot cancel mid-detect; a Break here is moot.
        let _ = progress(&engine.progress());
        (
            SourceSummary {
                records: slice.len() as u64,
                skipped: source.skipped_hint(),
            },
            stats,
        )
    } else {
        let pulled = source.for_each_batch(&mut |batch| {
            if batch.is_empty() {
                return Ok(());
            }
            if !sinks.is_empty() {
                let _t = telemetry::span("pipeline.ingest");
                for rec in batch {
                    for sink in sinks.iter_mut() {
                        sink.on_record(rec).map_err(PipelineError::Sink)?;
                    }
                }
            }
            trace_start.get_or_insert(batch[0].timestamp_ns);
            trace_end = batch.last().expect("non-empty").timestamp_ns;
            {
                let _t = telemetry::span("pipeline.detect");
                let mut emit = |ev: OnlineEvent| {
                    trace_emission(&ev);
                    match ev {
                        OnlineEvent::Stream(s) => streams.push(s),
                        OnlineEvent::Loop(l) => loops.push(l),
                    }
                };
                engine.feed(batch, &mut emit);
            }
            match progress(&engine.progress()) {
                std::ops::ControlFlow::Continue(()) => Ok(()),
                std::ops::ControlFlow::Break(()) => Err(PipelineError::Interrupted),
            }
        });
        let summary = match pulled {
            Ok(summary) => summary,
            // Cancelled: the source never reported its totals, but the
            // engine counted everything it was fed. Drain and flush below
            // exactly as on a clean end of input.
            Err(PipelineError::Interrupted) => {
                interrupted = true;
                SourceSummary {
                    records: engine.progress().records,
                    skipped: source.skipped_hint(),
                }
            }
            Err(e) => return Err(e),
        };
        let stats = {
            let _t = telemetry::span("pipeline.finish");
            let mut emit = |ev: OnlineEvent| {
                trace_emission(&ev);
                match ev {
                    OnlineEvent::Stream(s) => streams.push(s),
                    OnlineEvent::Loop(l) => loops.push(l),
                }
            };
            engine.finish(&mut emit)
        };
        let _ = progress(&engine.progress());
        (summary, stats)
    };

    debug_assert_eq!(
        stats.total_records, summary.records,
        "engine consumed a different record count than the source delivered"
    );

    {
        // Canonical order: engines may emit in evidence-completion order;
        // the result must not depend on which engine ran. The first record
        // index is unique per stream (a record joins at most one
        // candidate), so this total order equals the serial detector's.
        let _t = telemetry::span("pipeline.finish");
        streams.sort_by_key(|s| (s.start_ns(), s.record_indices.first().copied()));
        loops.sort_by_key(|l| (l.prefix, l.start_ns));
    }

    let result = PipelineResult {
        streams,
        loops,
        stats,
        records: summary.records,
        skipped: summary.skipped,
        trace_start_ns: trace_start.unwrap_or(0),
        trace_end_ns: trace_end,
        interrupted,
    };

    {
        let _t = telemetry::span("pipeline.sink");
        for sink in sinks.iter_mut() {
            sink.on_result(&result).map_err(PipelineError::Sink)?;
        }
    }
    Ok(result)
}

/// The loop classification string used by all textual sinks.
pub(crate) fn loop_class(l: &RoutingLoop, persistent_threshold_ns: u64) -> &'static str {
    match l.classify(persistent_threshold_ns) {
        LoopKind::Transient => "transient",
        LoopKind::Persistent => "persistent",
    }
}

/// The JSONL body fields for one replica stream (key order and number
/// formatting fixed, no surrounding braces). Shared between
/// [`StreamJsonlSink`] and the monitor's per-link event sink so the two
/// surfaces stay byte-identical field for field.
pub(crate) fn stream_jsonl_fields(s: &ReplicaStream) -> String {
    format!(
        "\"dst\":\"{}\",\"ident\":{},\"first_ttl\":{},\"last_ttl\":{},\"ttl_delta\":{},\"replicas\":{},\"start_s\":{:.6},\"duration_ms\":{:.3},\"mean_spacing_ms\":{:.3}",
        s.key.dst,
        s.key.ident,
        s.first_ttl(),
        s.last_ttl(),
        s.ttl_delta(),
        s.len(),
        s.start_ns() as f64 / 1e9,
        s.duration_ns() as f64 / 1e6,
        s.mean_spacing_ns() as f64 / 1e6,
    )
}

/// The JSONL body fields for one merged loop, without the `open_ended`
/// field — open-endedness is a whole-trace property the live monitor
/// cannot know at emission time, so only the batch sink appends it.
pub(crate) fn loop_jsonl_fields(l: &RoutingLoop, persistent_threshold_ns: u64) -> String {
    format!(
        "\"prefix\":\"{}\",\"start_s\":{:.6},\"end_s\":{:.6},\"duration_s\":{:.6},\"streams\":{},\"replicas\":{},\"ttl_delta\":{},\"class\":\"{}\"",
        l.prefix,
        l.start_ns as f64 / 1e9,
        l.end_ns as f64 / 1e9,
        l.duration_ns() as f64 / 1e9,
        l.num_streams(),
        l.replica_count(),
        l.ttl_delta(),
        loop_class(l, persistent_threshold_ns),
    )
}

/// CSV emitter for merged routing loops — byte-identical to the historical
/// `loopdetect --csv loops` output.
pub struct LoopCsvSink<W: Write> {
    out: W,
    persistent_threshold_ns: u64,
}

impl<W: Write> LoopCsvSink<W> {
    /// A sink writing to `out`, classifying loops against the given
    /// persistence threshold.
    pub fn new(out: W, persistent_threshold_ns: u64) -> Self {
        Self {
            out,
            persistent_threshold_ns,
        }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Sink for LoopCsvSink<W> {
    fn on_result(&mut self, result: &PipelineResult) -> std::io::Result<()> {
        writeln!(
            self.out,
            "prefix,start_s,end_s,duration_s,streams,replicas,ttl_delta,class"
        )?;
        for l in &result.loops {
            let open = if l.is_open_ended(result.trace_end_ns, OPEN_TAIL_GAP_NS) {
                "+open"
            } else {
                ""
            };
            writeln!(
                self.out,
                "{},{:.6},{:.6},{:.6},{},{},{},{}{}",
                l.prefix,
                l.start_ns as f64 / 1e9,
                l.end_ns as f64 / 1e9,
                l.duration_ns() as f64 / 1e9,
                l.num_streams(),
                l.replica_count(),
                l.ttl_delta(),
                loop_class(l, self.persistent_threshold_ns),
                open,
            )?;
        }
        Ok(())
    }
}

/// CSV emitter for validated replica streams — byte-identical to the
/// historical `loopdetect --csv streams` output.
pub struct StreamCsvSink<W: Write> {
    out: W,
}

impl<W: Write> StreamCsvSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Sink for StreamCsvSink<W> {
    fn on_result(&mut self, result: &PipelineResult) -> std::io::Result<()> {
        writeln!(
            self.out,
            "dst,ident,first_ttl,last_ttl,ttl_delta,replicas,start_s,duration_ms,mean_spacing_ms"
        )?;
        for s in &result.streams {
            writeln!(
                self.out,
                "{},{},{},{},{},{},{:.6},{:.3},{:.3}",
                s.key.dst,
                s.key.ident,
                s.first_ttl(),
                s.last_ttl(),
                s.ttl_delta(),
                s.len(),
                s.start_ns() as f64 / 1e9,
                s.duration_ns() as f64 / 1e6,
                s.mean_spacing_ns() as f64 / 1e6,
            )?;
        }
        Ok(())
    }
}

/// CSV emitter for the run summary — byte-identical to the historical
/// `loopdetect --csv summary` output.
pub struct SummaryCsvSink<W: Write> {
    out: W,
}

impl<W: Write> SummaryCsvSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Sink for SummaryCsvSink<W> {
    fn on_result(&mut self, result: &PipelineResult) -> std::io::Result<()> {
        writeln!(self.out, "metric,value")?;
        writeln!(self.out, "records,{}", result.records)?;
        writeln!(self.out, "skipped,{}", result.skipped)?;
        writeln!(self.out, "streams,{}", result.streams.len())?;
        writeln!(self.out, "loops,{}", result.loops.len())?;
        writeln!(
            self.out,
            "looped_sightings,{}",
            result.streams.iter().map(ReplicaStream::len).sum::<usize>()
        )?;
        let est = crate::impact::escape_estimate(&result.streams);
        writeln!(self.out, "died_in_loop,{}", est.died)?;
        writeln!(self.out, "may_have_escaped,{}", est.may_have_escaped)?;
        Ok(())
    }
}

/// JSONL emitter for merged routing loops: one JSON object per line, keys
/// in fixed order, numbers formatted exactly like the CSV columns (so the
/// output is byte-stable across runs and engines).
pub struct LoopJsonlSink<W: Write> {
    out: W,
    persistent_threshold_ns: u64,
}

impl<W: Write> LoopJsonlSink<W> {
    /// A sink writing to `out`, classifying loops against the given
    /// persistence threshold.
    pub fn new(out: W, persistent_threshold_ns: u64) -> Self {
        Self {
            out,
            persistent_threshold_ns,
        }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Sink for LoopJsonlSink<W> {
    fn on_result(&mut self, result: &PipelineResult) -> std::io::Result<()> {
        for l in &result.loops {
            writeln!(
                self.out,
                "{{{},\"open_ended\":{}}}",
                loop_jsonl_fields(l, self.persistent_threshold_ns),
                l.is_open_ended(result.trace_end_ns, OPEN_TAIL_GAP_NS),
            )?;
        }
        Ok(())
    }
}

/// JSONL emitter for validated replica streams: one JSON object per line,
/// keys in fixed order, numbers formatted exactly like the CSV columns.
pub struct StreamJsonlSink<W: Write> {
    out: W,
}

impl<W: Write> StreamJsonlSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Sink for StreamJsonlSink<W> {
    fn on_result(&mut self, result: &PipelineResult) -> std::io::Result<()> {
        for s in &result.streams {
            writeln!(self.out, "{{{}}}", stream_jsonl_fields(s))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    fn looped_trace() -> Vec<TraceRecord> {
        let mut recs = Vec::new();
        for j in 0..4u16 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 7, 7, 7),
                Ipv4Addr::new(203, 0, j as u8, 1),
                5555,
                80,
                TcpFlags::ACK,
                &b"data"[..],
            );
            p.ip.ident = 100 + j;
            p.ip.ttl = 60;
            p.fill_checksums();
            let base = u64::from(j) * 500_000_000;
            for k in 0..5 {
                if k > 0 {
                    p.ip.decrement_ttl();
                    p.ip.decrement_ttl();
                }
                recs.push(TraceRecord::from_packet(base + k * 1_000_000, &p));
            }
        }
        for i in 0..300u16 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 2, 2, 2),
                Ipv4Addr::new(20, 0, (i % 5) as u8, 1),
                1000,
                80,
                TcpFlags::ACK,
                &b""[..],
            );
            p.ip.ident = i;
            p.fill_checksums();
            recs.push(TraceRecord::from_packet(u64::from(i) * 20_000_000, &p));
        }
        recs.sort_by_key(|r| r.timestamp_ns);
        recs
    }

    fn run_engine(engine: &mut dyn Engine, records: &[TraceRecord]) -> PipelineResult {
        let mut source = SliceSource::new(records);
        run_pipeline(&mut source, engine, &mut []).expect("pipeline run")
    }

    #[test]
    fn three_engines_agree() {
        let recs = looped_trace();
        let serial = run_engine(&mut SerialEngine::new(DetectorConfig::default()), &recs);
        let sharded = run_engine(&mut ShardedEngine::new(DetectorConfig::default(), 4), &recs);
        let streaming = run_engine(&mut StreamingEngine::new(DetectorConfig::default()), &recs);
        assert_eq!(serial.streams, sharded.streams);
        assert_eq!(serial.streams, streaming.streams);
        assert_eq!(serial.loops, sharded.loops);
        assert_eq!(serial.loops, streaming.loops);
        assert_eq!(serial.stats, sharded.stats);
        assert_eq!(serial.stats, streaming.stats);
        assert_eq!(serial.records, recs.len() as u64);
    }

    #[test]
    fn batched_source_matches_slice_source() {
        // The same records through the non-slice path (PcapSource-style
        // batching) must produce the same result as the fast path.
        struct Chunked<'a>(&'a [TraceRecord]);
        impl RecordSource for Chunked<'_> {
            fn for_each_batch(
                &mut self,
                f: &mut dyn FnMut(&[TraceRecord]) -> Result<(), PipelineError>,
            ) -> Result<SourceSummary, PipelineError> {
                for chunk in self.0.chunks(7) {
                    f(chunk)?;
                }
                Ok(SourceSummary {
                    records: self.0.len() as u64,
                    skipped: 0,
                })
            }
        }
        let recs = looped_trace();
        let fast = run_engine(&mut SerialEngine::new(DetectorConfig::default()), &recs);
        let mut chunked = Chunked(&recs);
        let slow = run_pipeline(
            &mut chunked,
            &mut SerialEngine::new(DetectorConfig::default()),
            &mut [],
        )
        .expect("pipeline run");
        assert_eq!(fast.streams, slow.streams);
        assert_eq!(fast.loops, slow.loops);
        assert_eq!(fast.stats, slow.stats);
    }

    #[test]
    fn progress_reports_records_and_open_candidates() {
        let recs = looped_trace();
        let mut engine = StreamingEngine::new(DetectorConfig::default());
        let mut seen = Vec::new();
        let mut source = SliceSource::new(&recs);
        run_pipeline_with_progress(&mut source, &mut engine, &mut [], &mut |p| {
            seen.push(*p);
            std::ops::ControlFlow::Continue(())
        })
        .expect("pipeline run");
        let last = seen.last().expect("at least one progress call");
        assert_eq!(last.records, recs.len() as u64);
        assert_eq!(last.open_candidates, Some(0), "all closed after finish");
    }

    #[test]
    fn progress_break_drains_gracefully() {
        // Cancel after the first batch: the engine must still be flushed,
        // the result marked interrupted, and the record count must match
        // what the engine actually consumed (one 7-record chunk).
        struct Chunked<'a>(&'a [TraceRecord]);
        impl RecordSource for Chunked<'_> {
            fn for_each_batch(
                &mut self,
                f: &mut dyn FnMut(&[TraceRecord]) -> Result<(), PipelineError>,
            ) -> Result<SourceSummary, PipelineError> {
                for chunk in self.0.chunks(7) {
                    f(chunk)?;
                }
                Ok(SourceSummary {
                    records: self.0.len() as u64,
                    skipped: 0,
                })
            }
        }
        let recs = looped_trace();
        let mut source = Chunked(&recs);
        let mut engine = StreamingEngine::new(DetectorConfig::default());
        let mut calls = 0u32;
        let result = run_pipeline_with_progress(&mut source, &mut engine, &mut [], &mut |_| {
            calls += 1;
            if calls == 1 {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        })
        .expect("interrupted run still returns a result");
        assert!(result.interrupted);
        assert_eq!(result.records, 7, "engine consumed exactly one chunk");
        assert_eq!(result.stats.total_records, 7);
    }

    #[test]
    fn csv_sinks_match_across_engines() {
        let recs = looped_trace();
        let mut outputs = Vec::new();
        for engine in [
            &mut SerialEngine::new(DetectorConfig::default()) as &mut dyn Engine,
            &mut ShardedEngine::new(DetectorConfig::default(), 3),
            &mut StreamingEngine::new(DetectorConfig::default()),
        ] {
            let mut loops = LoopCsvSink::new(Vec::new(), 60_000_000_000);
            let mut streams = StreamCsvSink::new(Vec::new());
            let mut source = SliceSource::new(&recs);
            run_pipeline(
                &mut source,
                engine,
                &mut [&mut loops as &mut dyn Sink, &mut streams],
            )
            .expect("pipeline run");
            outputs.push((loops.into_inner(), streams.into_inner()));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
        assert!(!outputs[0].0.is_empty());
    }

    #[test]
    fn jsonl_sink_emits_one_object_per_stream() {
        let recs = looped_trace();
        let mut sink = StreamJsonlSink::new(Vec::new());
        let mut source = SliceSource::new(&recs);
        let result = run_pipeline(
            &mut source,
            &mut SerialEngine::new(DetectorConfig::default()),
            &mut [&mut sink as &mut dyn Sink],
        )
        .expect("pipeline run");
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), result.streams.len());
        for line in text.lines() {
            assert!(line.starts_with("{\"dst\":\""));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn empty_source_yields_empty_result() {
        let mut source = SliceSource::new(&[]);
        let result = run_pipeline(
            &mut source,
            &mut SerialEngine::new(DetectorConfig::default()),
            &mut [],
        )
        .expect("pipeline run");
        assert_eq!(result.records, 0);
        assert!(result.streams.is_empty());
        assert_eq!(result.trace_start_ns, 0);
        assert_eq!(result.trace_end_ns, 0);
    }
}
