//! Detector configuration.

/// Tunables of the three-step detection algorithm. Defaults reproduce the
/// paper; the extra switches exist for the ablation experiments (A1, A2 in
/// DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Minimum TTL decrease between successive replicas (§IV-A.1: "their
    /// TTL values differ by at least two").
    pub min_ttl_delta: u8,
    /// Minimum replicas per stream (§IV-A.2 rejects 2-element sets as
    /// link-layer duplication).
    pub min_stream_len: usize,
    /// Maximum silence between successive replicas of one stream before
    /// the candidate is closed. Loop round-trips are milliseconds; one
    /// second of silence means the packet is gone.
    pub max_replica_gap_ns: u64,
    /// Step-3 merge gap (1 minute in the paper; 2 and 5 minutes are the A1
    /// ablation).
    pub merge_gap_ns: u64,
    /// Enforce the prefix co-loop validation (§IV-A.2 second rule). Off is
    /// the A2 ablation.
    pub covalidate_prefix: bool,
    /// Verify that each replica's IP header checksum is arithmetically
    /// consistent (RFC 1624) with its TTL relative to the previous replica.
    /// Real looped packets always are (routers patch incrementally);
    /// header-corrupted coincidences are not. Requires traces with valid
    /// checksums; disable for captures that zero them.
    pub verify_checksum_consistency: bool,
    /// Route step 1 through the two-level candidate index: a level-0
    /// fingerprint pre-filter in front of the exact `ReplicaKey` map, so
    /// first sightings (the overwhelming majority of backbone traffic,
    /// per §IV Table I) never pay a full-key hash. Output is byte-
    /// identical either way; `false` is the `--no-prefilter` ablation
    /// that keeps the single exact map as the reference implementation
    /// for A/B measurement and the equivalence tests.
    pub use_prefilter: bool,
    /// Slack applied to the co-loop validation window on each side,
    /// expressed as a multiple of the stream's mean inter-replica spacing.
    /// A packet that entered the loop just before it healed crosses the
    /// monitor once and would otherwise (wrongly) veto the stream that
    /// proves the loop. One loop round-trip of slack absorbs exactly that
    /// boundary case.
    pub covalidate_slack_spacings: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            min_ttl_delta: 2,
            min_stream_len: 3,
            max_replica_gap_ns: 1_000_000_000,
            merge_gap_ns: 60_000_000_000,
            covalidate_prefix: true,
            verify_checksum_consistency: true,
            use_prefilter: true,
            covalidate_slack_spacings: 1.0,
        }
    }
}

impl DetectorConfig {
    /// Paper defaults.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A2 ablation: raw replica sets, no validation.
    pub fn no_validation() -> Self {
        Self {
            min_stream_len: 2,
            covalidate_prefix: false,
            ..Self::default()
        }
    }

    /// A1 ablation: alternative merge gap in minutes.
    pub fn with_merge_gap_minutes(mut self, minutes: u64) -> Self {
        self.merge_gap_ns = minutes * 60 * 1_000_000_000;
        self
    }

    /// Sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_ttl_delta == 0 {
            return Err("min_ttl_delta must be >= 1".into());
        }
        if self.min_stream_len < 2 {
            return Err("min_stream_len must be >= 2 (a stream needs a replica)".into());
        }
        if self.max_replica_gap_ns == 0 || self.merge_gap_ns == 0 {
            return Err("gaps must be positive".into());
        }
        if self.covalidate_slack_spacings < 0.0 {
            return Err("slack must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_paper_faithful() {
        let c = DetectorConfig::default();
        c.validate().unwrap();
        assert_eq!(c.min_ttl_delta, 2);
        assert_eq!(c.min_stream_len, 3);
        assert_eq!(c.merge_gap_ns, 60_000_000_000);
        assert!(c.covalidate_prefix);
    }

    #[test]
    fn ablation_configs() {
        let a2 = DetectorConfig::no_validation();
        a2.validate().unwrap();
        assert!(!a2.covalidate_prefix);
        assert_eq!(a2.min_stream_len, 2);
        let a1 = DetectorConfig::default().with_merge_gap_minutes(5);
        assert_eq!(a1.merge_gap_ns, 300_000_000_000);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = DetectorConfig::default();
        c.min_ttl_delta = 0;
        assert!(c.validate().is_err());
        let mut c = DetectorConfig::default();
        c.min_stream_len = 1;
        assert!(c.validate().is_err());
        let mut c = DetectorConfig::default();
        c.merge_gap_ns = 0;
        assert!(c.validate().is_err());
        let mut c = DetectorConfig::default();
        c.covalidate_slack_spacings = -1.0;
        assert!(c.validate().is_err());
    }
}
