//! Traffic-type classification (Figures 5 and 6).
//!
//! "Note that a single replica can show up in multiple categories, a TCP
//! SYN-ACK being listed in all of the TCP, SYN, and ACK categories for
//! example."

use crate::record::{TraceRecord, TransportSummary};
use stats::CategoricalDist;

/// The categories of Figures 5/6, in the paper's x-axis order.
pub const CATEGORIES: [&str; 11] = [
    "TCP", "ACK", "PSH", "RST", "URG", "SYN", "FIN", "UDP", "MCAST", "ICMP", "OTHER",
];

const FIN: u8 = 0x01;
const SYN: u8 = 0x02;
const RST: u8 = 0x04;
const PSH: u8 = 0x08;
const ACK: u8 = 0x10;
const URG: u8 = 0x20;

/// The categories a single record hits.
pub fn classify(rec: &TraceRecord) -> Vec<&'static str> {
    classify_parts(rec.dst, &rec.transport)
}

/// Classification from the destination and transport summary alone — the
/// fields a [`crate::ReplicaKey`] carries, shared by every replica of a
/// stream. This is what lets the incremental analysis accumulator compute
/// the looped-traffic mix (Figure 6) from validated streams without
/// retaining the underlying records.
pub fn classify_parts(dst: std::net::Ipv4Addr, transport: &TransportSummary) -> Vec<&'static str> {
    let mut hits = Vec::with_capacity(4);
    let mcast = dst.octets()[0] >= 224 && dst.octets()[0] < 240;
    match *transport {
        TransportSummary::Tcp { flags, .. } => {
            hits.push("TCP");
            if flags & ACK != 0 {
                hits.push("ACK");
            }
            if flags & PSH != 0 {
                hits.push("PSH");
            }
            if flags & RST != 0 {
                hits.push("RST");
            }
            if flags & URG != 0 {
                hits.push("URG");
            }
            if flags & SYN != 0 {
                hits.push("SYN");
            }
            if flags & FIN != 0 {
                hits.push("FIN");
            }
        }
        TransportSummary::Udp { .. } => hits.push("UDP"),
        TransportSummary::Icmp { .. } => hits.push("ICMP"),
        TransportSummary::Other { .. } => {
            if !mcast {
                hits.push("OTHER");
            }
        }
    }
    if mcast {
        hits.push("MCAST");
    }
    hits
}

/// Classifies every record the iterator yields.
pub fn distribution<'a>(records: impl Iterator<Item = &'a TraceRecord>) -> CategoricalDist {
    let mut dist = CategoricalDist::new(&CATEGORIES);
    for rec in records {
        dist.record(&classify(rec));
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::{IcmpHeader, IpProtocol, Packet, TcpFlags, UdpHeader};
    use std::net::Ipv4Addr;

    fn rec_of(p: &Packet) -> TraceRecord {
        TraceRecord::from_packet(0, p)
    }

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(100, 0, 0, 1), Ipv4Addr::new(203, 0, 113, 1))
    }

    #[test]
    fn synack_hits_three_categories() {
        let (s, d) = addrs();
        let p = Packet::tcp_flags(s, d, 1, 2, TcpFlags::SYN | TcpFlags::ACK, &b""[..]);
        let hits = classify(&rec_of(&p));
        assert_eq!(hits, vec!["TCP", "ACK", "SYN"]);
    }

    #[test]
    fn all_tcp_flags_classified() {
        let (s, d) = addrs();
        let p = Packet::tcp_flags(
            s,
            d,
            1,
            2,
            TcpFlags::ACK | TcpFlags::PSH | TcpFlags::RST | TcpFlags::URG | TcpFlags::FIN,
            &b""[..],
        );
        let hits = classify(&rec_of(&p));
        assert_eq!(hits, vec!["TCP", "ACK", "PSH", "RST", "URG", "FIN"]);
    }

    #[test]
    fn udp_icmp_other() {
        let (s, d) = addrs();
        assert_eq!(
            classify(&rec_of(&Packet::udp(s, d, UdpHeader::new(1, 2), &b""[..]))),
            vec!["UDP"]
        );
        assert_eq!(
            classify(&rec_of(&Packet::icmp(
                s,
                d,
                IcmpHeader::echo(true, 1, 1),
                &b""[..]
            ))),
            vec!["ICMP"]
        );
        assert_eq!(
            classify(&rec_of(&Packet::opaque(
                s,
                d,
                IpProtocol::Other(47),
                vec![0; 4]
            ))),
            vec!["OTHER"]
        );
    }

    #[test]
    fn multicast_destination_is_mcast() {
        let (s, _) = addrs();
        let mc = Ipv4Addr::new(224, 0, 1, 1);
        // IGMP to a multicast group: MCAST only, not OTHER.
        let p = Packet::opaque(s, mc, IpProtocol::Igmp, vec![0x16, 0, 0, 0]);
        assert_eq!(classify(&rec_of(&p)), vec!["MCAST"]);
        // UDP to a multicast group hits both UDP and MCAST.
        let p = Packet::udp(s, mc, UdpHeader::new(1, 2), &b""[..]);
        assert_eq!(classify(&rec_of(&p)), vec!["UDP", "MCAST"]);
        // 239.x is still multicast; 240.x is not.
        let p = Packet::udp(
            s,
            Ipv4Addr::new(239, 1, 1, 1),
            UdpHeader::new(1, 2),
            &b""[..],
        );
        assert!(classify(&rec_of(&p)).contains(&"MCAST"));
        let p = Packet::udp(
            s,
            Ipv4Addr::new(240, 1, 1, 1),
            UdpHeader::new(1, 2),
            &b""[..],
        );
        assert!(!classify(&rec_of(&p)).contains(&"MCAST"));
    }

    #[test]
    fn distribution_counts_items_once() {
        let (s, d) = addrs();
        let records = [
            rec_of(&Packet::tcp_flags(
                s,
                d,
                1,
                2,
                TcpFlags::SYN | TcpFlags::ACK,
                &b""[..],
            )),
            rec_of(&Packet::udp(s, d, UdpHeader::new(1, 2), &b""[..])),
        ];
        let dist = distribution(records.iter());
        assert_eq!(dist.items(), 2);
        assert_eq!(dist.count("TCP"), 1);
        assert_eq!(dist.count("SYN"), 1);
        assert_eq!(dist.count("ACK"), 1);
        assert_eq!(dist.count("UDP"), 1);
        assert_eq!(dist.count("FIN"), 0);
    }
}
