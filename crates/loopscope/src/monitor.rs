//! The multiplexed per-link monitor runtime behind `loopmond`.
//!
//! [`crate::pipeline::run_pipeline`] is a one-shot driver: one source,
//! pulled to exhaustion, one canonical result. A fleet monitor inverts
//! that shape — many links, each a long-lived stream of batches arriving
//! on its own schedule, with loop events wanted the moment their evidence
//! completes. This module is that runtime:
//!
//! * [`MonitorRuntime`] owns the shared state: the unified per-link-
//!   attributed loop-event JSONL sink and the fleet-wide counters.
//! * [`MonitorRuntime::add_link`] registers a link and returns a
//!   [`LinkMonitor`] — a share-nothing handle owning that link's bounded
//!   [`StreamingEngine`] (one [`crate::online::OnlineDetector`] per link).
//!   Handles are `Send`: each worker thread drives its links privately
//!   and only takes the sink lock to append completed event lines, so
//!   per-link event order is never perturbed by multiplexing.
//! * [`LinkMonitor::feed`] is the incremental path ([`Engine::feed`]
//!   under the hood); [`LinkMonitor::finish`] drains the engine's tail,
//!   flushes the link's last events, and retires the link — link removal
//!   is graceful by construction. Dropping a handle without finishing
//!   (worker panic, shutdown race) only forfeits that link's tail events;
//!   the shared sink and the other links are unaffected.
//!
//! Determinism: a link's event stream depends only on its own records —
//! engines never share detector state — so the per-link slice of the
//! unified sink is byte-identical to running that link's trace standalone
//! through a [`StreamingEngine`] with the same [`event_line`] rendering
//! (asserted by the monitor conformance tests). Memory is bounded per
//! link by the online detector's eviction horizon, so fleet memory is
//! `O(links)`, not `O(traffic)`.
//!
//! Telemetry: fleet-wide `monitor.*` counters plus live per-link gauges
//! `link.<id>.records`, `link.<id>.open_candidates` and `link.<id>.loops`
//! in the global registry, which the `telemetry::export` sampler already
//! streams — the monitor grows no sampler of its own.

use crate::config::DetectorConfig;
use crate::online::OnlineEvent;
use crate::pipeline::{loop_jsonl_fields, stream_jsonl_fields, Engine, StreamingEngine};
use crate::record::TraceRecord;
use crate::replica::DetectionStats;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use telemetry::{Gauge, LazyCounter, LazyGauge};

static TM_LINKS_ACTIVE: LazyGauge = LazyGauge::new("monitor.links_active");
static TM_RECORDS: LazyCounter = LazyCounter::new("monitor.records");
static TM_STREAMS: LazyCounter = LazyCounter::new("monitor.streams");
static TM_LOOPS: LazyCounter = LazyCounter::new("monitor.loops");

/// Monitor-wide configuration, applied to every link's engine.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Detector parameters (shared by all links).
    pub detector: DetectorConfig,
    /// Threshold for the `class` field of emitted loop events.
    pub persistent_threshold_ns: u64,
    /// Per-link history horizon override
    /// ([`StreamingEngine::with_history_horizon`]); `None` keeps the
    /// default exact-equivalence horizon.
    pub history_horizon_ns: Option<u64>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            detector: DetectorConfig::default(),
            persistent_threshold_ns: 60_000_000_000,
            history_horizon_ns: None,
        }
    }
}

/// Fleet-wide totals, readable at any time and returned by
/// [`MonitorRuntime::finish`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorTotals {
    /// Links ever registered.
    pub links_opened: u64,
    /// Links finished (gracefully removed).
    pub links_closed: u64,
    /// Records fed across all links.
    pub records: u64,
    /// Stream events emitted across all links.
    pub streams: u64,
    /// Loop events emitted across all links.
    pub loops: u64,
}

/// What one finished link contributed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkSummary {
    /// The link id given to [`MonitorRuntime::add_link`].
    pub id: String,
    /// Records this link's engine consumed.
    pub records: u64,
    /// Stream events this link emitted.
    pub streams: u64,
    /// Loop events this link emitted.
    pub loops: u64,
    /// The engine's final stage counters.
    pub stats: DetectionStats,
}

struct Shared {
    out: Mutex<Box<dyn Write + Send>>,
    active: AtomicUsize,
    opened: AtomicU64,
    closed: AtomicU64,
    records: AtomicU64,
    streams: AtomicU64,
    loops: AtomicU64,
}

/// Renders one per-link-attributed event line (no trailing newline).
///
/// The body fields after the `link`/`event` attribution are exactly the
/// fields [`crate::pipeline::StreamJsonlSink`] and
/// [`crate::pipeline::LoopJsonlSink`] write, in the same order and number
/// formatting, minus the loop `open_ended` flag (a whole-trace property a
/// live monitor cannot know at emission time).
pub fn event_line(link: &str, ev: &OnlineEvent, persistent_threshold_ns: u64) -> String {
    match ev {
        OnlineEvent::Stream(s) => {
            format!(
                "{{\"link\":\"{link}\",\"event\":\"stream\",{}}}",
                stream_jsonl_fields(s)
            )
        }
        OnlineEvent::Loop(l) => format!(
            "{{\"link\":\"{link}\",\"event\":\"loop\",{}}}",
            loop_jsonl_fields(l, persistent_threshold_ns)
        ),
    }
}

/// Panics unless `id` is usable verbatim inside JSON strings and metric
/// names: non-empty, at most 128 bytes, only `[A-Za-z0-9._-]`.
fn validate_link_id(id: &str) {
    assert!(!id.is_empty(), "link id must not be empty");
    assert!(id.len() <= 128, "link id too long: {id:?}");
    assert!(
        id.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-'),
        "link id must be [A-Za-z0-9._-]: {id:?}"
    );
}

/// The multiplexed runtime: a registry of concurrently monitored links
/// sharing one event sink. See the module docs for the architecture.
pub struct MonitorRuntime {
    cfg: MonitorConfig,
    shared: Arc<Shared>,
}

impl MonitorRuntime {
    /// A runtime writing the unified loop-event JSONL stream to `out`.
    pub fn new(cfg: MonitorConfig, out: Box<dyn Write + Send>) -> Self {
        Self {
            cfg,
            shared: Arc::new(Shared {
                out: Mutex::new(out),
                active: AtomicUsize::new(0),
                opened: AtomicU64::new(0),
                closed: AtomicU64::new(0),
                records: AtomicU64::new(0),
                streams: AtomicU64::new(0),
                loops: AtomicU64::new(0),
            }),
        }
    }

    /// Registers a link and returns its share-nothing feed handle. Safe to
    /// call from any thread at any time — links join and leave a running
    /// fleet freely.
    ///
    /// # Panics
    /// Panics when `id` fails `validate_link_id`'s charset rules.
    pub fn add_link(&self, id: &str) -> LinkMonitor {
        validate_link_id(id);
        let mut engine = StreamingEngine::new(self.cfg.detector);
        if let Some(h) = self.cfg.history_horizon_ns {
            engine = engine.with_history_horizon(h);
        }
        // Metric names live for the process; registering the same link id
        // twice re-resolves to the same gauges (the registry keys by
        // name content).
        let reg = telemetry::global();
        let gauge = |suffix: &str| -> &'static Gauge {
            reg.gauge(Box::leak(format!("link.{id}.{suffix}").into_boxed_str()))
        };
        self.shared.opened.fetch_add(1, Ordering::Relaxed);
        let active = self.shared.active.fetch_add(1, Ordering::Relaxed) + 1;
        TM_LINKS_ACTIVE.set(active as i64);
        LinkMonitor {
            id: id.to_string(),
            engine,
            shared: Arc::clone(&self.shared),
            persistent_ns: self.cfg.persistent_threshold_ns,
            records: 0,
            streams: 0,
            loops: 0,
            gauge_records: gauge("records"),
            gauge_open: gauge("open_candidates"),
            gauge_loops: gauge("loops"),
            buf: String::new(),
            done: false,
        }
    }

    /// Links currently registered and not yet finished.
    pub fn active_links(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Fleet-wide totals so far.
    pub fn totals(&self) -> MonitorTotals {
        MonitorTotals {
            links_opened: self.shared.opened.load(Ordering::Relaxed),
            links_closed: self.shared.closed.load(Ordering::Relaxed),
            records: self.shared.records.load(Ordering::Relaxed),
            streams: self.shared.streams.load(Ordering::Relaxed),
            loops: self.shared.loops.load(Ordering::Relaxed),
        }
    }

    /// Flushes the unified sink and returns the final totals. Call after
    /// every [`LinkMonitor`] has finished (or been dropped).
    pub fn finish(self) -> std::io::Result<MonitorTotals> {
        let totals = self.totals();
        self.shared
            .out
            .lock()
            .expect("monitor sink poisoned")
            .flush()?;
        Ok(totals)
    }
}

/// One monitored link: a bounded streaming engine plus the bookkeeping to
/// attribute its events in the shared sink. Obtained from
/// [`MonitorRuntime::add_link`]; `Send`, so workers can drive links from
/// any thread.
pub struct LinkMonitor {
    id: String,
    engine: StreamingEngine,
    shared: Arc<Shared>,
    persistent_ns: u64,
    records: u64,
    streams: u64,
    loops: u64,
    gauge_records: &'static Gauge,
    gauge_open: &'static Gauge,
    gauge_loops: &'static Gauge,
    buf: String,
    done: bool,
}

impl LinkMonitor {
    /// The link's id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Records fed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Open (undecided) replica candidates in this link's engine.
    pub fn open_candidates(&self) -> usize {
        self.engine.progress().open_candidates.unwrap_or(0)
    }

    /// Feeds one timestamp-ordered batch of this link's records,
    /// appending any completed events to the shared sink. Batches are
    /// buffered into whole lines first and written under one short lock,
    /// so lines from concurrent links interleave but never tear, and a
    /// link's own lines keep their emission order.
    pub fn feed(&mut self, batch: &[TraceRecord]) -> std::io::Result<()> {
        self.buf.clear();
        let mut streams = 0u64;
        let mut loops = 0u64;
        {
            let (id, pns, buf) = (&self.id, self.persistent_ns, &mut self.buf);
            let mut emit = |ev: OnlineEvent| {
                match ev {
                    OnlineEvent::Stream(_) => streams += 1,
                    OnlineEvent::Loop(_) => loops += 1,
                }
                buf.push_str(&event_line(id, &ev, pns));
                buf.push('\n');
            };
            self.engine.feed(batch, &mut emit);
        }
        self.records += batch.len() as u64;
        self.streams += streams;
        self.loops += loops;
        self.flush_buf()?;
        self.account(batch.len() as u64, streams, loops);
        Ok(())
    }

    /// Drains the engine's remaining state, writes this link's tail
    /// events, and retires the link from the fleet.
    pub fn finish(mut self) -> std::io::Result<LinkSummary> {
        self.buf.clear();
        let mut streams = 0u64;
        let mut loops = 0u64;
        let stats = {
            let (id, pns, buf) = (&self.id, self.persistent_ns, &mut self.buf);
            let mut emit = |ev: OnlineEvent| {
                match ev {
                    OnlineEvent::Stream(_) => streams += 1,
                    OnlineEvent::Loop(_) => loops += 1,
                }
                buf.push_str(&event_line(id, &ev, pns));
                buf.push('\n');
            };
            self.engine.finish(&mut emit)
        };
        self.streams += streams;
        self.loops += loops;
        self.flush_buf()?;
        self.account(0, streams, loops);
        self.done = true;
        self.retire();
        Ok(LinkSummary {
            id: self.id.clone(),
            records: self.records,
            streams: self.streams,
            loops: self.loops,
            stats,
        })
    }

    fn flush_buf(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let mut out = self.shared.out.lock().expect("monitor sink poisoned");
        out.write_all(self.buf.as_bytes())
    }

    fn account(&self, records: u64, streams: u64, loops: u64) {
        self.shared.records.fetch_add(records, Ordering::Relaxed);
        self.shared.streams.fetch_add(streams, Ordering::Relaxed);
        self.shared.loops.fetch_add(loops, Ordering::Relaxed);
        TM_RECORDS.add(records);
        TM_STREAMS.add(streams);
        TM_LOOPS.add(loops);
        self.gauge_records.set(self.records as i64);
        self.gauge_open.set(self.open_candidates() as i64);
        self.gauge_loops.set(self.loops as i64);
    }

    fn retire(&self) {
        self.shared.closed.fetch_add(1, Ordering::Relaxed);
        self.deactivate();
    }

    fn deactivate(&self) {
        let active = self.shared.active.fetch_sub(1, Ordering::Relaxed) - 1;
        TM_LINKS_ACTIVE.set(active as i64);
    }
}

impl Drop for LinkMonitor {
    fn drop(&mut self) {
        // A handle dropped without finish (worker panic, shutdown race)
        // forfeits its tail events and does not count as a graceful close,
        // but must not wedge the active-link count.
        if !self.done {
            self.deactivate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    /// A cloneable in-memory sink for capturing the unified stream.
    #[derive(Clone, Default)]
    struct SharedVec(Arc<Mutex<Vec<u8>>>);

    impl SharedVec {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedVec {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn looping_trace(dst_octet: u8) -> Vec<TraceRecord> {
        let mut recs = Vec::new();
        for j in 0..3u16 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 9, 9, 9),
                Ipv4Addr::new(203, 0, dst_octet, 1),
                5000,
                80,
                TcpFlags::ACK,
                &b"pay"[..],
            );
            p.ip.ident = 400 + j;
            p.ip.ttl = 58;
            p.fill_checksums();
            let base = u64::from(j) * 400_000_000;
            for k in 0..5u64 {
                if k > 0 {
                    p.ip.decrement_ttl();
                    p.ip.decrement_ttl();
                }
                recs.push(TraceRecord::from_packet(base + k * 1_000_000, &p));
            }
        }
        recs
    }

    #[test]
    fn monitor_matches_standalone_streaming_engine() {
        let recs = looping_trace(7);
        let sink = SharedVec::default();
        let rt = MonitorRuntime::new(MonitorConfig::default(), Box::new(sink.clone()));
        let mut link = rt.add_link("tap-a");
        for chunk in recs.chunks(4) {
            link.feed(chunk).unwrap();
        }
        let summary = link.finish().unwrap();
        rt.finish().unwrap();

        // Standalone render: same engine, same event writer, no runtime.
        let mut engine = StreamingEngine::new(DetectorConfig::default());
        let mut expect = String::new();
        let mut emit = |ev: OnlineEvent| {
            expect.push_str(&event_line("tap-a", &ev, 60_000_000_000));
            expect.push('\n');
        };
        engine.feed(&recs, &mut emit);
        let stats = engine.finish(&mut emit);

        assert_eq!(sink.contents(), expect);
        assert_eq!(summary.stats, stats);
        assert_eq!(summary.records, recs.len() as u64);
        assert!(summary.streams > 0, "fixture must produce streams");
        assert!(summary.loops > 0, "fixture must produce loops");
    }

    #[test]
    fn per_link_slices_are_attributed_and_complete() {
        let sink = SharedVec::default();
        let rt = MonitorRuntime::new(MonitorConfig::default(), Box::new(sink.clone()));
        let mut a = rt.add_link("a");
        let mut b = rt.add_link("link-b.7");
        assert_eq!(rt.active_links(), 2);
        a.feed(&looping_trace(1)).unwrap();
        b.feed(&looping_trace(2)).unwrap();
        let sa = a.finish().unwrap();
        assert_eq!(rt.active_links(), 1);
        let sb = b.finish().unwrap();
        assert_eq!(rt.active_links(), 0);
        let totals = rt.finish().unwrap();
        assert_eq!(totals.links_opened, 2);
        assert_eq!(totals.links_closed, 2);
        assert_eq!(totals.streams, sa.streams + sb.streams);
        assert_eq!(totals.loops, sa.loops + sb.loops);

        let text = sink.contents();
        let (mut na, mut nb) = (0u64, 0u64);
        for line in text.lines() {
            if line.starts_with("{\"link\":\"a\",") {
                na += 1;
            } else if line.starts_with("{\"link\":\"link-b.7\",") {
                nb += 1;
            } else {
                panic!("unattributed line: {line}");
            }
        }
        assert_eq!(na, sa.streams + sa.loops);
        assert_eq!(nb, sb.streams + sb.loops);
    }

    #[test]
    fn dropped_link_retires_without_tail_events() {
        let sink = SharedVec::default();
        let rt = MonitorRuntime::new(MonitorConfig::default(), Box::new(sink.clone()));
        let mut link = rt.add_link("dying");
        link.feed(&looping_trace(3)[..4]).unwrap();
        drop(link);
        assert_eq!(rt.active_links(), 0);
        let totals = rt.finish().unwrap();
        assert_eq!(totals.links_opened, 1);
        assert_eq!(totals.links_closed, 0, "drop is not a graceful close");
    }

    #[test]
    #[should_panic(expected = "link id")]
    fn link_id_charset_is_enforced() {
        let rt = MonitorRuntime::new(MonitorConfig::default(), Box::new(Vec::new()));
        let _ = rt.add_link("bad id with spaces");
    }
}
