//! The replica key: every header field that must match *exactly* between
//! replicas of one looped packet.
//!
//! §IV-A.1: "two packets … are considered to be replicas of a single looped
//! packet if their headers are identical **except for the TTL and IP header
//! checksum fields**; their TTL values differ by at least two; and their
//! payloads are identical", with equal TCP/UDP checksums standing in for
//! payload identity on 40-byte captures. The key therefore covers all IP
//! fields *except* TTL and header checksum, plus the full transport
//! summary (which includes the transport checksum).

use crate::record::{TraceRecord, TransportSummary};
use std::net::Ipv4Addr;

/// One round of the Fx multiply-rotate mixer (see [`crate::fxhash`]).
#[inline]
fn fp_mix(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(crate::fxhash::SEED)
}

/// Hashable identity of a (potentially looping) packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaKey {
    /// IP source.
    pub src: Ipv4Addr,
    /// IP destination.
    pub dst: Ipv4Addr,
    /// IP protocol.
    pub protocol: u8,
    /// IP identification — the field that separates distinct packets of
    /// one flow.
    pub ident: u16,
    /// IP total length.
    pub total_len: u16,
    /// Type of service.
    pub tos: u8,
    /// Flags/fragment word.
    pub frag_word: u16,
    /// Transport summary (ports, seq/ack, flags, transport checksum, …).
    pub transport: TransportSummary,
}

impl ReplicaKey {
    /// Extracts the key from a record.
    pub fn of(rec: &TraceRecord) -> Self {
        Self {
            src: rec.src,
            dst: rec.dst,
            protocol: rec.protocol,
            ident: rec.ident,
            total_len: rec.total_len,
            tos: rec.tos,
            frag_word: rec.frag_word,
            transport: rec.transport,
        }
    }

    /// The 64-bit level-0 fingerprint of this key: the identity probed by
    /// the two-level candidate index ([`crate::CandidateScanner`]) before
    /// any full-key hashing happens.
    ///
    /// It is a *pure function of exactly the key fields* — nothing more
    /// (TTL, IP checksum, and timestamp never feed it, so replicas of one
    /// looped packet always share a fingerprint) and nothing less (two
    /// keys that differ somewhere *usually* get different fingerprints).
    /// Collisions are possible and harmless: the scanner resolves them
    /// with a full key compare, so they can cost a probe but never change
    /// results. Computed once at ingest and carried on
    /// [`TraceRecord::fingerprint`] through shard dispatch.
    ///
    /// The mixer is the same multiply-rotate Fx scheme as
    /// [`crate::fxhash`], folded over hand-packed words so the whole key
    /// costs five multiplies.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fp_mix(
            0,
            (u64::from(u32::from(self.src)) << 32) | u64::from(u32::from(self.dst)),
        );
        h = fp_mix(
            h,
            u64::from(self.protocol)
                | (u64::from(self.ident) << 8)
                | (u64::from(self.total_len) << 24)
                | (u64::from(self.tos) << 40)
                | (u64::from(self.frag_word) << 48),
        );
        // A variant tag leads each transport word so e.g. a UDP and an
        // "Other" summary with coinciding bytes cannot alias.
        match self.transport {
            TransportSummary::Tcp {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window,
                checksum,
                urgent,
            } => {
                h = fp_mix(
                    h,
                    1u64 | (u64::from(src_port) << 8)
                        | (u64::from(dst_port) << 24)
                        | (u64::from(flags) << 40)
                        | (u64::from(window) << 48),
                );
                h = fp_mix(h, (u64::from(seq) << 32) | u64::from(ack));
                fp_mix(h, u64::from(checksum) | (u64::from(urgent) << 16))
            }
            TransportSummary::Udp {
                src_port,
                dst_port,
                length,
                checksum,
            } => {
                h = fp_mix(
                    h,
                    2u64 | (u64::from(src_port) << 8)
                        | (u64::from(dst_port) << 24)
                        | (u64::from(length) << 40),
                );
                fp_mix(h, u64::from(checksum))
            }
            TransportSummary::Icmp {
                icmp_type,
                code,
                checksum,
                rest,
            } => {
                h = fp_mix(
                    h,
                    3u64 | (u64::from(icmp_type) << 8)
                        | (u64::from(code) << 16)
                        | (u64::from(checksum) << 24),
                );
                fp_mix(h, u64::from(u32::from_le_bytes(rest)))
            }
            TransportSummary::Other { lead, len } => {
                h = fp_mix(h, 4u64 | (u64::from(len) << 8));
                fp_mix(h, u64::from_le_bytes(lead))
            }
        }
    }

    /// A reduced key that drops the transport checksum — used by the
    /// `ablation_key` bench to show why the payload proxy matters (without
    /// it, distinct retransmissions collapse into phantom replicas).
    pub fn without_transport_checksum(rec: &TraceRecord) -> Self {
        let mut key = Self::of(rec);
        key.transport = match key.transport {
            TransportSummary::Tcp {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window,
                urgent,
                ..
            } => TransportSummary::Tcp {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window,
                checksum: 0,
                urgent,
            },
            TransportSummary::Udp {
                src_port,
                dst_port,
                length,
                ..
            } => TransportSummary::Udp {
                src_port,
                dst_port,
                length,
                checksum: 0,
            },
            TransportSummary::Icmp {
                icmp_type,
                code,
                rest,
                ..
            } => TransportSummary::Icmp {
                icmp_type,
                code,
                checksum: 0,
                rest,
            },
            other @ TransportSummary::Other { .. } => other,
        };
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::{Packet, TcpFlags};

    fn base_packet() -> Packet {
        Packet::tcp_flags(
            Ipv4Addr::new(100, 0, 0, 1),
            Ipv4Addr::new(203, 0, 113, 9),
            4444,
            80,
            TcpFlags::ACK,
            &b"payload"[..],
        )
    }

    #[test]
    fn replicas_share_a_key() {
        // Simulate a router hop: decrement TTL, patch checksum.
        let p = base_packet();
        let r1 = TraceRecord::from_packet(0, &p);
        let mut hop = p.clone();
        hop.ip.decrement_ttl();
        hop.ip.decrement_ttl();
        let r2 = TraceRecord::from_packet(10, &hop);
        assert_ne!(r1.ttl, r2.ttl);
        assert_ne!(r1.ip_checksum, r2.ip_checksum);
        assert_eq!(ReplicaKey::of(&r1), ReplicaKey::of(&r2));
        // The level-0 fingerprint must respect the same equivalence: TTL
        // and IP-checksum rewrites never perturb it.
        assert_eq!(r1.fingerprint, r2.fingerprint);
        assert_eq!(r1.fingerprint, ReplicaKey::of(&r1).fingerprint());
    }

    #[test]
    fn fingerprint_separates_distinct_keys() {
        // Not a statistical test — just the keys this suite already knows
        // are distinct must not collide at 64 bits.
        let p1 = base_packet();
        let mut p2 = base_packet();
        p2.ip.ident = p1.ip.ident.wrapping_add(1);
        p2.fill_checksums();
        let f1 = ReplicaKey::of(&TraceRecord::from_packet(0, &p1)).fingerprint();
        let f2 = ReplicaKey::of(&TraceRecord::from_packet(0, &p2)).fingerprint();
        assert_ne!(f1, f2);
    }

    #[test]
    fn different_ident_different_key() {
        let p1 = base_packet();
        let mut p2 = base_packet();
        p2.ip.ident = p1.ip.ident.wrapping_add(1);
        p2.fill_checksums();
        let k1 = ReplicaKey::of(&TraceRecord::from_packet(0, &p1));
        let k2 = ReplicaKey::of(&TraceRecord::from_packet(0, &p2));
        assert_ne!(k1, k2);
    }

    #[test]
    fn different_payload_different_key_via_checksum() {
        // Same flow, same ident, different payload: the transport checksum
        // is the only witness under 40-byte truncation — and it must
        // differentiate the keys.
        let p1 = Packet::tcp_flags(
            Ipv4Addr::new(100, 0, 0, 1),
            Ipv4Addr::new(203, 0, 113, 9),
            4444,
            80,
            TcpFlags::ACK,
            &b"payload-a"[..],
        );
        let p2 = Packet::tcp_flags(
            Ipv4Addr::new(100, 0, 0, 1),
            Ipv4Addr::new(203, 0, 113, 9),
            4444,
            80,
            TcpFlags::ACK,
            &b"payload-b"[..],
        );
        let k1 = ReplicaKey::of(&TraceRecord::from_packet(0, &p1));
        let k2 = ReplicaKey::of(&TraceRecord::from_packet(0, &p2));
        assert_ne!(k1, k2);
        // The ablation key, by contrast, collapses them.
        let a1 = ReplicaKey::without_transport_checksum(&TraceRecord::from_packet(0, &p1));
        let a2 = ReplicaKey::without_transport_checksum(&TraceRecord::from_packet(0, &p2));
        assert_eq!(a1, a2);
    }

    #[test]
    fn different_flags_different_key() {
        let p1 = base_packet();
        let mut p2 = base_packet();
        if let net_types::Transport::Tcp(h) = &mut p2.transport {
            h.flags = TcpFlags::ACK | TcpFlags::PSH;
        }
        p2.fill_checksums();
        let k1 = ReplicaKey::of(&TraceRecord::from_packet(0, &p1));
        let k2 = ReplicaKey::of(&TraceRecord::from_packet(0, &p2));
        assert_ne!(k1, k2);
    }

    #[test]
    fn tos_and_frag_in_key() {
        let p1 = base_packet();
        let mut p2 = base_packet();
        p2.ip.tos = 0x10;
        p2.fill_checksums();
        assert_ne!(
            ReplicaKey::of(&TraceRecord::from_packet(0, &p1)),
            ReplicaKey::of(&TraceRecord::from_packet(0, &p2))
        );
        let mut p3 = base_packet();
        p3.ip.dont_frag = true;
        p3.fill_checksums();
        assert_ne!(
            ReplicaKey::of(&TraceRecord::from_packet(0, &p1)),
            ReplicaKey::of(&TraceRecord::from_packet(0, &p3))
        );
    }
}
