//! A fast, deterministic, non-cryptographic hasher for the detector's hot
//! paths.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed with a
//! per-process random seed and costs ~1 ns *per byte* — ruinous for a
//! pipeline that hashes a ~44-byte [`crate::ReplicaKey`] for every record
//! of a multi-million-packet trace. This module provides the well-known
//! "Fx" multiply-rotate hash (the scheme rustc itself uses for its
//! interner tables): a few cycles per 8-byte word, no seed, no
//! allocation.
//!
//! # Determinism
//!
//! `FxHasher` is *unseeded*: the same key hashes to the same value in
//! every process on every platform. That removes one source of run-to-run
//! variation, but hash-map **iteration order is still not part of any
//! contract** — every pipeline stage that surfaces map contents
//! normalises with an explicit sort (see `CandidateScanner::finish`,
//! `validate::validate`, `merge::merge`), exactly as it did under
//! SipHash. Byte-identical output across serial, sharded, and online
//! paths is enforced by the equality tests, not by hasher behaviour.
//!
//! # Security
//!
//! Fx is trivially collision-attackable, which is why std does not use
//! it by default. The detector ingests traces for *analysis*; an
//! adversary who controls trace contents can already make the pipeline
//! slow by sending genuinely loopy traffic, and hash-flooding a batch
//! analysis tool degrades throughput, not correctness. The trade is the
//! same one rustc makes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash: a 64-bit
/// fractional expansion of the golden ratio, which spreads consecutive
/// integers across the full word. Shared with the packet fingerprint
/// ([`crate::ReplicaKey::fingerprint`]), which uses the same mixer.
pub(crate) const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher. Create through
/// [`FxBuildHasher`]/[`FxHashMap`]; the default state is empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Mix the length in so "ab" + "" and "a" + "b" differ.
            tail[7] = rem.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// Builds [`FxHasher`]s; zero-sized and unseeded, so every map built from
/// it hashes identically.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the Fx hash. Construct with `FxHashMap::default()`
/// or [`fx_map_with_capacity`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed by the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An [`FxHashMap`] pre-sized for `capacity` entries — the pre-sizing
/// entry point used by the pipeline stages to avoid rehash-and-move
/// cycles on multi-million-record traces.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        let key = crate::ReplicaKey {
            src: std::net::Ipv4Addr::new(100, 0, 0, 1),
            dst: std::net::Ipv4Addr::new(203, 0, 113, 9),
            protocol: 6,
            ident: 777,
            total_len: 40,
            tos: 0,
            frag_word: 0x4000,
            transport: crate::TransportSummary::Udp {
                src_port: 53,
                dst_port: 53,
                length: 8,
                checksum: 0xbeef,
            },
        };
        assert_eq!(hash_of(&key), hash_of(&key));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        // Not a statistical test — just a sanity check that the mixer
        // actually mixes: 64k consecutive integers, no collisions.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..65_536 {
            assert!(seen.insert(hash_of(&i)), "collision at {i}");
        }
    }

    #[test]
    fn byte_writes_respect_boundaries() {
        let h = |parts: &[&[u8]]| {
            let mut hasher = FxHasher::default();
            for p in parts {
                hasher.write(p);
            }
            hasher.finish()
        };
        // Short tails must not alias: "ab"+"" vs "a"+"b" go through
        // different tail paddings.
        assert_ne!(h(&[b"ab"]), h(&[b"a", b"b"]));
        assert_ne!(h(&[b"abcdefgh"]), h(&[b"abcdefg"]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = fx_map_with_capacity(8);
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u16> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(s.contains(&9));
    }
}
