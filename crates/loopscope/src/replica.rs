//! Step 1 — replica detection — and the overall detection pipeline.
//!
//! Candidate grouping is exposed in two shapes: [`Detector::run`] drives
//! the whole batch pipeline, while [`CandidateScanner`] is the push-based
//! core it delegates to — the same scanner the sharded parallel pipeline
//! ([`crate::shard`]) feeds record-by-record as records arrive from its
//! ring buffers.
//!
//! The scanner is a *two-level candidate index*. Level 0 is an
//! open-addressing fingerprint table probed with the 64-bit
//! [`TraceRecord::fingerprint`] precomputed at ingest; first sightings —
//! the overwhelming majority of backbone traffic (§IV, Table I) — insert
//! there and return without hashing the ~44-byte [`ReplicaKey`] or
//! allocating. Level 1 is the exact `ReplicaKey → OpenCandidate` map,
//! entered only on second-and-later fingerprint sightings; fingerprint
//! collisions are resolved by full key compare there, so output is
//! byte-identical to the single-map reference path
//! (`DetectorConfig::use_prefilter = false`).

use crate::config::DetectorConfig;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};
use crate::key::ReplicaKey;
use crate::merge::{self, RoutingLoop};
use crate::record::TraceRecord;
use crate::stream::{Observation, ReplicaStream};
use crate::validate::{self, PrefixIndex};
use telemetry::trace::{self, TraceName};
use telemetry::{tm_debug, tm_info, LazyCounter};

static TM_RECORDS_SCANNED: LazyCounter = LazyCounter::new("replica.records_scanned");
static TM_CANDIDATES_OPENED: LazyCounter = LazyCounter::new("replica.candidates_opened");
static TM_CANDIDATES_DISCARDED: LazyCounter = LazyCounter::new("replica.candidates_discarded");
static TM_CHECKSUM_SPLITS: LazyCounter = LazyCounter::new("replica.checksum_splits");
// Level-0 pre-filter accounting, published unconditionally by
// `CandidateScanner::finish` (zeros under `--no-prefilter`) so snapshots
// always expose the full set.
static TM_PREFILTER_HITS: LazyCounter = LazyCounter::new("replica.prefilter_hits");
static TM_PREFILTER_MISSES: LazyCounter = LazyCounter::new("replica.prefilter_misses");
static TM_PREFILTER_PROMOTIONS: LazyCounter = LazyCounter::new("replica.prefilter_promotions");
static TM_PREFILTER_EVICTIONS: LazyCounter = LazyCounter::new("replica.prefilter_evictions");
static TM_PREFILTER_COLLISIONS: LazyCounter = LazyCounter::new("replica.prefilter_collisions");

// Event-trace markers for the pre-filter's rare transitions: promotions
// (seed → exact map) as instants, eviction sweeps as a cumulative counter
// track. Both sit outside the per-record fast path.
static TR_PREFILTER_PROMOTION: TraceName = TraceName::new("replica.prefilter_promotion");
static TR_PREFILTER_EVICTIONS: TraceName = TraceName::new("replica.prefilter_evictions");

/// Counters describing what each pipeline stage did — the raw material of
/// Table II and the A2 ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionStats {
    /// Records consumed.
    pub total_records: u64,
    /// Candidate replica sets with at least two sightings (pre-validation).
    pub raw_candidates: u64,
    /// Candidates rejected for having fewer than `min_stream_len` replicas
    /// (link-layer duplication artefacts).
    pub rejected_short: u64,
    /// Candidates rejected by the prefix co-loop rule.
    pub rejected_covalidation: u64,
    /// Times a sighting failed the RFC 1624 checksum-consistency check and
    /// forced a candidate split.
    pub checksum_splits: u64,
    /// Streams surviving validation.
    pub validated_streams: u64,
    /// Merged routing loops.
    pub routing_loops: u64,
    /// Total looped packets: every sighting in every validated stream
    /// (Table I's "Looped Packets" column counts individual looping
    /// packets; see [`DetectionResult::looped_unique_packets`] for the
    /// per-unique-packet count).
    pub looped_sightings: u64,
}

/// Full output of a detection run.
#[derive(Debug)]
pub struct DetectionResult {
    /// Validated replica streams, in start-time order.
    pub streams: Vec<ReplicaStream>,
    /// Merged routing loops, in `(prefix, start)` order.
    pub loops: Vec<RoutingLoop>,
    /// Per-record flag: was this record part of *any* candidate replica
    /// set (>= 2 sightings)? Used by the co-loop rule and by the traffic
    /// classification of looped traffic.
    pub looped_flags: Vec<bool>,
    /// Stage counters.
    pub stats: DetectionStats,
}

impl DetectionResult {
    /// Number of unique packets that looped (one per validated stream).
    pub fn looped_unique_packets(&self) -> u64 {
        self.streams.len() as u64
    }
}

/// The three-step detector.
#[derive(Debug, Clone)]
pub struct Detector {
    cfg: DetectorConfig,
}

struct OpenCandidate {
    observations: Vec<Observation>,
    record_indices: Vec<usize>,
    last_ip_checksum: u16,
    protocol: u8,
    /// Normalised level-0 fingerprint of the key — kept so the generation
    /// sweep can rebuild PROMOTED markers for surviving exact-map entries.
    fp: u64,
}

impl Detector {
    /// Creates a detector.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(cfg: DetectorConfig) -> Self {
        cfg.validate().expect("invalid detector configuration");
        Self { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Runs the full pipeline on a time-sorted trace.
    ///
    /// # Panics
    /// Panics when records are not sorted by timestamp — a trace that is
    /// out of order is corrupt and analysing it would silently produce
    /// nonsense.
    pub fn run(&self, records: &[TraceRecord]) -> DetectionResult {
        assert!(
            records
                .windows(2)
                .all(|w| w[0].timestamp_ns <= w[1].timestamp_ns),
            "trace records must be sorted by timestamp"
        );
        let mut stats = DetectionStats {
            total_records: records.len() as u64,
            ..Default::default()
        };
        TM_RECORDS_SCANNED.add(records.len() as u64);
        let candidates = {
            let _t = telemetry::span("replica.detect");
            self.find_candidates(records, &mut stats)
        };
        stats.raw_candidates = candidates.len() as u64;
        TM_CHECKSUM_SPLITS.add(stats.checksum_splits);
        tm_debug!(
            "step 1: {} records -> {} raw candidates ({} checksum splits)",
            records.len(),
            candidates.len(),
            stats.checksum_splits
        );

        // Per-record "is looped" flags from raw candidates: any packet with
        // at least one replica counts as looped for the co-loop rule (§IV-
        // A.2 asks whether packets "belong to a replica stream", prior to
        // length filtering).
        let mut looped_flags = vec![false; records.len()];
        for c in &candidates {
            for &idx in &c.record_indices {
                looped_flags[idx] = true;
            }
        }

        let index = PrefixIndex::build(records);
        let validated = {
            let _t = telemetry::span("validate");
            validate::validate(
                records,
                candidates,
                &looped_flags,
                &index,
                &self.cfg,
                &mut stats,
            )
        };
        stats.validated_streams = validated.len() as u64;
        stats.looped_sightings = validated.iter().map(|s| s.len() as u64).sum();

        let loops = {
            let _t = telemetry::span("merge");
            merge::merge(records, &validated, &looped_flags, &index, &self.cfg)
        };
        stats.routing_loops = loops.len() as u64;
        tm_info!(
            "detection complete: {} records, {} validated streams, {} routing loops",
            stats.total_records,
            stats.validated_streams,
            stats.routing_loops
        );

        DetectionResult {
            streams: validated,
            loops,
            looped_flags,
            stats,
        }
    }

    /// Step 1: groups records into candidate replica sets (>= 2 sightings
    /// each).
    fn find_candidates(
        &self,
        records: &[TraceRecord],
        stats: &mut DetectionStats,
    ) -> Vec<ReplicaStream> {
        let mut scanner = CandidateScanner::with_capacity(self.cfg, records.len() / 4);
        for (idx, rec) in records.iter().enumerate() {
            scanner.push(idx, rec);
        }
        let (done, counters) = scanner.finish();
        stats.checksum_splits += counters.checksum_splits;
        TM_CANDIDATES_OPENED.add(counters.opened);
        TM_CANDIDATES_DISCARDED.add(counters.discarded);
        done
    }
}

/// The verdict on whether a sighting continues an open candidate.
pub(crate) struct ContinuationCheck {
    /// The sighting extends the candidate.
    pub joins: bool,
    /// The only reason it did not join was an RFC 1624-inconsistent IP
    /// header checksum (a forced split, counted separately).
    pub checksum_split: bool,
}

/// §IV-A.1's continuation rule, shared verbatim by the batch scanner and
/// the online detector: the TTL must have dropped by at least
/// `min_ttl_delta`, the silence must not exceed the replica gap, and the
/// new IP header checksum must be arithmetically consistent with the TTL
/// rewrite.
pub(crate) fn check_continuation(
    cfg: &DetectorConfig,
    last: Observation,
    last_ip_checksum: u16,
    protocol: u8,
    rec: &TraceRecord,
) -> ContinuationCheck {
    let gap = rec.timestamp_ns.saturating_sub(last.timestamp_ns);
    let ttl_ok = last.ttl >= rec.ttl.saturating_add(cfg.min_ttl_delta);
    let fresh = gap <= cfg.max_replica_gap_ns;
    let checksum_ok = if cfg.verify_checksum_consistency && ttl_ok {
        let expected =
            net_types::checksum::ttl_rewrite(last_ip_checksum, last.ttl, rec.ttl, protocol);
        checksums_equivalent(expected, rec.ip_checksum)
    } else {
        true
    };
    ContinuationCheck {
        joins: ttl_ok && fresh && checksum_ok,
        checksum_split: ttl_ok && fresh && !checksum_ok,
    }
}

/// Counters accumulated by one [`CandidateScanner`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCounters {
    /// Candidates opened (every first sighting of a key opens one).
    pub opened: u64,
    /// Candidates closed with fewer than two sightings.
    pub discarded: u64,
    /// Forced splits on checksum inconsistency.
    pub checksum_splits: u64,
}

/// Marks a level-0 slot whose fingerprint has moved to the exact map:
/// every key hashing to it lives (or lived) at level 1, so the slot
/// answers "go probe the map" instead of holding an inline seed.
const PROMOTED_BIT: u64 = 1 << 63;
/// Low bits of the metadata word: the generation of the last touch.
const GEN_MASK: u64 = PROMOTED_BIT - 1;

/// A level-0 slot's inline payload: the single sighting that opened the
/// candidate, parked here until a second sighting proves it worth a real
/// [`OpenCandidate`] (and its two `Vec` allocations).
#[derive(Clone, Copy)]
struct PrefilterSeed {
    rec: TraceRecord,
    idx: usize,
}

impl PrefilterSeed {
    /// Filler for unoccupied slots — never read (occupancy is decided by
    /// the fingerprint lane alone).
    fn vacant() -> Self {
        Self {
            rec: TraceRecord {
                timestamp_ns: 0,
                src: std::net::Ipv4Addr::UNSPECIFIED,
                dst: std::net::Ipv4Addr::UNSPECIFIED,
                protocol: 0,
                ident: 0,
                total_len: 0,
                tos: 0,
                ttl: 0,
                frag_word: 0,
                ip_checksum: 0,
                transport: crate::record::TransportSummary::Other {
                    lead: [0; 8],
                    len: 0,
                },
                fingerprint: 0,
            },
            idx: 0,
        }
    }
}

/// The level-0 open-addressing fingerprint table, laid out
/// structure-of-arrays so the miss path — the dominant one — touches only
/// the `u64` fingerprint lane (1–2 cache lines with linear probing).
///
/// Slot states, decided by `fps[i]` and `meta[i]`:
/// - **empty** (`fps[i] == 0`): never seen in the active window;
/// - **seed** (`fps[i] != 0`, promoted bit clear): exactly one sighting,
///   stored inline in the `seeds` lane — no allocation yet;
/// - **promoted** (`fps[i] != 0`, promoted bit set): every candidate with
///   this fingerprint lives in the exact map; a miss at level 0 therefore
///   *definitively* means "key not active", which is what lets first
///   sightings skip the map entirely.
struct PreFilter {
    /// Fingerprint lane; 0 is the empty-slot sentinel (record
    /// fingerprints are normalised to nonzero before probing).
    fps: Vec<u64>,
    /// Metadata lane: [`PROMOTED_BIT`] | generation of the last touch.
    meta: Vec<u64>,
    /// Seed lane; read only on a fingerprint hit.
    seeds: Vec<PrefilterSeed>,
    /// Occupied slots (seeds + promoted markers).
    live: usize,
    /// `1 << gen_shift` is the generation window, the smallest power of
    /// two at or above `max_replica_gap_ns` — so anything last touched two
    /// or more generations ago is *provably* beyond the inter-replica
    /// spacing bound and can be evicted without changing results.
    gen_shift: u32,
    hits: u64,
    misses: u64,
    promotions: u64,
    evictions: u64,
    collisions: u64,
}

impl PreFilter {
    const MIN_CAPACITY: usize = 16;

    fn new(capacity_hint: usize, max_replica_gap_ns: u64) -> Self {
        let cap = capacity_hint
            .saturating_mul(2)
            .next_power_of_two()
            .max(Self::MIN_CAPACITY);
        let gen_shift = max_replica_gap_ns
            .checked_next_power_of_two()
            .map_or(63, |p| p.trailing_zeros());
        Self {
            fps: vec![0; cap],
            meta: vec![0; cap],
            seeds: vec![PrefilterSeed::vacant(); cap],
            live: 0,
            gen_shift,
            hits: 0,
            misses: 0,
            promotions: 0,
            evictions: 0,
            collisions: 0,
        }
    }

    #[inline]
    fn generation(&self, timestamp_ns: u64) -> u64 {
        (timestamp_ns >> self.gen_shift) & GEN_MASK
    }

    /// Linear probe: the slot holding `fp`, or the first empty slot on its
    /// run. The ≤ 3/4 load factor guarantees an empty slot exists.
    #[inline]
    fn probe(&self, fp: u64) -> usize {
        let mask = self.fps.len() - 1;
        let mut i = (fp as usize) & mask;
        loop {
            let f = self.fps[i];
            if f == fp || f == 0 {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Would one more insert push the table past a 3/4 load factor?
    #[inline]
    fn needs_sweep(&self) -> bool {
        (self.live + 1) * 4 > self.fps.len() * 3
    }

    #[inline]
    fn insert_seed(&mut self, slot: usize, fp: u64, gen: u64, rec: &TraceRecord, idx: usize) {
        self.fps[slot] = fp;
        self.meta[slot] = gen;
        self.seeds[slot] = PrefilterSeed { rec: *rec, idx };
        self.live += 1;
    }
}

/// Level-0 probes use fingerprint 0 as the empty-slot sentinel; a record
/// whose (pure-function-of-key) fingerprint is genuinely 0 is folded onto
/// 1 — at worst one more collision, resolved like any other.
#[inline]
pub(crate) fn normalise_fp(fp: u64) -> u64 {
    if fp == 0 {
        1
    } else {
        fp
    }
}

/// Push-based step-1 scanner: feed time-ordered records one at a time,
/// collect the finished candidate replica sets at the end. Record indices
/// are whatever the caller passes in — global trace positions for the
/// serial pipeline, shard-local positions for the parallel one.
///
/// This is the two-level candidate index described in the module docs:
/// level 0 is the `PreFilter` fingerprint table (probed with the
/// ingest-precomputed [`TraceRecord::fingerprint`], zero allocations and
/// no key hashing on the dominant first-sighting path), level 1 the exact
/// [`FxHashMap`] keyed by [`ReplicaKey`] that only promoted (seen-twice)
/// candidates reach. With `use_prefilter` off, every record takes the
/// level-1 path directly — the reference implementation the equivalence
/// tests compare against. Output order never depends on either table (see
/// [`CandidateScanner::finish`]).
pub struct CandidateScanner {
    cfg: DetectorConfig,
    open: FxHashMap<ReplicaKey, OpenCandidate>,
    done: Vec<ReplicaStream>,
    counters: ScanCounters,
    prefilter: Option<PreFilter>,
    /// Normalised fingerprint of the key behind each checksum-split event,
    /// in occurrence order. The block-parallel pipeline uses this to
    /// re-attribute splits at slice boundaries; splits are rare (one per
    /// corrupted rewrite, not per record), so the log is tiny.
    split_fps: Vec<u64>,
}

impl CandidateScanner {
    /// A scanner whose tables are pre-sized for roughly `capacity`
    /// simultaneously-open keys, avoiding rehash storms on large traces.
    pub fn with_capacity(cfg: DetectorConfig, capacity: usize) -> Self {
        let prefilter = cfg
            .use_prefilter
            .then(|| PreFilter::new(capacity, cfg.max_replica_gap_ns));
        // With the pre-filter in front, the exact map only ever holds
        // promoted candidates — a small fraction of open keys.
        let exact_capacity = if cfg.use_prefilter {
            capacity / 16
        } else {
            capacity
        };
        Self {
            cfg,
            open: fx_map_with_capacity(exact_capacity),
            done: Vec::new(),
            counters: ScanCounters::default(),
            prefilter,
            split_fps: Vec::new(),
        }
    }

    /// Consumes one record (callers guarantee timestamp order).
    #[inline]
    pub fn push(&mut self, idx: usize, rec: &TraceRecord) {
        if self.prefilter.is_some() {
            self.push_prefiltered(idx, rec);
        } else {
            self.push_exact(idx, rec, normalise_fp(rec.fingerprint));
        }
    }

    fn push_prefiltered(&mut self, idx: usize, rec: &TraceRecord) {
        let fp = normalise_fp(rec.fingerprint);
        let pf = self.prefilter.as_mut().expect("prefilter enabled");
        let gen = pf.generation(rec.timestamp_ns);
        let slot = pf.probe(fp);
        if pf.fps[slot] == 0 {
            // Level-0 miss: first sighting of this fingerprint in the
            // active window. The dominant path on real traces — one lane
            // probe and an inline store; no key hash, no allocation.
            pf.misses += 1;
            if pf.needs_sweep() {
                self.sweep(gen);
                let pf = self.prefilter.as_mut().expect("prefilter enabled");
                let slot = pf.probe(fp);
                pf.insert_seed(slot, fp, gen, rec, idx);
            } else {
                pf.insert_seed(slot, fp, gen, rec, idx);
            }
            self.counters.opened += 1;
            return;
        }
        pf.hits += 1;
        if pf.meta[slot] & PROMOTED_BIT != 0 {
            // Everything with this fingerprint already lives at level 1.
            pf.meta[slot] = PROMOTED_BIT | gen;
            self.push_exact(idx, rec, fp);
            return;
        }
        let seed = pf.seeds[slot];
        if ReplicaKey::of(&seed.rec) == ReplicaKey::of(rec) {
            let last = Observation {
                timestamp_ns: seed.rec.timestamp_ns,
                ttl: seed.rec.ttl,
            };
            let check = check_continuation(
                &self.cfg,
                last,
                seed.rec.ip_checksum,
                seed.rec.protocol,
                rec,
            );
            if check.joins {
                // Second sighting proves the candidate: promote it to the
                // exact map with both observations. This is the only place
                // the hot loop allocates, and it runs once per *replica*,
                // not once per record.
                let mut cand = OpenCandidate::new(&seed.rec, seed.idx, fp);
                cand.observations.push(Observation {
                    timestamp_ns: rec.timestamp_ns,
                    ttl: rec.ttl,
                });
                cand.record_indices.push(idx);
                cand.last_ip_checksum = rec.ip_checksum;
                self.open.insert(ReplicaKey::of(rec), cand);
                pf.meta[slot] = PROMOTED_BIT | gen;
                pf.promotions += 1;
                trace::instant(&TR_PREFILTER_PROMOTION);
            } else {
                if check.checksum_split {
                    self.counters.checksum_splits += 1;
                    self.split_fps.push(fp);
                }
                // Same key but not a continuation (link-layer duplicate,
                // ident wrap, or stale stream): the one-sighting seed
                // closes — discarded, exactly as the reference path would
                // — and this sighting re-seeds the slot in place.
                self.counters.discarded += 1;
                self.counters.opened += 1;
                pf.seeds[slot] = PrefilterSeed { rec: *rec, idx };
                pf.meta[slot] = gen;
            }
        } else {
            // True fingerprint collision between distinct keys: escalate
            // both to the exact map, where the full key disambiguates them
            // forever after, and promote the slot so neither is re-seeded.
            // Costs a probe; cannot change results.
            pf.collisions += 1;
            pf.meta[slot] = PROMOTED_BIT | gen;
            self.open.insert(
                ReplicaKey::of(&seed.rec),
                OpenCandidate::new(&seed.rec, seed.idx, fp),
            );
            self.open
                .insert(ReplicaKey::of(rec), OpenCandidate::new(rec, idx, fp));
            self.counters.opened += 1;
        }
    }

    /// The exact-map (level-1) path: the whole of step 1 when the
    /// pre-filter is disabled, and the promoted-slot continuation when it
    /// is on.
    fn push_exact(&mut self, idx: usize, rec: &TraceRecord, fp: u64) {
        let key = ReplicaKey::of(rec);
        // Entry API: one hash of the (44-byte) key per record, on every
        // branch — get_mut + insert would hash twice for first sightings.
        match self.open.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let cand = e.get_mut();
                let last = *cand.observations.last().expect("open candidate non-empty");
                let check =
                    check_continuation(&self.cfg, last, cand.last_ip_checksum, cand.protocol, rec);
                if check.joins {
                    cand.observations.push(Observation {
                        timestamp_ns: rec.timestamp_ns,
                        ttl: rec.ttl,
                    });
                    cand.record_indices.push(idx);
                    cand.last_ip_checksum = rec.ip_checksum;
                } else {
                    if check.checksum_split {
                        self.counters.checksum_splits += 1;
                        self.split_fps.push(fp);
                    }
                    // Same key but not a continuation: close the old
                    // candidate and start over from this sighting —
                    // swapped in place, no rehash.
                    let old = std::mem::replace(cand, OpenCandidate::new(rec, idx, fp));
                    Self::close(key, old, &mut self.done, &mut self.counters);
                    self.counters.opened += 1;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(OpenCandidate::new(rec, idx, fp));
                self.counters.opened += 1;
            }
        }
    }

    /// Generation sweep: evicts everything last touched two or more
    /// windows ago — provably beyond `max_replica_gap_ns`, so nothing
    /// evicted here could ever have joined a future sighting. Stale exact
    /// candidates close now instead of at [`Self::finish`] (the final sort
    /// erases the difference), stale seeds are discarded exactly as a
    /// same-key stale split would have, and the lanes are rebuilt —
    /// growing only when the *live* population demands it. This bounds
    /// both tables by the traffic of the active window rather than the
    /// whole trace, and costs O(capacity) per ≥ capacity/4 inserts.
    #[cold]
    fn sweep(&mut self, cur_gen: u64) {
        let pf = self.prefilter.as_mut().expect("prefilter enabled");
        let gen_shift = pf.gen_shift;
        let stale = |g: u64| g.saturating_add(2) <= cur_gen;
        let mut evicted = 0u64;
        let done = &mut self.done;
        let counters = &mut self.counters;
        self.open.retain(|key, cand| {
            let last = cand.observations.last().expect("open candidate non-empty");
            if stale((last.timestamp_ns >> gen_shift) & GEN_MASK) {
                evicted += 1;
                if cand.observations.len() >= 2 {
                    done.push(ReplicaStream {
                        key: *key,
                        observations: std::mem::take(&mut cand.observations),
                        record_indices: std::mem::take(&mut cand.record_indices),
                    });
                } else {
                    counters.discarded += 1;
                }
                false
            } else {
                true
            }
        });
        let mut survivors: Vec<(u64, u64, PrefilterSeed)> = Vec::new();
        for i in 0..pf.fps.len() {
            let fp = pf.fps[i];
            if fp == 0 || pf.meta[i] & PROMOTED_BIT != 0 {
                continue;
            }
            if stale(pf.meta[i] & GEN_MASK) {
                // A seed that old can never be joined; close it discarded,
                // just as the reference path eventually would.
                counters.discarded += 1;
                evicted += 1;
            } else {
                survivors.push((fp, pf.meta[i], pf.seeds[i]));
            }
        }
        pf.evictions += evicted;
        trace::counter(&TR_PREFILTER_EVICTIONS, pf.evictions);
        let live_target = survivors.len() + self.open.len();
        let new_cap = (live_target * 2 + 1).next_power_of_two().max(pf.fps.len());
        pf.fps = vec![0; new_cap];
        pf.meta = vec![0; new_cap];
        pf.seeds = vec![PrefilterSeed::vacant(); new_cap];
        pf.live = 0;
        for (fp, meta, seed) in survivors {
            let slot = pf.probe(fp);
            debug_assert_eq!(pf.fps[slot], 0, "seed fingerprints are unique");
            pf.fps[slot] = fp;
            pf.meta[slot] = meta;
            pf.seeds[slot] = seed;
            pf.live += 1;
        }
        // One PROMOTED marker per surviving exact-map fingerprint (keys
        // sharing a fingerprint share a marker), so a level-0 miss keeps
        // meaning "key not active".
        for cand in self.open.values() {
            let slot = pf.probe(cand.fp);
            if pf.fps[slot] == 0 {
                pf.fps[slot] = cand.fp;
                pf.meta[slot] = PROMOTED_BIT | cur_gen;
                pf.live += 1;
            }
        }
    }

    /// Closes every open candidate and returns the finished sets in
    /// `(start time, first record index)` order.
    pub fn finish(self) -> (Vec<ReplicaStream>, ScanCounters) {
        let (done, counters, _) = self.finish_with_splits();
        (done, counters)
    }

    /// [`Self::finish`] plus the per-event checksum-split fingerprint log —
    /// what the block-parallel pipeline needs to decide which worker-local
    /// splits survive boundary reconciliation.
    pub fn finish_with_splits(mut self) -> (Vec<ReplicaStream>, ScanCounters, Vec<u64>) {
        let mut tele = [0u64; 5];
        if let Some(pf) = self.prefilter.take() {
            // Remaining seeds are one-sighting candidates that never found
            // a replica.
            for i in 0..pf.fps.len() {
                if pf.fps[i] != 0 && pf.meta[i] & PROMOTED_BIT == 0 {
                    self.counters.discarded += 1;
                }
            }
            tele = [
                pf.hits,
                pf.misses,
                pf.promotions,
                pf.evictions,
                pf.collisions,
            ];
        }
        // Published even when zero so `--metrics` snapshots always carry
        // the full prefilter counter set.
        TM_PREFILTER_HITS.add(tele[0]);
        TM_PREFILTER_MISSES.add(tele[1]);
        TM_PREFILTER_PROMOTIONS.add(tele[2]);
        TM_PREFILTER_EVICTIONS.add(tele[3]);
        TM_PREFILTER_COLLISIONS.add(tele[4]);
        for (key, cand) in self.open.drain() {
            Self::close(key, cand, &mut self.done, &mut self.counters);
        }
        // Table drain order is nondeterministic (and eviction re-times
        // closes); normalise.
        self.done
            .sort_by_key(|s| (s.start_ns(), s.record_indices[0]));
        (self.done, self.counters, self.split_fps)
    }

    fn close(
        key: ReplicaKey,
        cand: OpenCandidate,
        done: &mut Vec<ReplicaStream>,
        counters: &mut ScanCounters,
    ) {
        if cand.observations.len() >= 2 {
            done.push(ReplicaStream {
                key,
                observations: cand.observations,
                record_indices: cand.record_indices,
            });
        } else {
            counters.discarded += 1;
        }
    }
}

impl OpenCandidate {
    fn new(rec: &TraceRecord, idx: usize, fp: u64) -> Self {
        Self {
            observations: vec![Observation {
                timestamp_ns: rec.timestamp_ns,
                ttl: rec.ttl,
            }],
            record_indices: vec![idx],
            last_ip_checksum: rec.ip_checksum,
            protocol: rec.protocol,
            fp,
        }
    }
}

/// One's-complement checksums have two zero representations; treat them as
/// equal when comparing an incrementally-updated value against the one on
/// the wire.
fn checksums_equivalent(a: u16, b: u16) -> bool {
    let canon = |c: u16| if c == 0xffff { 0 } else { c };
    canon(a) == canon(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    /// Builds the records a tap would see for one packet looping between
    /// two (or `delta`) routers: TTL decreasing by `delta` per sighting.
    fn looping_records(
        start_ns: u64,
        spacing_ns: u64,
        first_ttl: u8,
        delta: u8,
        n: usize,
        ident: u16,
        dst: Ipv4Addr,
    ) -> Vec<TraceRecord> {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 7, 7, 7),
            dst,
            5555,
            80,
            TcpFlags::ACK,
            &b"data"[..],
        );
        p.ip.ident = ident;
        p.ip.ttl = first_ttl;
        p.fill_checksums();
        let mut out = Vec::new();
        let mut t = start_ns;
        for k in 0..n {
            if k > 0 {
                for _ in 0..delta {
                    assert!(p.ip.decrement_ttl());
                }
            }
            out.push(TraceRecord::from_packet(t, &p));
            t += spacing_ns;
        }
        out
    }

    fn sort_records(mut v: Vec<TraceRecord>) -> Vec<TraceRecord> {
        v.sort_by_key(|r| r.timestamp_ns);
        v
    }

    #[test]
    fn single_loop_yields_one_stream() {
        let recs = looping_records(0, 1_000_000, 60, 2, 10, 1, Ipv4Addr::new(203, 0, 113, 1));
        let det = Detector::new(DetectorConfig::default());
        let result = det.run(&recs);
        assert_eq!(result.streams.len(), 1);
        let s = &result.streams[0];
        assert_eq!(s.len(), 10);
        assert_eq!(s.ttl_delta(), 2);
        assert_eq!(s.first_ttl(), 60);
        assert_eq!(s.last_ttl(), 60 - 18);
        assert_eq!(result.loops.len(), 1);
        assert_eq!(result.stats.raw_candidates, 1);
        assert_eq!(result.stats.looped_sightings, 10);
        assert!(result.looped_flags.iter().all(|&f| f));
    }

    #[test]
    fn normal_traffic_yields_nothing() {
        // Distinct packets of one flow: increasing idents, same TTL.
        let mut recs = Vec::new();
        for i in 0..50u16 {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 1, 1, 1),
                Ipv4Addr::new(203, 0, 113, 2),
                1000,
                80,
                TcpFlags::ACK,
                &b""[..],
            );
            p.ip.ident = i;
            p.ip.ttl = 57;
            p.fill_checksums();
            recs.push(TraceRecord::from_packet(u64::from(i) * 1_000, &p));
        }
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        assert!(result.streams.is_empty());
        assert!(result.loops.is_empty());
        assert_eq!(result.stats.raw_candidates, 0);
    }

    #[test]
    fn link_layer_duplicates_rejected() {
        // The same packet twice with *equal* TTL: a token-ring/SONET
        // duplicate, not a loop. Never a candidate (TTL must drop by 2).
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 1, 1, 1),
            Ipv4Addr::new(203, 0, 113, 3),
            1,
            2,
            TcpFlags::ACK,
            &b""[..],
        );
        p.ip.ttl = 60;
        p.fill_checksums();
        let recs = vec![
            TraceRecord::from_packet(0, &p),
            TraceRecord::from_packet(10, &p),
        ];
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        assert!(result.streams.is_empty());
        assert_eq!(result.stats.raw_candidates, 0);
    }

    #[test]
    fn two_element_stream_rejected_by_validation() {
        let recs = looping_records(0, 1_000_000, 60, 2, 2, 9, Ipv4Addr::new(203, 0, 113, 4));
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        assert_eq!(result.stats.raw_candidates, 1);
        assert_eq!(result.stats.rejected_short, 1);
        assert!(result.streams.is_empty());
        // But the A2 ablation config accepts it.
        let ablated = Detector::new(DetectorConfig::no_validation()).run(&recs);
        assert_eq!(ablated.streams.len(), 1);
    }

    #[test]
    fn ttl_delta_one_not_a_replica() {
        // Successive sightings only 1 apart violate the >= 2 rule.
        let recs = looping_records(0, 1_000, 60, 1, 5, 2, Ipv4Addr::new(203, 0, 113, 5));
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        assert!(result.streams.is_empty());
    }

    #[test]
    fn interleaved_streams_separated() {
        // Two packets looping concurrently to different /24s.
        let a = looping_records(0, 1_000_000, 62, 2, 8, 1, Ipv4Addr::new(203, 0, 113, 6));
        let b = looping_records(
            500_000,
            1_000_000,
            126,
            2,
            8,
            2,
            Ipv4Addr::new(198, 51, 100, 6),
        );
        let mut all = a;
        all.extend(b);
        let recs = sort_records(all);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        assert_eq!(result.streams.len(), 2);
        let mut deltas: Vec<u8> = result.streams.iter().map(|s| s.ttl_delta()).collect();
        deltas.sort();
        assert_eq!(deltas, vec![2, 2]);
        assert_eq!(result.loops.len(), 2);
    }

    #[test]
    fn stale_candidate_split_by_gap() {
        // Same key sighted, then silence past the gap, then sighted again
        // with lower TTL: two candidates, neither long enough alone.
        let mut recs = looping_records(0, 1_000_000, 60, 2, 3, 5, Ipv4Addr::new(203, 0, 113, 7));
        let late = looping_records(
            10_000_000_000, // 10 s later, gap default is 1 s
            1_000_000,
            40,
            2,
            3,
            5,
            Ipv4Addr::new(203, 0, 113, 7),
        );
        recs.extend(late);
        let recs = sort_records(recs);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        // Both halves are 3-element candidates in their own right.
        assert_eq!(result.stats.raw_candidates, 2);
        assert_eq!(result.streams.len(), 2);
        // And they merge into a single routing loop (same /24, < 1 min
        // apart, nothing non-looped in between).
        assert_eq!(result.loops.len(), 1);
        assert_eq!(result.loops[0].streams.len(), 2);
    }

    #[test]
    fn checksum_inconsistency_splits_candidate() {
        let mut recs = looping_records(0, 1_000_000, 60, 2, 3, 3, Ipv4Addr::new(203, 0, 113, 8));
        // Corrupt the third sighting's IP checksum.
        recs[2].ip_checksum ^= 0x0f0f;
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        assert_eq!(result.stats.checksum_splits, 1);
        // Without the check it would be a clean 3-stream.
        let lax = Detector::new(DetectorConfig {
            verify_checksum_consistency: false,
            ..DetectorConfig::default()
        })
        .run(&recs);
        assert_eq!(lax.streams.len(), 1);
        assert_eq!(lax.stats.checksum_splits, 0);
    }

    #[test]
    fn covalidation_vetoes_stream_with_nonlooped_neighbour() {
        // A 5-replica stream, but another packet to the same /24 crosses
        // exactly once in the middle of the window: §IV-A.2 says the
        // "loop" cannot be real.
        let mut recs = looping_records(0, 1_000_000, 60, 2, 5, 1, Ipv4Addr::new(203, 0, 113, 9));
        let mut bystander = Packet::tcp_flags(
            Ipv4Addr::new(100, 2, 2, 2),
            Ipv4Addr::new(203, 0, 113, 10), // same /24
            777,
            443,
            TcpFlags::ACK,
            &b""[..],
        );
        bystander.ip.ttl = 50;
        bystander.ip.ident = 999;
        bystander.fill_checksums();
        recs.push(TraceRecord::from_packet(2_000_000, &bystander));
        let recs = sort_records(recs);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        assert_eq!(result.stats.rejected_covalidation, 1);
        assert!(result.streams.is_empty());
        // A2 ablation keeps it.
        let ablated = Detector::new(DetectorConfig::no_validation()).run(&recs);
        assert_eq!(ablated.streams.len(), 1);
    }

    #[test]
    fn covalidation_ignores_other_prefixes() {
        let mut recs = looping_records(0, 1_000_000, 60, 2, 5, 1, Ipv4Addr::new(203, 0, 113, 9));
        let mut bystander = Packet::tcp_flags(
            Ipv4Addr::new(100, 2, 2, 2),
            Ipv4Addr::new(198, 51, 100, 1), // different /24
            777,
            443,
            TcpFlags::ACK,
            &b""[..],
        );
        bystander.ip.ttl = 50;
        bystander.fill_checksums();
        recs.push(TraceRecord::from_packet(2_000_000, &bystander));
        let recs = sort_records(recs);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        assert_eq!(result.streams.len(), 1);
    }

    #[test]
    fn boundary_straggler_does_not_veto() {
        // A packet that entered the loop just before it healed crosses the
        // monitor once, right at the end of the stream's window. The slack
        // (one mean spacing) must absorb it.
        let mut recs = looping_records(0, 1_000_000, 60, 2, 5, 1, Ipv4Addr::new(203, 0, 113, 9));
        let stream_end = 4_000_000u64;
        let mut straggler = Packet::tcp_flags(
            Ipv4Addr::new(100, 2, 2, 2),
            Ipv4Addr::new(203, 0, 113, 11),
            888,
            443,
            TcpFlags::ACK,
            &b""[..],
        );
        straggler.ip.ttl = 50;
        straggler.ip.ident = 1234;
        straggler.fill_checksums();
        recs.push(TraceRecord::from_packet(stream_end - 200_000, &straggler));
        let recs = sort_records(recs);
        let result = Detector::new(DetectorConfig::default()).run(&recs);
        assert_eq!(result.streams.len(), 1, "straggler must not veto");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_panics() {
        let mut recs = looping_records(0, 1_000_000, 60, 2, 3, 1, Ipv4Addr::new(203, 0, 113, 1));
        recs.swap(0, 2);
        Detector::new(DetectorConfig::default()).run(&recs);
    }

    #[test]
    fn deterministic_output_order() {
        let mut all = Vec::new();
        for i in 0..20u16 {
            all.extend(looping_records(
                u64::from(i) * 10_000,
                1_000_000,
                60,
                2,
                4,
                i,
                Ipv4Addr::new(203, 0, 113, (i % 200) as u8 + 1),
            ));
        }
        let recs = sort_records(all);
        let det = Detector::new(DetectorConfig::default());
        let a = det.run(&recs);
        let b = det.run(&recs);
        assert_eq!(a.streams, b.streams);
        assert_eq!(a.stats, b.stats);
    }
}
