//! Step 2 — replica stream validation.
//!
//! Two rules from §IV-A.2:
//!
//! 1. Sets with only two elements are discarded: the link layer can
//!    duplicate packets (token ring drain failures, SONET protection
//!    mis-configuration), and two sightings are not enough evidence.
//! 2. The co-loop rule: "If a packet with the same destination subnet as a
//!    replicated packet does not itself belong to a replica stream, then
//!    other replicas observed at that time cannot be due to a routing
//!    loop, since the loop should affect all packets to the destination in
//!    question."
//!
//! The co-loop window is shrunk by one mean inter-replica spacing on each
//! side (configurable): a packet entering the loop just before it heals
//! legitimately crosses the monitor exactly once and must not veto the
//! stream (see `DetectorConfig::covalidate_slack_spacings`).

use crate::config::DetectorConfig;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};
use crate::record::TraceRecord;
use crate::replica::DetectionStats;
use crate::stream::ReplicaStream;
use net_types::Ipv4Prefix;
use telemetry::{tm_debug, LazyCounter};

static TM_STREAMS_KEPT: LazyCounter = LazyCounter::new("validate.streams_kept");
static TM_REJECTED_SHORT: LazyCounter = LazyCounter::new("validate.rejected_short");
static TM_REJECTED_COVALIDATION: LazyCounter = LazyCounter::new("validate.rejected_covalidation");

/// One contiguous range's share of a [`PrefixIndex`]: prefix →
/// `(timestamp, trace-global record index)` postings, in range order.
/// Built by [`PrefixIndex::build_range`], merged by
/// [`PrefixIndex::from_partials`].
pub type IndexPartial = FxHashMap<Ipv4Prefix, Vec<(u64, usize)>>;

/// Per-/24 index of record positions, for windowed queries.
#[derive(Debug, Default)]
pub struct PrefixIndex {
    /// prefix -> (timestamp, record index), in time order.
    by_prefix: FxHashMap<Ipv4Prefix, Vec<(u64, usize)>>,
}

impl PrefixIndex {
    /// Builds the index from a time-sorted trace.
    pub fn build(records: &[TraceRecord]) -> Self {
        Self {
            by_prefix: Self::build_range(records, 0, records.len()),
        }
    }

    /// Indexes the contiguous range `[lo, hi)` of a trace, with
    /// trace-global record indices. Callers that already fan workers over
    /// contiguous ranges (the block-parallel scan) build these partials
    /// in-worker, overlapped with their other work, and pay only the
    /// [`Self::from_partials`] merge afterwards.
    pub fn build_range(records: &[TraceRecord], lo: usize, hi: usize) -> IndexPartial {
        let slice = &records[lo..hi];
        // Distinct /24s are far rarer than records; a /64 estimate is
        // enough to dodge the rehash cascade without over-allocating.
        let mut part: IndexPartial = fx_map_with_capacity((slice.len() / 64).max(16));
        for (off, rec) in slice.iter().enumerate() {
            part.entry(rec.dst_slash24())
                .or_default()
                .push((rec.timestamp_ns, lo + off));
        }
        part
    }

    /// Assembles the full index from per-range partials given in range
    /// order. Ranges are contiguous and the trace is time-sorted, so
    /// appending each range's posting lists in order reproduces exactly
    /// the `(timestamp, index)` order the serial build produces — the
    /// index contents are identical.
    pub fn from_partials(partials: Vec<IndexPartial>) -> Self {
        let postings: usize = partials.iter().map(|p| p.len()).sum();
        let mut by_prefix: FxHashMap<Ipv4Prefix, Vec<(u64, usize)>> =
            fx_map_with_capacity(postings.max(16));
        for part in partials {
            for (prefix, mut postings) in part {
                match by_prefix.entry(prefix) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().append(&mut postings);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(postings);
                    }
                }
            }
        }
        Self { by_prefix }
    }

    /// [`Self::build`] fanned out over `threads` contiguous record ranges:
    /// [`Self::build_range`] per worker, [`Self::from_partials`] to merge.
    pub fn build_parallel(records: &[TraceRecord], threads: usize) -> Self {
        let n = threads.max(1).min(records.len());
        if n <= 1 {
            return Self::build(records);
        }
        let chunk = records.len().div_ceil(n);
        let partials: Vec<IndexPartial> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(records.len());
                    scope.spawn(move || Self::build_range(records, lo, hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("index worker panicked"))
                .collect()
        });
        Self::from_partials(partials)
    }

    /// Record indices destined to `prefix` with timestamps in
    /// `[from, to]` (inclusive).
    pub fn in_window(&self, prefix: Ipv4Prefix, from: u64, to: u64) -> &[(u64, usize)] {
        let Some(list) = self.by_prefix.get(&prefix) else {
            return &[];
        };
        let lo = list.partition_point(|(t, _)| *t < from);
        let hi = list.partition_point(|(t, _)| *t <= to);
        &list[lo..hi]
    }
}

/// Applies both validation rules, updating `stats`.
pub fn validate(
    _records: &[TraceRecord],
    candidates: Vec<ReplicaStream>,
    looped_flags: &[bool],
    index: &PrefixIndex,
    cfg: &DetectorConfig,
    stats: &mut DetectionStats,
) -> Vec<ReplicaStream> {
    let mut out = Vec::new();
    for cand in candidates {
        if cand.len() < cfg.min_stream_len {
            stats.rejected_short += 1;
            TM_REJECTED_SHORT.inc();
            tm_debug!(
                "rejected short candidate to {} ({} sightings)",
                cand.dst_slash24(),
                cand.len()
            );
            continue;
        }
        if cfg.covalidate_prefix && !co_loop_holds(&cand, looped_flags, index, cfg) {
            stats.rejected_covalidation += 1;
            TM_REJECTED_COVALIDATION.inc();
            tm_debug!(
                "rejected candidate to {} by the co-loop rule",
                cand.dst_slash24()
            );
            continue;
        }
        out.push(cand);
    }
    TM_STREAMS_KEPT.add(out.len() as u64);
    out.sort_by_key(|s| (s.start_ns(), s.key.ident));
    out
}

/// The co-loop rule for one candidate.
fn co_loop_holds(
    cand: &ReplicaStream,
    looped_flags: &[bool],
    index: &PrefixIndex,
    cfg: &DetectorConfig,
) -> bool {
    let slack = (cand.mean_spacing_ns() as f64 * cfg.covalidate_slack_spacings) as u64;
    let from = cand.start_ns().saturating_add(slack);
    let to = cand.end_ns().saturating_sub(slack);
    if from > to {
        return true; // window collapsed: nothing to check
    }
    index
        .in_window(cand.dst_slash24(), from, to)
        .iter()
        .all(|(_, idx)| looped_flags[*idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    fn rec(ts: u64, dst: Ipv4Addr, ident: u16) -> TraceRecord {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 1, 1, 1),
            dst,
            1,
            2,
            TcpFlags::ACK,
            &b""[..],
        );
        p.ip.ident = ident;
        p.fill_checksums();
        TraceRecord::from_packet(ts, &p)
    }

    #[test]
    fn index_window_queries() {
        let d1 = Ipv4Addr::new(203, 0, 113, 1);
        let d2 = Ipv4Addr::new(198, 51, 100, 1);
        let records = vec![
            rec(10, d1, 0),
            rec(20, d2, 1),
            rec(30, d1, 2),
            rec(40, d1, 3),
            rec(50, d2, 4),
        ];
        let idx = PrefixIndex::build(&records);
        let p1 = Ipv4Prefix::slash24_of(d1);
        let hits = idx.in_window(p1, 10, 30);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], (10, 0));
        assert_eq!(hits[1], (30, 2));
        // Exclusive outside the range.
        assert_eq!(idx.in_window(p1, 31, 39).len(), 0);
        assert_eq!(idx.in_window(p1, 40, 40).len(), 1);
        // Unknown prefix.
        assert!(idx
            .in_window(Ipv4Prefix::slash24_of(Ipv4Addr::new(9, 9, 9, 9)), 0, 100)
            .is_empty());
    }

    #[test]
    fn index_handles_equal_timestamps() {
        let d = Ipv4Addr::new(203, 0, 113, 1);
        let records = vec![rec(10, d, 0), rec(10, d, 1), rec(10, d, 2)];
        let idx = PrefixIndex::build(&records);
        assert_eq!(idx.in_window(Ipv4Prefix::slash24_of(d), 10, 10).len(), 3);
    }
}
