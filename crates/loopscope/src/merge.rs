//! Step 3 — merging replica streams into routing loops.
//!
//! §IV-A.3: "First, we merge replica streams that overlap in time and have
//! identical destination address prefixes. … we also merge replica streams
//! that occur less than one minute apart provided that the resulting
//! merged replica stream does not overlap with packets to the subnet that
//! are not looped." One routing loop traps many packets, so the merged
//! object — not the per-packet stream — is the unit Figure 9 and Table II
//! report.

use crate::config::DetectorConfig;
use crate::record::TraceRecord;
use crate::stream::ReplicaStream;
use crate::validate::PrefixIndex;
use net_types::Ipv4Prefix;
use std::collections::BTreeMap;
use telemetry::{tm_debug, LazyCounter};

static TM_LOOPS_TOTAL: LazyCounter = LazyCounter::new("merge.loops_total");
static TM_MERGE_DECISIONS: LazyCounter = LazyCounter::new("merge.merge_decisions");
static TM_GAP_CLOSURES: LazyCounter = LazyCounter::new("merge.gap_closures");

/// Transient-vs-persistent classification (§I–II: transient loops resolve
/// as routing converges; persistent loops — typically misconfiguration —
/// require human intervention; the paper analyses the former and leaves
/// the latter to future work, which this reproduction includes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// Resolved within the persistence threshold.
    Transient,
    /// Outlived the threshold, or was still replicating when the trace
    /// ended.
    Persistent,
}

/// A merged routing loop: all replica streams attributed to one
/// forwarding-state inconsistency for one /24.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingLoop {
    /// The affected destination /24.
    pub prefix: Ipv4Prefix,
    /// First replica sighting across member streams.
    pub start_ns: u64,
    /// Last replica sighting across member streams.
    pub end_ns: u64,
    /// Member streams in start order.
    pub streams: Vec<ReplicaStream>,
}

impl RoutingLoop {
    fn from_stream(s: ReplicaStream) -> Self {
        Self {
            prefix: s.dst_slash24(),
            start_ns: s.start_ns(),
            end_ns: s.end_ns(),
            streams: vec![s],
        }
    }

    fn absorb(&mut self, s: ReplicaStream) {
        debug_assert_eq!(self.prefix, s.dst_slash24());
        self.start_ns = self.start_ns.min(s.start_ns());
        self.end_ns = self.end_ns.max(s.end_ns());
        self.streams.push(s);
    }

    /// Loop duration (Fig. 9's quantity).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Member stream count.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Total replica sightings across member streams.
    pub fn replica_count(&self) -> usize {
        self.streams.iter().map(ReplicaStream::len).sum()
    }

    /// Classifies the loop by observed duration. `persistent_threshold_ns`
    /// is the longest duration still credited to protocol convergence (the
    /// paper's data puts IGP reconvergence below ~10 s and pathological
    /// BGP convergence in the minutes, so thresholds of 60–300 s are
    /// reasonable).
    pub fn classify(&self, persistent_threshold_ns: u64) -> LoopKind {
        if self.duration_ns() >= persistent_threshold_ns {
            LoopKind::Persistent
        } else {
            LoopKind::Transient
        }
    }

    /// True when the loop was still replicating when the capture ended
    /// (last replica within `tail_gap_ns` of `trace_end_ns`): its true
    /// duration is unknown — at least what was observed.
    pub fn is_open_ended(&self, trace_end_ns: u64, tail_gap_ns: u64) -> bool {
        self.end_ns.saturating_add(tail_gap_ns) >= trace_end_ns
    }

    /// The loop's TTL delta: the modal delta across member streams.
    pub fn ttl_delta(&self) -> u8 {
        let mut counts = BTreeMap::new();
        for s in &self.streams {
            *counts.entry(s.ttl_delta()).or_insert(0u32) += 1;
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(d, _)| d)
            .unwrap_or(0)
    }
}

/// Merges validated streams into routing loops.
///
/// Takes the streams by reference — the caller keeps its vector (it is
/// the [`crate::DetectionResult::streams`] output) and only the streams
/// absorbed into loops are cloned, one each, inside. This is what lets
/// the sharded pipeline hand its per-shard `validated` set to merge
/// without the wholesale `Vec` clone it used to pay per shard.
pub fn merge(
    _records: &[TraceRecord],
    streams: &[ReplicaStream],
    looped_flags: &[bool],
    index: &PrefixIndex,
    cfg: &DetectorConfig,
) -> Vec<RoutingLoop> {
    // Group by /24 (indices only; nothing is cloned yet).
    let mut by_prefix: BTreeMap<Ipv4Prefix, Vec<usize>> = BTreeMap::new();
    for (i, s) in streams.iter().enumerate() {
        by_prefix.entry(s.dst_slash24()).or_default().push(i);
    }
    let mut out = Vec::new();
    for (prefix, mut group) in by_prefix {
        group.sort_by_key(|&i| (streams[i].start_ns(), streams[i].end_ns()));
        let mut iter = group.into_iter().map(|i| streams[i].clone());
        let mut current = RoutingLoop::from_stream(iter.next().expect("non-empty group"));
        for s in iter {
            let overlap = s.start_ns() <= current.end_ns;
            let merged = if overlap {
                true
            } else {
                let gap = s.start_ns() - current.end_ns;
                let bridged = gap <= cfg.merge_gap_ns
                    && gap_is_clean(prefix, current.end_ns, s.start_ns(), looped_flags, index);
                if bridged {
                    TM_GAP_CLOSURES.inc();
                    tm_debug!("bridged a {} ns gap for {}", gap, prefix);
                }
                bridged
            };
            if merged {
                TM_MERGE_DECISIONS.inc();
                current.absorb(s);
            } else {
                out.push(std::mem::replace(&mut current, RoutingLoop::from_stream(s)));
            }
        }
        out.push(current);
    }
    TM_LOOPS_TOTAL.add(out.len() as u64);
    out.sort_by_key(|l| (l.prefix, l.start_ns));
    out
}

/// The gap between two streams is bridgeable only if no *non-looped*
/// packet to the subnet crossed during it.
fn gap_is_clean(
    prefix: Ipv4Prefix,
    from: u64,
    to: u64,
    looped_flags: &[bool],
    index: &PrefixIndex,
) -> bool {
    // Exclusive interior of the gap.
    if to <= from + 1 {
        return true;
    }
    index
        .in_window(prefix, from + 1, to - 1)
        .iter()
        .all(|(_, idx)| looped_flags[*idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ReplicaKey;
    use crate::stream::Observation;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    fn mk_record(ts: u64, dst: Ipv4Addr, ident: u16) -> TraceRecord {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 1, 1, 1),
            dst,
            1,
            2,
            TcpFlags::ACK,
            &b""[..],
        );
        p.ip.ident = ident;
        p.fill_checksums();
        TraceRecord::from_packet(ts, &p)
    }

    fn mk_stream(dst: Ipv4Addr, ident: u16, times: &[u64], indices: &[usize]) -> ReplicaStream {
        let rec = mk_record(times[0], dst, ident);
        ReplicaStream {
            key: ReplicaKey::of(&rec),
            observations: times
                .iter()
                .enumerate()
                .map(|(i, &t)| Observation {
                    timestamp_ns: t,
                    ttl: 60 - 2 * i as u8,
                })
                .collect(),
            record_indices: indices.to_vec(),
        }
    }

    const SEC: u64 = 1_000_000_000;

    fn run_merge(
        records: Vec<TraceRecord>,
        streams: Vec<ReplicaStream>,
        looped: Vec<bool>,
        cfg: &DetectorConfig,
    ) -> Vec<RoutingLoop> {
        let index = PrefixIndex::build(&records);
        merge(&records, &streams, &looped, &index, cfg)
    }

    #[test]
    fn overlapping_streams_merge() {
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let records = vec![
            mk_record(0, dst, 1),
            mk_record(SEC, dst, 2),
            mk_record(2 * SEC, dst, 1),
            mk_record(3 * SEC, dst, 2),
        ];
        let s1 = mk_stream(dst, 1, &[0, 2 * SEC], &[0, 2]);
        let s2 = mk_stream(dst, 2, &[SEC, 3 * SEC], &[1, 3]);
        let loops = run_merge(
            records,
            vec![s1, s2],
            vec![true; 4],
            &DetectorConfig::default(),
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].num_streams(), 2);
        assert_eq!(loops[0].start_ns, 0);
        assert_eq!(loops[0].end_ns, 3 * SEC);
        assert_eq!(loops[0].duration_ns(), 3 * SEC);
        assert_eq!(loops[0].replica_count(), 4);
    }

    #[test]
    fn distinct_prefixes_never_merge() {
        let d1 = Ipv4Addr::new(203, 0, 113, 1);
        let d2 = Ipv4Addr::new(198, 51, 100, 1);
        let records = vec![
            mk_record(0, d1, 1),
            mk_record(1, d2, 2),
            mk_record(2, d1, 1),
            mk_record(3, d2, 2),
        ];
        let s1 = mk_stream(d1, 1, &[0, 2], &[0, 2]);
        let s2 = mk_stream(d2, 2, &[1, 3], &[1, 3]);
        let loops = run_merge(
            records,
            vec![s1, s2],
            vec![true; 4],
            &DetectorConfig::default(),
        );
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn clean_gap_within_limit_merges() {
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        // Stream A ends at 1 s; stream B starts at 31 s. Nothing to the
        // /24 in between.
        let records = vec![
            mk_record(0, dst, 1),
            mk_record(SEC, dst, 1),
            mk_record(31 * SEC, dst, 2),
            mk_record(32 * SEC, dst, 2),
        ];
        let s1 = mk_stream(dst, 1, &[0, SEC], &[0, 1]);
        let s2 = mk_stream(dst, 2, &[31 * SEC, 32 * SEC], &[2, 3]);
        let loops = run_merge(
            records,
            vec![s1, s2],
            vec![true; 4],
            &DetectorConfig::default(),
        );
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].num_streams(), 2);
    }

    #[test]
    fn dirty_gap_blocks_merge() {
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        // A non-looped packet to the /24 in the gap.
        let records = vec![
            mk_record(0, dst, 1),
            mk_record(SEC, dst, 1),
            mk_record(15 * SEC, dst, 99), // lone bystander: not looped
            mk_record(31 * SEC, dst, 2),
            mk_record(32 * SEC, dst, 2),
        ];
        let s1 = mk_stream(dst, 1, &[0, SEC], &[0, 1]);
        let s2 = mk_stream(dst, 2, &[31 * SEC, 32 * SEC], &[3, 4]);
        let looped = vec![true, true, false, true, true];
        let loops = run_merge(records, vec![s1, s2], looped, &DetectorConfig::default());
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn gap_beyond_limit_blocks_merge() {
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let records = vec![
            mk_record(0, dst, 1),
            mk_record(SEC, dst, 1),
            mk_record(100 * SEC, dst, 2), // 99 s gap > 60 s
            mk_record(101 * SEC, dst, 2),
        ];
        let s1 = mk_stream(dst, 1, &[0, SEC], &[0, 1]);
        let s2 = mk_stream(dst, 2, &[100 * SEC, 101 * SEC], &[2, 3]);
        let loops = run_merge(
            records,
            vec![s1, s2],
            vec![true; 4],
            &DetectorConfig::default(),
        );
        assert_eq!(loops.len(), 2);
        // With a 5-minute A1 gap they merge.
        let records2 = vec![
            mk_record(0, dst, 1),
            mk_record(SEC, dst, 1),
            mk_record(100 * SEC, dst, 2),
            mk_record(101 * SEC, dst, 2),
        ];
        let s1 = mk_stream(dst, 1, &[0, SEC], &[0, 1]);
        let s2 = mk_stream(dst, 2, &[100 * SEC, 101 * SEC], &[2, 3]);
        let loops5 = run_merge(
            records2,
            vec![s1, s2],
            vec![true; 4],
            &DetectorConfig::default().with_merge_gap_minutes(5),
        );
        assert_eq!(loops5.len(), 1);
    }

    #[test]
    fn chain_merging_is_transitive() {
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let mut records = Vec::new();
        let mut streams = Vec::new();
        for k in 0..5u64 {
            let t0 = k * 30 * SEC;
            records.push(mk_record(t0, dst, k as u16));
            records.push(mk_record(t0 + SEC, dst, k as u16));
            streams.push(mk_stream(
                dst,
                k as u16,
                &[t0, t0 + SEC],
                &[(k * 2) as usize, (k * 2 + 1) as usize],
            ));
        }
        let n = records.len();
        let loops = run_merge(records, streams, vec![true; n], &DetectorConfig::default());
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].num_streams(), 5);
        assert_eq!(loops[0].duration_ns(), 4 * 30 * SEC + SEC);
    }

    #[test]
    fn loop_ttl_delta_is_modal() {
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let records = vec![mk_record(0, dst, 1)];
        let s1 = mk_stream(dst, 1, &[0, 1, 2], &[0, 0, 0]);
        let loops = run_merge(records, vec![s1], vec![true], &DetectorConfig::default());
        assert_eq!(loops[0].ttl_delta(), 2);
    }

    #[test]
    fn classification_by_duration_and_tail() {
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let short = RoutingLoop {
            prefix: Ipv4Prefix::slash24_of(dst),
            start_ns: 0,
            end_ns: 5 * SEC,
            streams: vec![mk_stream(dst, 1, &[0, 5 * SEC], &[0, 1])],
        };
        let long = RoutingLoop {
            prefix: Ipv4Prefix::slash24_of(dst),
            start_ns: 0,
            end_ns: 400 * SEC,
            streams: vec![mk_stream(dst, 2, &[0, 400 * SEC], &[0, 1])],
        };
        let threshold = 120 * SEC;
        assert_eq!(short.classify(threshold), LoopKind::Transient);
        assert_eq!(long.classify(threshold), LoopKind::Persistent);
        // Tail detection: trace ends at 401 s; `long` was still running.
        assert!(long.is_open_ended(401 * SEC, 2 * SEC));
        assert!(!short.is_open_ended(401 * SEC, 2 * SEC));
    }
}
