//! §VI impact analysis: loss contribution and escape delay.
//!
//! From a trace alone the detector can tell which looping packets *must*
//! have died (their last sighted TTL cannot survive another traversal) and
//! which may have escaped; the repro harness cross-checks these estimates
//! against the simulator's ground truth (delivery records and drop
//! records).

use crate::stream::ReplicaStream;
use stats::{Cdf, TimeSeries};

/// One minute in nanoseconds — the paper's loss-rate bucket.
pub const MINUTE_NS: u64 = 60_000_000_000;

/// Trace-side escape estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EscapeEstimate {
    /// Validated streams examined.
    pub total_streams: u64,
    /// Streams whose packet certainly died in the loop (last TTL <= delta).
    pub died: u64,
    /// Streams whose packet may have escaped.
    pub may_have_escaped: u64,
}

impl EscapeEstimate {
    /// Upper bound on the escape fraction.
    pub fn escape_fraction_upper(&self) -> f64 {
        if self.total_streams == 0 {
            0.0
        } else {
            self.may_have_escaped as f64 / self.total_streams as f64
        }
    }
}

/// Classifies every stream by escape possibility.
pub fn escape_estimate(streams: &[ReplicaStream]) -> EscapeEstimate {
    let mut est = EscapeEstimate {
        total_streams: streams.len() as u64,
        ..Default::default()
    };
    for s in streams {
        if s.may_have_escaped() {
            est.may_have_escaped += 1;
        } else {
            est.died += 1;
        }
    }
    est
}

/// Per-bucket count of looping packets that died in the loop, timestamped
/// at their final sighting. Combined with total-loss counts (from the
/// simulator or router stats) this yields the paper's "up to X% of packet
/// loss per minute" series.
pub fn loop_death_timeseries(streams: &[ReplicaStream], bucket_ns: u64) -> TimeSeries {
    let mut ts = TimeSeries::new(bucket_ns);
    for s in streams {
        if !s.may_have_escaped() {
            ts.add(s.end_ns(), 1);
        }
    }
    ts
}

/// Extra delay a loop imposes on packets that escape it: at minimum the
/// time the packet was observed circulating (stream duration), plus one
/// final traversal to exit. Returns the CDF in milliseconds over streams
/// that may have escaped — the trace-side counterpart of the paper's
/// "25 ms to 300 ms" extra delay.
pub fn escape_extra_delay_cdf_ms(streams: &[ReplicaStream]) -> Cdf {
    Cdf::from_samples(
        streams
            .iter()
            .filter(|s| s.may_have_escaped())
            .map(|s| (s.duration_ns() + s.mean_spacing_ns()) as f64 / 1e6),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ReplicaKey;
    use crate::record::TraceRecord;
    use crate::stream::Observation;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    fn stream(ttls: &[u8], t0: u64, spacing: u64) -> ReplicaStream {
        let p = Packet::tcp_flags(
            Ipv4Addr::new(100, 0, 0, 1),
            Ipv4Addr::new(203, 0, 113, 1),
            1,
            2,
            TcpFlags::ACK,
            &b""[..],
        );
        let rec = TraceRecord::from_packet(t0, &p);
        ReplicaStream {
            key: ReplicaKey::of(&rec),
            observations: ttls
                .iter()
                .enumerate()
                .map(|(i, &ttl)| Observation {
                    timestamp_ns: t0 + i as u64 * spacing,
                    ttl,
                })
                .collect(),
            record_indices: vec![0; ttls.len()],
        }
    }

    #[test]
    fn escape_classification() {
        let dead = stream(&[6, 4, 2], 0, 1_000_000); // last TTL == delta: dies
        let alive = stream(&[60, 58, 56], 0, 1_000_000); // plenty left
        let est = escape_estimate(&[dead, alive]);
        assert_eq!(est.total_streams, 2);
        assert_eq!(est.died, 1);
        assert_eq!(est.may_have_escaped, 1);
        assert!((est.escape_fraction_upper() - 0.5).abs() < 1e-12);
        assert_eq!(escape_estimate(&[]).escape_fraction_upper(), 0.0);
    }

    #[test]
    fn death_timeseries_buckets_by_final_sighting() {
        let d1 = stream(&[6, 4, 2], 0, 1_000_000); // dies at ~2 ms -> minute 0
        let d2 = stream(&[6, 4, 2], 2 * MINUTE_NS, 1_000_000); // minute 2
        let alive = stream(&[60, 58, 56], 0, 1_000_000);
        let ts = loop_death_timeseries(&[d1, d2, alive], MINUTE_NS);
        assert_eq!(ts.at(0), 1);
        assert_eq!(ts.at(MINUTE_NS), 0);
        assert_eq!(ts.at(2 * MINUTE_NS), 1);
        assert_eq!(ts.total(), 2);
    }

    #[test]
    fn extra_delay_cdf_only_escapees() {
        // 10 sightings 30 ms apart: 270 ms observed + 30 ms exit = 300 ms.
        let ttls: Vec<u8> = (0..10).map(|i| 64 - 2 * i).collect();
        let escaper = stream(&ttls, 0, 30_000_000);
        let dead = stream(&[6, 4, 2], 0, 30_000_000);
        let mut cdf = escape_extra_delay_cdf_ms(&[escaper, dead]);
        assert_eq!(cdf.len(), 1);
        assert!((cdf.max().unwrap() - 300.0).abs() < 1e-9);
    }
}
