#![warn(missing_docs)]
//! **loopscope** — detection and analysis of routing loops in packet traces.
//!
//! This is the paper's primary contribution (§IV), implemented faithfully:
//!
//! 1. **Detect replicas** ([`replica`]): two packets are replicas of one
//!    looped packet when their headers are identical except TTL and IP
//!    header checksum, their TTLs differ by at least two, and their
//!    payloads are identical — proxied, exactly as in the paper, by equal
//!    transport checksums (traces carry only the first 40 bytes).
//! 2. **Validate replica streams** ([`validate`]): discard two-element
//!    sets (link-layer duplication artefacts) and require that *all*
//!    packets to the same /24 during the proposed loop interval are
//!    themselves looped.
//! 3. **Merge replica streams into routing loops** ([`merge`]): streams to
//!    the same /24 that overlap in time, or that lie within a configurable
//!    gap (1 minute in the paper) with no non-looped packet to the subnet
//!    in between, are merged into one routing loop.
//!
//! [`analysis`] then derives every statistic the paper reports: TTL-delta
//! distribution (Fig. 2), replicas-per-stream CDF (Fig. 3), inter-replica
//! spacing CDF (Fig. 4), traffic-type breakdowns for all and looped
//! traffic (Figs. 5–6), the destination scatter (Fig. 7), stream and loop
//! duration CDFs (Figs. 8–9), and the loss/escape impact estimates (§VI).
//!
//! For multi-core machines, [`block`] fans the same pipeline out
//! share-nothing: the trace is split into contiguous record ranges, each
//! worker scans its own range in place, and a boundary-reconciliation
//! pass keeps the output byte-identical to serial at every thread count
//! (see DESIGN.md for the soundness argument). The older ring-dispatcher
//! fan-out survives in [`shard`] as the `--engine ring` ablation.
//!
//! For continuous operation, [`monitor`] multiplexes many links through
//! one runtime — a bounded streaming engine per link feeding a unified,
//! per-link-attributed loop-event sink — which is what the `loopmond`
//! fleet daemon drives.
//!
//! The crate is deliberately independent of the simulator: it consumes
//! [`record::TraceRecord`]s, which can come from simulated taps, pcap
//! files, or any other 40-byte-snaplen capture source.
//!
//! ```
//! use loopscope::{Detector, DetectorConfig, TraceRecord};
//! use net_types::{Packet, TcpFlags};
//! use std::net::Ipv4Addr;
//!
//! // One packet sighted five times with TTL falling by 2 — a two-router
//! // loop as seen from a monitored link.
//! let mut p = Packet::tcp_flags(
//!     Ipv4Addr::new(100, 64, 0, 1),
//!     Ipv4Addr::new(203, 0, 113, 9),
//!     4000, 80, TcpFlags::ACK, &b"payload"[..],
//! );
//! p.ip.ttl = 60;
//! p.fill_checksums();
//! let mut records = Vec::new();
//! for k in 0..5u64 {
//!     if k > 0 {
//!         p.ip.decrement_ttl();
//!         p.ip.decrement_ttl();
//!     }
//!     records.push(TraceRecord::from_packet(k * 1_000_000, &p));
//! }
//!
//! let result = Detector::new(DetectorConfig::default()).run(&records);
//! assert_eq!(result.streams.len(), 1);
//! assert_eq!(result.streams[0].ttl_delta(), 2);
//! assert_eq!(result.loops.len(), 1);
//! ```

pub mod analysis;
pub mod block;
pub mod config;
pub mod fxhash;
pub mod impact;
pub mod key;
pub mod merge;
pub mod monitor;
pub mod online;
pub mod pipeline;
pub mod record;
pub mod replica;
pub mod shard;
pub mod stream;
pub mod traffic_class;
pub mod validate;

pub use block::BlockParallelDetector;
pub use config::DetectorConfig;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use key::ReplicaKey;
pub use merge::RoutingLoop;
pub use monitor::{LinkMonitor, LinkSummary, MonitorConfig, MonitorRuntime, MonitorTotals};
pub use online::{OnlineDetector, OnlineEvent};
pub use pipeline::{
    run_pipeline, run_pipeline_with_progress, BlockEngine, Engine, EngineProgress,
    PcapFileSequence, PcapSource, PipelineError, PipelineResult, RecordSource, SerialEngine,
    ShardedEngine, Sink, SliceSource, SourceError, SourceSummary, StreamingEngine,
};
pub use record::{TraceRecord, TransportSummary};
pub use replica::{CandidateScanner, DetectionResult, DetectionStats, Detector, ScanCounters};
pub use shard::{shard_of, shard_of_record, ShardedDetector};
pub use stream::ReplicaStream;
