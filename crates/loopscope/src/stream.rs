//! Replica streams: the multiple instantiations of one looped packet on
//! one link.

use crate::key::ReplicaKey;
use net_types::Ipv4Prefix;

/// One sighting of the looping packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Capture time (ns since trace epoch).
    pub timestamp_ns: u64,
    /// TTL at this sighting.
    pub ttl: u8,
}

/// A set of replicas of a single unique packet (§IV: "each replica stream
/// originates from a single unique packet").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStream {
    /// The invariant header fields shared by all replicas.
    pub key: ReplicaKey,
    /// Sightings in time order (TTL strictly decreasing).
    pub observations: Vec<Observation>,
    /// Indices into the source record vector, parallel to `observations`
    /// (used by validation to mark looped records).
    pub record_indices: Vec<usize>,
}

impl ReplicaStream {
    /// Number of replicas (sightings).
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when the stream holds fewer than two sightings (not actually a
    /// replica stream; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// First sighting time.
    pub fn start_ns(&self) -> u64 {
        self.observations.first().map_or(0, |o| o.timestamp_ns)
    }

    /// Last sighting time.
    pub fn end_ns(&self) -> u64 {
        self.observations.last().map_or(0, |o| o.timestamp_ns)
    }

    /// Stream duration: last minus first sighting (Fig. 8's quantity).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns() - self.start_ns()
    }

    /// TTL of the first sighting.
    pub fn first_ttl(&self) -> u8 {
        self.observations.first().map_or(0, |o| o.ttl)
    }

    /// TTL of the last sighting.
    pub fn last_ttl(&self) -> u8 {
        self.observations.last().map_or(0, |o| o.ttl)
    }

    /// The TTL delta: the most common decrease between successive
    /// sightings — "the number of nodes involved in the routing loop"
    /// (Fig. 2's quantity). Returns 0 for singleton streams.
    pub fn ttl_delta(&self) -> u8 {
        let mut counts = std::collections::BTreeMap::new();
        for w in self.observations.windows(2) {
            let d = w[0].ttl - w[1].ttl;
            *counts.entry(d).or_insert(0u32) += 1;
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(d, _)| d)
            .unwrap_or(0)
    }

    /// Mean inter-replica spacing in nanoseconds (Fig. 4 uses "an average
    /// of all inter-replica spacing times calculated per replica stream").
    /// Zero for singleton streams.
    pub fn mean_spacing_ns(&self) -> u64 {
        if self.observations.len() < 2 {
            return 0;
        }
        self.duration_ns() / (self.observations.len() as u64 - 1)
    }

    /// The destination /24 the stream aggregates under.
    pub fn dst_slash24(&self) -> Ipv4Prefix {
        Ipv4Prefix::slash24_of(self.key.dst)
    }

    /// Whether the packet *could* have escaped the loop: its last sighting
    /// still had more TTL left than one loop traversal burns. A packet seen
    /// last with TTL <= delta necessarily died in the loop.
    pub fn may_have_escaped(&self) -> bool {
        self.last_ttl() > self.ttl_delta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use net_types::{Packet, TcpFlags};
    use std::net::Ipv4Addr;

    fn stream_with(ttls: &[u8], times: &[u64]) -> ReplicaStream {
        assert_eq!(ttls.len(), times.len());
        let p = Packet::tcp_flags(
            Ipv4Addr::new(100, 0, 0, 1),
            Ipv4Addr::new(203, 0, 113, 5),
            1,
            2,
            TcpFlags::ACK,
            &b""[..],
        );
        let rec = TraceRecord::from_packet(0, &p);
        ReplicaStream {
            key: ReplicaKey::of(&rec),
            observations: ttls
                .iter()
                .zip(times)
                .map(|(&ttl, &timestamp_ns)| Observation { timestamp_ns, ttl })
                .collect(),
            record_indices: (0..ttls.len()).collect(),
        }
    }

    #[test]
    fn basic_metrics() {
        let s = stream_with(&[60, 58, 56, 54], &[1000, 2000, 3000, 4100]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.start_ns(), 1000);
        assert_eq!(s.end_ns(), 4100);
        assert_eq!(s.duration_ns(), 3100);
        assert_eq!(s.first_ttl(), 60);
        assert_eq!(s.last_ttl(), 54);
        assert_eq!(s.ttl_delta(), 2);
        assert_eq!(s.mean_spacing_ns(), 3100 / 3);
    }

    #[test]
    fn ttl_delta_majority_wins() {
        // Deltas 2, 2, 4 (a missed sighting): mode is 2.
        let s = stream_with(&[60, 58, 56, 52], &[0, 10, 20, 30]);
        assert_eq!(s.ttl_delta(), 2);
    }

    #[test]
    fn ttl_delta_tie_prefers_smaller() {
        let s = stream_with(&[60, 58, 54], &[0, 10, 20]); // deltas 2, 4
        assert_eq!(s.ttl_delta(), 2);
    }

    #[test]
    fn escape_possibility() {
        // Last TTL 54, delta 2: could still cross the loop -> may escape.
        assert!(stream_with(&[60, 58, 56, 54], &[0, 1, 2, 3]).may_have_escaped());
        // Last TTL 2, delta 2: dies on the next traversal.
        assert!(!stream_with(&[6, 4, 2], &[0, 1, 2]).may_have_escaped());
    }

    #[test]
    fn slash24_aggregation() {
        let s = stream_with(&[10, 8], &[0, 1]);
        assert_eq!(s.dst_slash24(), "203.0.113.0/24".parse().unwrap());
    }

    #[test]
    fn singleton_degenerates_gracefully() {
        let s = stream_with(&[60], &[5]);
        assert_eq!(s.ttl_delta(), 0);
        assert_eq!(s.mean_spacing_ns(), 0);
        assert_eq!(s.duration_ns(), 0);
    }
}
