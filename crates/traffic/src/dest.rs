//! Destination address selection.
//!
//! Figure 7 shows looped replica streams spread across the address space
//! with a concentration in class C (192.0.0.0–223.255.255.255), "either due
//! to this portion of the address space being more highly utilized, or to
//! link-specific traffic dynamics". The pool models both: destinations are
//! drawn from a set of /24s with Zipf popularity, and the pool builder can
//! weight class-C prefixes up.

use net_types::Ipv4Prefix;
use rand::Rng;
use std::net::Ipv4Addr;

/// A weighted pool of destination /24 prefixes.
#[derive(Debug, Clone)]
pub struct DestPool {
    prefixes: Vec<Ipv4Prefix>,
    /// Cumulative weights for binary-search sampling.
    cumulative: Vec<f64>,
}

impl DestPool {
    /// Builds a pool with Zipf(`exponent`) popularity over `prefixes` in
    /// the given order (first = most popular).
    ///
    /// # Panics
    /// Panics on an empty prefix list or a non-positive exponent... rather,
    /// exponent 0 is allowed (uniform).
    pub fn zipf(prefixes: Vec<Ipv4Prefix>, exponent: f64) -> Self {
        assert!(!prefixes.is_empty(), "destination pool must not be empty");
        assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(prefixes.len());
        let mut acc = 0.0;
        for i in 0..prefixes.len() {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        Self {
            prefixes,
            cumulative,
        }
    }

    /// Uniform popularity.
    pub fn uniform(prefixes: Vec<Ipv4Prefix>) -> Self {
        Self::zipf(prefixes, 0.0)
    }

    /// The prefixes in popularity order.
    pub fn prefixes(&self) -> &[Ipv4Prefix] {
        &self.prefixes
    }

    /// Number of prefixes.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Always false (construction forbids empty pools); provided for
    /// clippy-friendliness.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Draws a destination prefix.
    pub fn sample_prefix<R: Rng>(&self, rng: &mut R) -> Ipv4Prefix {
        let total = *self.cumulative.last().unwrap();
        let u = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= u);
        self.prefixes[idx.min(self.prefixes.len() - 1)]
    }

    /// Draws a host address inside a drawn prefix (avoiding .0 and .255 in
    /// /24s, as real hosts do).
    pub fn sample_addr<R: Rng>(&self, rng: &mut R) -> Ipv4Addr {
        let prefix = self.sample_prefix(rng);
        let size = prefix.size();
        if size <= 2 {
            return prefix.network();
        }
        let host = rng.gen_range(1..size - 1);
        prefix.host(host)
    }
}

/// Convenience: a synthetic pool of `n` /24s, `class_c_fraction` of them
/// drawn from class C space (192.x.y.0/24) and the rest spread over class A
/// and B space — matching Figure 7's address spread.
pub fn synthetic_pool(n: usize, class_c_fraction: f64, zipf_exponent: f64) -> DestPool {
    assert!(n > 0);
    assert!((0.0..=1.0).contains(&class_c_fraction));
    let n_c = (n as f64 * class_c_fraction).round() as usize;
    let mut prefixes = Vec::with_capacity(n);
    for i in 0..n {
        // Interleave class-C and other prefixes so popularity rank is not
        // correlated with address class.
        let make_class_c = if class_c_fraction >= 1.0 {
            true
        } else if class_c_fraction <= 0.0 {
            false
        } else {
            (i * n_c) % n < n_c
        };
        let prefix = if make_class_c {
            // 192–223 . x . y . 0/24
            let a = 192 + ((i / 256 / 256) % 32) as u8;
            let b = ((i / 256) % 256) as u8;
            let c = (i % 256) as u8;
            Ipv4Prefix::new(Ipv4Addr::new(a, b, c, 0), 24).unwrap()
        } else {
            // 16–126 . x . y . 0/24 (class A/B space, avoiding 10/8 which
            // the simulator uses for router addresses and 0/127 specials).
            let a = 16 + ((i / 256 / 256) % 96) as u8;
            let a = if a == 10 { 11 } else { a };
            let b = ((i / 256) % 256) as u8;
            let c = (i % 256) as u8;
            Ipv4Prefix::new(Ipv4Addr::new(a, b, c, 0), 24).unwrap()
        };
        prefixes.push(prefix);
    }
    prefixes.dedup();
    DestPool::zipf(prefixes, zipf_exponent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn zipf_prefers_head() {
        let pool = DestPool::zipf(vec![p("1.1.1.0/24"), p("2.2.2.0/24"), p("3.3.3.0/24")], 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let pfx = pool.sample_prefix(&mut rng);
            let idx = pool.prefixes().iter().position(|x| *x == pfx).unwrap();
            counts[idx] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        // Zipf(1): weights 1, 1/2, 1/3 -> head ~ 6/11.
        let head = f64::from(counts[0]) / 30_000.0;
        assert!((0.50..0.60).contains(&head), "head {head}");
    }

    #[test]
    fn uniform_is_flat() {
        let pool = DestPool::uniform(vec![p("1.1.1.0/24"), p("2.2.2.0/24")]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut first = 0u32;
        for _ in 0..10_000 {
            if pool.sample_prefix(&mut rng) == p("1.1.1.0/24") {
                first += 1;
            }
        }
        let frac = f64::from(first) / 10_000.0;
        assert!((0.47..0.53).contains(&frac), "frac {frac}");
    }

    #[test]
    fn sampled_addr_inside_prefix_avoiding_edges() {
        let pool = DestPool::uniform(vec![p("203.0.113.0/24")]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let a = pool.sample_addr(&mut rng);
            assert!(p("203.0.113.0/24").contains(a));
            let last = a.octets()[3];
            assert!(last != 0 && last != 255);
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_pool_rejected() {
        DestPool::uniform(vec![]);
    }

    #[test]
    fn synthetic_pool_class_c_fraction() {
        let pool = synthetic_pool(200, 0.6, 1.0);
        let class_c = pool
            .prefixes()
            .iter()
            .filter(|pfx| (192..=223).contains(&pfx.network().octets()[0]))
            .count();
        let frac = class_c as f64 / pool.len() as f64;
        assert!((0.55..0.65).contains(&frac), "class C fraction {frac}");
    }

    #[test]
    fn synthetic_pool_all_slash24() {
        let pool = synthetic_pool(50, 0.5, 1.0);
        assert!(pool.prefixes().iter().all(|p| p.len() == 24));
        // All distinct.
        let mut set = std::collections::BTreeSet::new();
        for p in pool.prefixes() {
            assert!(set.insert(*p), "duplicate prefix {p}");
        }
    }

    #[test]
    fn synthetic_pool_extremes() {
        assert!(synthetic_pool(10, 1.0, 0.0)
            .prefixes()
            .iter()
            .all(|pfx| pfx.network().octets()[0] >= 192));
        assert!(synthetic_pool(10, 0.0, 0.0)
            .prefixes()
            .iter()
            .all(|pfx| pfx.network().octets()[0] < 192));
    }
}
