//! Initial-TTL modelling.
//!
//! Figure 3's CDF jumps at ~31 and ~63 replicas because packets enter loops
//! with TTLs near 64 and 128 (Linux and Windows 2000 defaults) and a
//! TTL-delta-2 loop burns 2 per traversal. The monitored link sits in the
//! middle of the Internet, so observed TTLs are the OS default minus the
//! hops already travelled.

use rand::Rng;

/// Distribution of initial TTLs and upstream path lengths.
#[derive(Debug, Clone)]
pub struct TtlConfig {
    /// `(initial_ttl, weight)` pairs. Defaults: 64 (Linux/macOS), 128
    /// (Windows), 255 (Solaris, routers, some UDP stacks).
    pub initials: Vec<(u8, f64)>,
    /// Minimum hops already travelled before the monitored link.
    pub upstream_hops_min: u8,
    /// Maximum hops already travelled (inclusive).
    pub upstream_hops_max: u8,
}

impl Default for TtlConfig {
    fn default() -> Self {
        Self {
            initials: vec![(64, 0.55), (128, 0.40), (255, 0.05)],
            upstream_hops_min: 3,
            upstream_hops_max: 18,
        }
    }
}

impl TtlConfig {
    /// Validates weights and hop bounds.
    pub fn validate(&self) -> Result<(), String> {
        if self.initials.is_empty() {
            return Err("initials must not be empty".into());
        }
        if self.initials.iter().any(|(_, w)| *w < 0.0) {
            return Err("negative weight".into());
        }
        let total: f64 = self.initials.iter().map(|(_, w)| w).sum();
        if total <= 0.0 {
            return Err("weights sum to zero".into());
        }
        if self.upstream_hops_min > self.upstream_hops_max {
            return Err("upstream hop bounds inverted".into());
        }
        if let Some((ttl, _)) = self
            .initials
            .iter()
            .find(|(t, _)| *t <= self.upstream_hops_max)
        {
            return Err(format!(
                "initial TTL {ttl} not above max upstream hops {}",
                self.upstream_hops_max
            ));
        }
        Ok(())
    }

    /// Draws the TTL as observed entering the monitored region: a weighted
    /// initial value minus a uniform upstream hop count.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u8 {
        let total: f64 = self.initials.iter().map(|(_, w)| w).sum();
        let mut u = rng.gen_range(0.0..total);
        let mut initial = self.initials.last().unwrap().0;
        for (ttl, w) in &self.initials {
            if u < *w {
                initial = *ttl;
                break;
            }
            u -= *w;
        }
        let hops = rng.gen_range(self.upstream_hops_min..=self.upstream_hops_max);
        initial - hops
    }

    /// The distinct initial values (for assertions in tests/benches).
    pub fn initial_values(&self) -> Vec<u8> {
        self.initials.iter().map(|(t, _)| *t).collect()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_valid() {
        TtlConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = TtlConfig::default();
        c.initials.clear();
        assert!(c.validate().is_err());

        let mut c = TtlConfig::default();
        c.initials = vec![(64, -1.0)];
        assert!(c.validate().is_err());

        let mut c = TtlConfig::default();
        c.upstream_hops_min = 20;
        c.upstream_hops_max = 10;
        assert!(c.validate().is_err());

        let mut c = TtlConfig::default();
        c.initials = vec![(10, 1.0)]; // below max upstream hops
        assert!(c.validate().is_err());
    }

    #[test]
    fn samples_within_expected_bands() {
        let c = TtlConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let ttl = c.sample(&mut rng);
            let band = c.initial_values().iter().any(|&init| {
                ttl <= init - c.upstream_hops_min && ttl >= init - c.upstream_hops_max
            });
            assert!(band, "ttl {ttl} outside all bands");
        }
    }

    #[test]
    fn weights_respected_roughly() {
        let c = TtlConfig::default();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let mut linuxish = 0u32;
        for _ in 0..n {
            let ttl = c.sample(&mut rng);
            if ttl <= 64 {
                linuxish += 1;
            }
        }
        let frac = f64::from(linuxish) / f64::from(n);
        assert!((0.50..0.60).contains(&frac), "frac {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let c = TtlConfig::default();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| c.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }
}
