//! The top-level workload generator: Poisson flow arrivals over a
//! destination pool, expanded to timestamped packets.

use crate::dest::DestPool;
use crate::flow::{flow_packets, reserved_icmp_train, FlowParams};
use crate::mix::{FlowClass, MixConfig};
use crate::ttl::TtlConfig;
use net_types::{Ipv4Prefix, Packet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Engine, NodeId, SimDuration, SimTime};

/// Flow arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Memoryless arrivals at `flow_rate` flows/s — the default.
    Poisson,
    /// Bursty arrivals: exponentially-distributed ON periods during which
    /// flows arrive at `flow_rate × burst_factor`, separated by silent OFF
    /// periods. Backbone traffic is famously bursty at sub-second scales;
    /// the detector must not care (and the robustness test checks it).
    OnOff {
        /// Mean ON-period length in seconds.
        on_mean_s: f64,
        /// Mean OFF-period length in seconds.
        off_mean_s: f64,
        /// Rate multiplier during ON periods.
        burst_factor: f64,
    },
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; generation is fully deterministic per seed.
    pub seed: u64,
    /// Protocol mix.
    pub mix: MixConfig,
    /// TTL model.
    pub ttl: TtlConfig,
    /// Source addresses are drawn from this prefix (attach it to the
    /// ingress node so ICMP errors route back).
    pub src_prefix: Ipv4Prefix,
    /// Mean flow arrivals per second.
    pub flow_rate: f64,
    /// The arrival process shape.
    pub arrivals: ArrivalModel,
    /// Mean intra-flow packet gap.
    pub pkt_gap_mean: SimDuration,
    /// Generation window start.
    pub start: SimTime,
    /// Generation window end (flow *arrivals* stop here; trailing flow
    /// packets may run a little past).
    pub end: SimTime,
    /// When set, one anomalous host sends reserved-type ICMP trains — the
    /// oddity the paper observed on Backbones 1 and 2.
    pub reserved_icmp_host: Option<std::net::Ipv4Addr>,
    /// When set, one constant-bit-rate UDP trunk (voice/RTP-like: fixed
    /// size, fixed ports, varying payload) runs for the whole window. Long
    /// enough trunks wrap the host's 16-bit IP identification counter, so
    /// packets 65 536 apart share every header field *except* the UDP
    /// checksum — the workload that makes §IV-A.1's payload-identity proxy
    /// earn its keep (see the `ablate-key` experiment).
    pub cbr_trunk: Option<CbrConfig>,
}

/// Constant-bit-rate trunk parameters.
#[derive(Debug, Clone, Copy)]
pub struct CbrConfig {
    /// Packets per second.
    pub pps: f64,
    /// UDP payload length in bytes.
    pub payload_len: usize,
    /// Destination port (e.g. 5004 for RTP).
    pub dst_port: u16,
    /// Starting value of the sending host's IP identification counter;
    /// trunks longer than `65536 - start` packets wrap it.
    pub ident_start: u16,
}

impl GeneratorConfig {
    /// A config with paper-calibrated defaults over the given window.
    pub fn new(seed: u64, start: SimTime, end: SimTime, flow_rate: f64) -> Self {
        Self {
            seed,
            mix: MixConfig::default(),
            ttl: TtlConfig::default(),
            src_prefix: "100.64.0.0/12".parse().unwrap(),
            flow_rate,
            arrivals: ArrivalModel::Poisson,
            pkt_gap_mean: SimDuration::from_millis(20),
            start,
            end,
            reserved_icmp_host: None,
            cbr_trunk: None,
        }
    }

    /// Approximate number of packets this config will generate.
    pub fn expected_packets(&self) -> f64 {
        let secs = (self.end - self.start).as_secs_f64();
        self.flow_rate * secs * self.mix.mean_flow_pkts()
    }
}

/// The generator.
pub struct TrafficGenerator {
    cfg: GeneratorConfig,
    pool: DestPool,
    rng: StdRng,
    ident: u16,
}

impl TrafficGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics on invalid mix/TTL configs or a non-positive flow rate.
    pub fn new(cfg: GeneratorConfig, pool: DestPool) -> Self {
        cfg.mix.validate().expect("invalid mix");
        cfg.ttl.validate().expect("invalid ttl config");
        assert!(cfg.flow_rate > 0.0, "flow rate must be positive");
        assert!(cfg.end > cfg.start, "empty generation window");
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            pool,
            rng,
            ident: 0,
        }
    }

    /// The destination pool.
    pub fn pool(&self) -> &DestPool {
        &self.pool
    }

    fn service_port(rng: &mut StdRng, class: FlowClass) -> u16 {
        match class {
            FlowClass::Tcp => match rng.gen_range(0..10) {
                0..=4 => 80,
                5..=6 => 443,
                7 => 25,
                8 => 8080,
                _ => rng.gen_range(1024..49152),
            },
            FlowClass::Udp => match rng.gen_range(0..10) {
                0..=4 => 53,
                5..=6 => 123,
                _ => rng.gen_range(1024..49152),
            },
            _ => 0,
        }
    }

    /// Draws an exponential duration with the given mean (seconds).
    fn exp_s(&mut self, mean_s: f64) -> SimDuration {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        SimDuration((-u.ln() * mean_s * 1e9) as u64)
    }

    /// Generates the full workload, sorted by timestamp.
    pub fn generate(&mut self) -> Vec<(SimTime, Packet)> {
        let mut out: Vec<(SimTime, Packet)> = Vec::new();
        let mut t = self.cfg.start;
        // ON/OFF state for bursty arrivals; Poisson is the degenerate case
        // of a single infinite ON period at rate × 1.
        let (mut on_until, mut rate_factor) = (SimTime(u64::MAX), 1.0);
        if let ArrivalModel::OnOff {
            on_mean_s,
            burst_factor,
            ..
        } = self.cfg.arrivals
        {
            on_until = self.cfg.start + self.exp_s(on_mean_s);
            rate_factor = burst_factor;
        }
        loop {
            // Exponential inter-arrival at the current (possibly boosted)
            // rate.
            let mean_gap_ns = 1e9 / (self.cfg.flow_rate * rate_factor);
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            t += SimDuration((-u.ln() * mean_gap_ns) as u64);
            if let ArrivalModel::OnOff {
                on_mean_s,
                off_mean_s,
                ..
            } = self.cfg.arrivals
            {
                // Skip whole OFF periods the arrival landed beyond.
                while t >= on_until {
                    let off = self.exp_s(off_mean_s);
                    let next_on = on_until + off;
                    if t < next_on {
                        // The arrival fell inside the OFF period: push it
                        // to the start of the next ON period.
                        t = next_on;
                    }
                    on_until = next_on + self.exp_s(on_mean_s);
                }
            }
            if t >= self.cfg.end {
                break;
            }
            let class = self.cfg.mix.classify(self.rng.gen_range(0.0..1.0));
            let n_pkts = match class {
                FlowClass::Tcp => geometric(&mut self.rng, self.cfg.mix.mean_tcp_flow_pkts),
                FlowClass::Udp => geometric(&mut self.rng, self.cfg.mix.mean_udp_burst),
                FlowClass::IcmpEcho => geometric(&mut self.rng, self.cfg.mix.mean_icmp_train),
                _ => 1,
            };
            let src = {
                let host = self.rng.gen_range(1..self.cfg.src_prefix.size() - 1);
                self.cfg.src_prefix.host(host)
            };
            let dst = match class {
                FlowClass::Mcast => {
                    // Multicast groups live in 224/4.
                    std::net::Ipv4Addr::new(
                        224 + self.rng.gen_range(0..4u8),
                        self.rng.gen_range(0..=255),
                        self.rng.gen_range(0..=255),
                        self.rng.gen_range(1..=254),
                    )
                }
                _ => self.pool.sample_addr(&mut self.rng),
            };
            let params = FlowParams {
                class,
                src,
                dst,
                src_port: self.rng.gen_range(1024..65535),
                dst_port: Self::service_port(&mut self.rng, class),
                ttl: self.cfg.ttl.sample(&mut self.rng),
                n_pkts,
                start: t,
                gap_mean: self.cfg.pkt_gap_mean,
            };
            out.extend(flow_packets(
                &params,
                &self.cfg.mix,
                &mut self.rng,
                &mut self.ident,
            ));
        }
        // The anomalous reserved-ICMP host, when configured, pings away at
        // one train per second for the whole window.
        if let Some(host) = self.cfg.reserved_icmp_host {
            let mut rt = self.cfg.start;
            while rt < self.cfg.end {
                let dst = self.pool.sample_addr(&mut self.rng);
                out.extend(reserved_icmp_train(
                    host,
                    dst,
                    self.cfg.ttl.sample(&mut self.rng),
                    4,
                    rt,
                    SimDuration::from_millis(200),
                    &mut self.rng,
                    &mut self.ident,
                ));
                rt += SimDuration::from_secs(1);
            }
        }
        // The CBR trunk, when configured: fixed-size UDP at a steady rate,
        // payload content cycling through 251 variants (coprime with the
        // 65 536 ident period, so an ident wrap never lands on identical
        // content — the UDP checksum therefore always distinguishes the
        // wrapped pair).
        if let Some(cbr) = self.cfg.cbr_trunk {
            assert!(cbr.pps > 0.0 && cbr.payload_len > 0);
            let variants: Vec<bytes::Bytes> = (0..251u8)
                .map(|k| {
                    let mut v = vec![0u8; cbr.payload_len];
                    v[0] = k;
                    if cbr.payload_len > 1 {
                        v[cbr.payload_len - 1] = k ^ 0x5a;
                    }
                    bytes::Bytes::from(v)
                })
                .collect();
            let trunk_src = self.cfg.src_prefix.host(0xCB);
            let trunk_dst = {
                // Pin the trunk to the most popular prefix so it shares
                // fate with ordinary traffic.
                self.pool.prefixes()[0].host(77)
            };
            let ttl = self.cfg.ttl.sample(&mut self.rng);
            let gap_ns = (1e9 / cbr.pps) as u64;
            let mut t = self.cfg.start.as_nanos();
            let mut ident = cbr.ident_start;
            let mut k = 0usize;
            while t < self.cfg.end.as_nanos() {
                let mut p = net_types::Packet::udp(
                    trunk_src,
                    trunk_dst,
                    net_types::UdpHeader::new(5004, cbr.dst_port),
                    variants[k % 251].clone(),
                );
                p.ip.ident = ident;
                p.ip.ttl = ttl;
                p.fill_checksums();
                out.push((SimTime(t), p));
                ident = ident.wrapping_add(1);
                k += 1;
                t += gap_ns;
            }
        }
        out.sort_by_key(|(t, p)| (*t, p.ip.ident));
        out
    }

    /// Generates and injects everything at `node`.
    pub fn inject_into(&mut self, engine: &mut Engine, node: NodeId) -> usize {
        let packets = self.generate();
        let n = packets.len();
        for (t, p) in packets {
            engine.schedule_inject(t, node, p);
        }
        n
    }
}

/// Geometric sample with the given mean (>= 1).
fn geometric<R: Rng>(rng: &mut R, mean: f64) -> u32 {
    debug_assert!(mean >= 1.0);
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (1.0 + (u.ln() / (1.0 - p).ln())).floor().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dest::synthetic_pool;
    use net_types::{IpProtocol, TcpFlags, Transport};

    fn small_cfg(seed: u64) -> GeneratorConfig {
        GeneratorConfig::new(seed, SimTime::ZERO, SimTime::from_secs(10), 20.0)
    }

    fn gen(seed: u64) -> Vec<(SimTime, Packet)> {
        let pool = synthetic_pool(50, 0.5, 1.0);
        TrafficGenerator::new(small_cfg(seed), pool).generate()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(11);
        let b = gen(11);
        assert_eq!(a.len(), b.len());
        for ((t1, p1), (t2, p2)) in a.iter().zip(&b) {
            assert_eq!(t1, t2);
            assert_eq!(p1, p2);
        }
        assert_ne!(gen(11).len(), 0);
        let c = gen(12);
        assert!(a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x != y));
    }

    #[test]
    fn sorted_by_time() {
        let pkts = gen(3);
        assert!(pkts.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn flow_arrivals_within_window() {
        let pkts = gen(4);
        assert!(!pkts.is_empty());
        assert!(pkts[0].0 >= SimTime::ZERO);
        // Trailing flow packets may spill slightly past `end`; bound the
        // spill by a generous margin (flows are ~100 pkts × ~20 ms).
        let last = pkts.last().unwrap().0;
        assert!(last < SimTime::from_secs(30), "last packet at {last}");
    }

    #[test]
    fn mix_roughly_matches_figure5() {
        let pool = synthetic_pool(50, 0.5, 1.0);
        let cfg = GeneratorConfig::new(5, SimTime::ZERO, SimTime::from_secs(60), 60.0);
        let pkts = TrafficGenerator::new(cfg, pool).generate();
        let total = pkts.len() as f64;
        assert!(total > 10_000.0, "need a meaningful sample, got {total}");
        let count =
            |f: &dyn Fn(&Packet) -> bool| pkts.iter().filter(|(_, p)| f(p)).count() as f64 / total;
        let tcp = count(&|p| p.protocol() == IpProtocol::Tcp);
        let udp = count(&|p| p.protocol() == IpProtocol::Udp);
        let syn = count(
            &|p| matches!(&p.transport, Transport::Tcp(h) if h.flags.contains(TcpFlags::SYN)),
        );
        let fin = count(
            &|p| matches!(&p.transport, Transport::Tcp(h) if h.flags.contains(TcpFlags::FIN)),
        );
        let ack = count(
            &|p| matches!(&p.transport, Transport::Tcp(h) if h.flags.contains(TcpFlags::ACK)),
        );
        assert!(tcp > 0.80, "tcp {tcp}");
        assert!((0.02..0.18).contains(&udp), "udp {udp}");
        assert!(syn < 0.015, "syn {syn}");
        assert!(fin < 0.015, "fin {fin}");
        assert!(ack > 0.75, "ack {ack}");
    }

    #[test]
    fn ttls_within_bands() {
        let pkts = gen(6);
        for (_, p) in &pkts {
            assert!(
                p.ip.ttl >= 64 - 18 && p.ip.ttl <= 255 - 3,
                "ttl {}",
                p.ip.ttl
            );
        }
    }

    #[test]
    fn srcs_within_prefix_dsts_in_pool_or_mcast() {
        let pool = synthetic_pool(50, 0.5, 1.0);
        let cfg = small_cfg(7);
        let src_prefix = cfg.src_prefix;
        let pkts = TrafficGenerator::new(cfg, pool.clone()).generate();
        for (_, p) in &pkts {
            assert!(src_prefix.contains(p.ip.src) || p.ip.src.octets()[0] == 100);
            let dst_ok = pool.prefixes().iter().any(|pfx| pfx.contains(p.ip.dst))
                || p.ip.dst.octets()[0] >= 224;
            assert!(dst_ok, "stray destination {}", p.ip.dst);
        }
    }

    #[test]
    fn reserved_icmp_host_emits_anomalous_trains() {
        let pool = synthetic_pool(50, 0.5, 1.0);
        let mut cfg = small_cfg(8);
        let host = std::net::Ipv4Addr::new(100, 66, 6, 6);
        cfg.reserved_icmp_host = Some(host);
        let pkts = TrafficGenerator::new(cfg, pool).generate();
        let reserved: Vec<_> = pkts
            .iter()
            .filter(
                |(_, p)| matches!(&p.transport, Transport::Icmp(h) if h.icmp_type.is_reserved()),
            )
            .collect();
        assert!(!reserved.is_empty());
        assert!(reserved.iter().all(|(_, p)| p.ip.src == host));
    }

    #[test]
    fn expected_packets_estimate_close() {
        let pool = synthetic_pool(50, 0.5, 1.0);
        let cfg = GeneratorConfig::new(9, SimTime::ZERO, SimTime::from_secs(120), 40.0);
        let expect = cfg.expected_packets();
        let got = TrafficGenerator::new(cfg, pool).generate().len() as f64;
        assert!(
            (got - expect).abs() / expect < 0.25,
            "expected ~{expect}, got {got}"
        );
    }

    #[test]
    fn geometric_mean() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| u64::from(geometric(&mut rng, 50.0))).sum();
        let mean = total as f64 / n as f64;
        assert!((45.0..55.0).contains(&mean), "mean {mean}");
        // Mean 1 collapses to constant 1.
        assert!((0..100).all(|_| geometric(&mut rng, 1.0) == 1));
    }

    #[test]
    #[should_panic(expected = "flow rate")]
    fn zero_rate_rejected() {
        let pool = synthetic_pool(5, 0.5, 1.0);
        let mut cfg = small_cfg(1);
        cfg.flow_rate = 0.0;
        TrafficGenerator::new(cfg, pool);
    }

    #[test]
    fn cbr_trunk_wraps_ident_and_checksums_distinguish() {
        let pool = synthetic_pool(10, 0.5, 1.0);
        let mut cfg = GeneratorConfig::new(21, SimTime::ZERO, SimTime::from_secs(30), 1.0);
        // 3 000 pps for 30 s = 90 000 packets: the 16-bit ident counter
        // wraps once, so ~24 000 ident values are reused with different
        // payload content.
        cfg.cbr_trunk = Some(crate::generator::CbrConfig {
            pps: 3_000.0,
            payload_len: 160,
            dst_port: 5004,
            ident_start: 0,
        });
        let pkts = TrafficGenerator::new(cfg, pool).generate();
        let trunk: Vec<&(SimTime, Packet)> = pkts
            .iter()
            .filter(|(_, p)| p.ports() == Some((5004, 5004)))
            .collect();
        // Integer gap rounding gives a packet or two of slack.
        assert!((90_000..90_110).contains(&trunk.len()), "{}", trunk.len());
        // Constant size, fixed endpoints.
        assert!(trunk
            .windows(2)
            .all(|w| w[0].1.wire_len() == w[1].1.wire_len()));
        // Ident wrapped: the pair 65_536 packets apart would share idents;
        // here the wrap happens within the trace, so some ident value
        // appears twice.
        let mut seen = std::collections::HashMap::new();
        let mut wrapped_pairs = 0;
        for (_, p) in &trunk {
            if let Some(prev) = seen.insert(p.ip.ident, p.transport_checksum()) {
                wrapped_pairs += 1;
                // The UDP checksum must distinguish the wrapped pair (251
                // is coprime with 65 536).
                assert_ne!(prev, p.transport_checksum(), "payload proxy failed");
            }
        }
        assert!(
            wrapped_pairs > 100,
            "expected many wraps, got {wrapped_pairs}"
        );
    }

    #[test]
    fn onoff_arrivals_are_bursty_but_same_mean_order() {
        let pool = synthetic_pool(20, 0.5, 1.0);
        // Poisson reference.
        let mut pois = GeneratorConfig::new(31, SimTime::ZERO, SimTime::from_secs(60), 8.0);
        pois.mix.mean_tcp_flow_pkts = 5.0; // short flows: count ≈ arrivals
        pois.mix.mean_udp_burst = 2.0;
        let n_pois = TrafficGenerator::new(pois, pool.clone()).generate().len();
        // ON/OFF with 50% duty cycle and 2x boost: same average rate.
        let mut burst = GeneratorConfig::new(31, SimTime::ZERO, SimTime::from_secs(60), 8.0);
        burst.mix.mean_tcp_flow_pkts = 5.0;
        burst.mix.mean_udp_burst = 2.0;
        burst.arrivals = crate::generator::ArrivalModel::OnOff {
            on_mean_s: 1.0,
            off_mean_s: 1.0,
            burst_factor: 2.0,
        };
        let pkts = TrafficGenerator::new(burst, pool).generate();
        let n_burst = pkts.len();
        // Same order of magnitude (within 2x either way).
        assert!(
            n_burst * 2 >= n_pois && n_burst <= n_pois * 2,
            "poisson {n_pois} vs on-off {n_burst}"
        );
        // Burstiness: the coefficient of variation of per-second arrival
        // counts is higher than Poisson's.
        let count_cv = |packets: &[(SimTime, Packet)]| {
            let mut per_sec = vec![0f64; 61];
            for (t, _) in packets {
                per_sec[(t.as_nanos() / 1_000_000_000) as usize] += 1.0;
            }
            let mean = per_sec.iter().sum::<f64>() / per_sec.len() as f64;
            let var =
                per_sec.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / per_sec.len() as f64;
            var.sqrt() / mean.max(1e-9)
        };
        let mut pois2 = GeneratorConfig::new(31, SimTime::ZERO, SimTime::from_secs(60), 8.0);
        pois2.mix.mean_tcp_flow_pkts = 5.0;
        pois2.mix.mean_udp_burst = 2.0;
        let pkts_pois = TrafficGenerator::new(pois2, synthetic_pool(20, 0.5, 1.0)).generate();
        assert!(
            count_cv(&pkts) > count_cv(&pkts_pois),
            "on-off must be burstier: {} vs {}",
            count_cv(&pkts),
            count_cv(&pkts_pois)
        );
    }

    #[test]
    fn onoff_deterministic() {
        let make = || {
            let pool = synthetic_pool(10, 0.5, 1.0);
            let mut cfg = GeneratorConfig::new(9, SimTime::ZERO, SimTime::from_secs(10), 5.0);
            cfg.arrivals = crate::generator::ArrivalModel::OnOff {
                on_mean_s: 0.5,
                off_mean_s: 0.5,
                burst_factor: 3.0,
            };
            TrafficGenerator::new(cfg, pool).generate()
        };
        let a = make();
        let b = make();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }

    #[test]
    fn cbr_trunk_off_by_default() {
        let pool = synthetic_pool(10, 0.5, 1.0);
        let cfg = GeneratorConfig::new(22, SimTime::ZERO, SimTime::from_secs(5), 1.0);
        let pkts = TrafficGenerator::new(cfg, pool).generate();
        assert!(pkts.iter().all(|(_, p)| p.ports() != Some((5004, 5004))));
    }

    #[test]
    fn inject_into_engine_runs() {
        use simnet::{Route, SimConfig, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        let ingress = b.node("in", std::net::Ipv4Addr::new(10, 250, 0, 1));
        let egress = b.node("out", std::net::Ipv4Addr::new(10, 250, 0, 2));
        let l = b.link(ingress, egress, 622_000_000, SimDuration::from_millis(1));
        let topo = b.build();
        let mut e = Engine::new(topo, SimConfig::default());
        // Default route: everything goes over the monitored link and is
        // delivered at the far end.
        e.install_route(ingress, Ipv4Prefix::default_route(), Route::Link(l));
        e.install_route(egress, Ipv4Prefix::default_route(), Route::Local);
        let pool = synthetic_pool(20, 0.5, 1.0);
        let mut gen = TrafficGenerator::new(small_cfg(2), pool);
        let n = gen.inject_into(&mut e, ingress);
        e.add_tap(l);
        let report = e.run();
        assert_eq!(report.injected as usize, n);
        assert_eq!(report.delivered as usize, n);
        assert!(report.is_conserved());
        assert_eq!(e.taps()[0].records.len(), n);
    }
}
