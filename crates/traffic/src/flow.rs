//! Flow-level packet sequence construction.
//!
//! A backbone monitor sees each flow one-directionally, so a "flow" here is
//! a one-way packet train: SYN → data → FIN/RST for TCP, a datagram run for
//! UDP, an echo train for ICMP, single reports for IGMP/other.

use crate::mix::{FlowClass, MixConfig};
use net_types::{IcmpHeader, IcmpType, IpProtocol, Packet, TcpFlags, TcpHeader, UdpHeader};
use rand::Rng;
use simnet::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Shared all-zero payload backing store; payload *content* never matters
/// (traces are 40-byte snaplen), only lengths and the checksums derived
/// from them.
static ZEROS: [u8; 1460] = [0; 1460];

fn payload(n: usize) -> bytes::Bytes {
    bytes::Bytes::from_static(&ZEROS[..n])
}

/// Parameters of one flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowParams {
    /// Protocol class.
    pub class: FlowClass,
    /// Source host.
    pub src: Ipv4Addr,
    /// Destination host.
    pub dst: Ipv4Addr,
    /// Ephemeral source port (TCP/UDP).
    pub src_port: u16,
    /// Service destination port (TCP/UDP).
    pub dst_port: u16,
    /// TTL as observed at the monitored region's ingress.
    pub ttl: u8,
    /// Number of packets in the train (>= 1; TCP adds SYN/FIN around data).
    pub n_pkts: u32,
    /// First packet time.
    pub start: SimTime,
    /// Mean gap between packets (exponential).
    pub gap_mean: SimDuration,
}

/// Draws an exponential inter-packet gap with the given mean.
fn exp_gap<R: Rng>(rng: &mut R, mean: SimDuration) -> SimDuration {
    if mean == SimDuration::ZERO {
        return SimDuration::ZERO;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    SimDuration((-u.ln() * mean.as_nanos() as f64) as u64)
}

/// Draws a common packet payload size (for TCP data segments).
fn data_len<R: Rng>(rng: &mut R) -> usize {
    // Classic trimodal Internet packet-size mix: 40 (pure ack), 576, 1500.
    match rng.gen_range(0..10) {
        0..=4 => 0,   // pure ACK, 40-byte packet
        5..=6 => 536, // 576-byte packet
        _ => 1460,    // full MSS, 1500-byte packet
    }
}

/// Expands a flow into its timestamped packets, advancing the shared IP
/// identification counter per packet (hosts increment the ident per sent
/// datagram, which is what lets the detector tell replicas from fresh
/// same-flow packets — §IV-A.1).
pub fn flow_packets<R: Rng>(
    p: &FlowParams,
    mix: &MixConfig,
    rng: &mut R,
    ident: &mut u16,
) -> Vec<(SimTime, Packet)> {
    let mut out = Vec::new();
    let mut t = p.start;
    let mut next_ident = || {
        let i = *ident;
        *ident = ident.wrapping_add(1);
        i
    };
    let stamp = |pkt: &mut Packet, ident: u16, ttl: u8| {
        pkt.ip.ident = ident;
        pkt.ip.ttl = ttl;
        pkt.fill_checksums();
    };
    match p.class {
        FlowClass::Tcp => {
            let mut seq: u32 = rng.gen();
            // SYN
            let mut tcp = TcpHeader::new(p.src_port, p.dst_port, TcpFlags::SYN);
            tcp.seq = seq;
            tcp.window = 65535;
            seq = seq.wrapping_add(1);
            let mut pkt = Packet::tcp(p.src, p.dst, tcp, payload(0));
            stamp(&mut pkt, next_ident(), p.ttl);
            out.push((t, pkt));
            // Data
            for _ in 0..p.n_pkts {
                t += exp_gap(rng, p.gap_mean);
                let len = data_len(rng);
                let mut flags = TcpFlags::ACK;
                if len > 0 && rng.gen_bool(mix.psh_prob) {
                    flags |= TcpFlags::PSH;
                }
                if rng.gen_bool(mix.urg_prob) {
                    flags |= TcpFlags::URG;
                }
                let mut tcp = TcpHeader::new(p.src_port, p.dst_port, flags);
                tcp.seq = seq;
                tcp.ack = 1;
                tcp.window = 65535;
                seq = seq.wrapping_add(len as u32);
                let mut pkt = Packet::tcp(p.src, p.dst, tcp, payload(len));
                stamp(&mut pkt, next_ident(), p.ttl);
                out.push((t, pkt));
            }
            // Teardown: FIN-ACK normally, RST on aborts.
            t += exp_gap(rng, p.gap_mean);
            let flags = if rng.gen_bool(mix.rst_prob) {
                TcpFlags::RST
            } else {
                TcpFlags::FIN | TcpFlags::ACK
            };
            let mut tcp = TcpHeader::new(p.src_port, p.dst_port, flags);
            tcp.seq = seq;
            tcp.ack = 1;
            let mut pkt = Packet::tcp(p.src, p.dst, tcp, payload(0));
            stamp(&mut pkt, next_ident(), p.ttl);
            out.push((t, pkt));
        }
        FlowClass::Udp => {
            for _ in 0..p.n_pkts.max(1) {
                let len = match rng.gen_range(0..10) {
                    0..=6 => rng.gen_range(20..200),
                    _ => rng.gen_range(200..1200),
                };
                let mut pkt = Packet::udp(
                    p.src,
                    p.dst,
                    UdpHeader::new(p.src_port, p.dst_port),
                    payload(len),
                );
                stamp(&mut pkt, next_ident(), p.ttl);
                out.push((t, pkt));
                t += exp_gap(rng, p.gap_mean);
            }
        }
        FlowClass::IcmpEcho => {
            let echo_ident: u16 = rng.gen();
            for seq in 0..p.n_pkts.max(1) as u16 {
                let mut pkt = Packet::icmp(
                    p.src,
                    p.dst,
                    IcmpHeader::echo(true, echo_ident, seq),
                    payload(56),
                );
                stamp(&mut pkt, next_ident(), p.ttl);
                out.push((t, pkt));
                t += exp_gap(rng, p.gap_mean);
            }
        }
        FlowClass::Mcast => {
            // An IGMPv2 membership report (8 opaque bytes).
            let mut pkt = Packet::opaque(
                p.src,
                p.dst,
                IpProtocol::Igmp,
                vec![0x16, 0x00, 0x00, 0x00, 224, 1, 2, 3],
            );
            stamp(&mut pkt, next_ident(), p.ttl);
            out.push((t, pkt));
        }
        FlowClass::Other => {
            // A GRE-ish packet: protocol 47, small opaque body.
            let mut pkt = Packet::opaque(p.src, p.dst, IpProtocol::Other(47), vec![0u8; 16]);
            stamp(&mut pkt, next_ident(), p.ttl);
            out.push((t, pkt));
        }
    }
    out
}

/// A packet train from the paper's anomalous host: ICMP messages with
/// reserved type values ("one host that generates ICMP packets … with
/// multiple reserved type fields. Although this is unusual behavior, we are
/// confident that the corresponding replicas are due to loops").
#[allow(clippy::too_many_arguments)] // a flat parameter list reads best here
pub fn reserved_icmp_train<R: Rng>(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ttl: u8,
    n: u32,
    start: SimTime,
    gap_mean: SimDuration,
    rng: &mut R,
    ident: &mut u16,
) -> Vec<(SimTime, Packet)> {
    let reserved_types: [u8; 4] = [1, 2, 7, 44];
    let mut out = Vec::new();
    let mut t = start;
    for k in 0..n {
        let ty = reserved_types[k as usize % reserved_types.len()];
        let mut hdr = IcmpHeader::new(IcmpType::from_u8(ty), 0);
        hdr.rest = rng.gen();
        let mut pkt = Packet::icmp(src, dst, hdr, payload(32));
        pkt.ip.ident = *ident;
        *ident = ident.wrapping_add(1);
        pkt.ip.ttl = ttl;
        pkt.fill_checksums();
        out.push((t, pkt));
        t += exp_gap(rng, gap_mean);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::Transport;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(class: FlowClass, n: u32) -> FlowParams {
        FlowParams {
            class,
            src: Ipv4Addr::new(100, 1, 2, 3),
            dst: Ipv4Addr::new(203, 0, 113, 7),
            src_port: 40000,
            dst_port: 80,
            ttl: 60,
            n_pkts: n,
            start: SimTime::from_secs(1),
            gap_mean: SimDuration::from_millis(5),
        }
    }

    #[test]
    fn tcp_flow_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ident = 100;
        let pkts = flow_packets(
            &params(FlowClass::Tcp, 10),
            &MixConfig::default(),
            &mut rng,
            &mut ident,
        );
        assert_eq!(pkts.len(), 12); // SYN + 10 data + FIN/RST
        let first = &pkts[0].1;
        let last = &pkts[11].1;
        match (&first.transport, &last.transport) {
            (Transport::Tcp(syn), Transport::Tcp(fin)) => {
                assert!(syn.flags.contains(TcpFlags::SYN));
                assert!(fin.flags.contains(TcpFlags::FIN) || fin.flags.contains(TcpFlags::RST));
            }
            _ => panic!("not tcp"),
        }
        // Idents increment monotonically; timestamps non-decreasing.
        for w in pkts.windows(2) {
            assert_eq!(
                w[1].1.ip.ident,
                w[0].1.ip.ident.wrapping_add(1),
                "per-packet ident increment"
            );
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(ident, 112);
        // All checksums valid.
        for (_, p) in &pkts {
            assert!(p.ip.verify_checksum());
        }
    }

    #[test]
    fn udp_flow_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ident = 0;
        let pkts = flow_packets(
            &params(FlowClass::Udp, 5),
            &MixConfig::default(),
            &mut rng,
            &mut ident,
        );
        assert_eq!(pkts.len(), 5);
        assert!(pkts
            .iter()
            .all(|(_, p)| matches!(p.transport, Transport::Udp(_))));
    }

    #[test]
    fn icmp_echo_train_shares_echo_ident() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ident = 0;
        let pkts = flow_packets(
            &params(FlowClass::IcmpEcho, 4),
            &MixConfig::default(),
            &mut rng,
            &mut ident,
        );
        assert_eq!(pkts.len(), 4);
        let ids: Vec<u16> = pkts
            .iter()
            .map(|(_, p)| match &p.transport {
                Transport::Icmp(h) => h.ident(),
                _ => panic!("not icmp"),
            })
            .collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        let seqs: Vec<u16> = pkts
            .iter()
            .map(|(_, p)| match &p.transport {
                Transport::Icmp(h) => h.seq(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mcast_and_other_single_packets() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ident = 0;
        let m = flow_packets(
            &params(FlowClass::Mcast, 9),
            &MixConfig::default(),
            &mut rng,
            &mut ident,
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1.protocol(), IpProtocol::Igmp);
        let o = flow_packets(
            &params(FlowClass::Other, 9),
            &MixConfig::default(),
            &mut rng,
            &mut ident,
        );
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].1.protocol(), IpProtocol::Other(47));
    }

    #[test]
    fn ttl_applied_to_every_packet() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ident = 0;
        for class in [FlowClass::Tcp, FlowClass::Udp, FlowClass::IcmpEcho] {
            let pkts = flow_packets(
                &params(class, 3),
                &MixConfig::default(),
                &mut rng,
                &mut ident,
            );
            assert!(pkts.iter().all(|(_, p)| p.ip.ttl == 60));
        }
    }

    #[test]
    fn reserved_icmp_train_uses_reserved_types() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ident = 0;
        let pkts = reserved_icmp_train(
            Ipv4Addr::new(100, 9, 9, 9),
            Ipv4Addr::new(203, 0, 113, 20),
            55,
            8,
            SimTime::ZERO,
            SimDuration::from_millis(1),
            &mut rng,
            &mut ident,
        );
        assert_eq!(pkts.len(), 8);
        for (_, p) in &pkts {
            match &p.transport {
                Transport::Icmp(h) => assert!(h.icmp_type.is_reserved()),
                _ => panic!("not icmp"),
            }
        }
    }

    #[test]
    fn exp_gap_zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(exp_gap(&mut rng, SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn exp_gap_mean_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(8);
        let mean = SimDuration::from_millis(10);
        let n = 5000;
        let total: u64 = (0..n).map(|_| exp_gap(&mut rng, mean).as_nanos()).sum();
        let avg = total as f64 / n as f64;
        let expect = mean.as_nanos() as f64;
        assert!((avg - expect).abs() / expect < 0.1, "avg {avg}");
    }
}
