#![warn(missing_docs)]
//! Calibrated backbone workload generation.
//!
//! The paper's figures depend on properties of the *offered traffic*:
//! protocol mix (Figure 5: >80% TCP, 5–15% UDP, <1% SYN/FIN, a little ICMP
//! and multicast), initial TTL values (64 for Linux, 128 for Windows — the
//! cause of the CDF steps in Figures 3, 4, and 8), destination popularity
//! (Figure 7's class-C concentration), and arrival dynamics. This crate
//! generates flow-structured traffic with those properties as explicit,
//! documented parameters:
//!
//! * [`mix::MixConfig`] — protocol and TCP-flag mix, default calibrated to
//!   Figure 5.
//! * [`ttl::TtlConfig`] — initial-TTL distribution minus upstream hop
//!   counts (the monitored link is in the middle of the Internet, so TTLs
//!   arrive already decremented).
//! * [`dest::DestPool`] — Zipf-popular destination prefixes.
//! * [`flow`] — flow-level packet sequences (one-directional, as seen on a
//!   unidirectional backbone link): SYN, data, FIN for TCP; datagram runs
//!   for UDP; echo trains for ICMP.
//! * [`generator::TrafficGenerator`] — Poisson flow arrivals, deterministic
//!   per seed, streamed in timestamp order.

//! ```
//! use traffic::dest::synthetic_pool;
//! use traffic::{GeneratorConfig, TrafficGenerator};
//! use simnet::SimTime;
//!
//! let pool = synthetic_pool(32, 0.5, 1.0);
//! let cfg = GeneratorConfig::new(7, SimTime::ZERO, SimTime::from_secs(5), 10.0);
//! let packets = TrafficGenerator::new(cfg, pool).generate();
//! assert!(!packets.is_empty());
//! // Sorted by time, checksums valid.
//! assert!(packets.windows(2).all(|w| w[0].0 <= w[1].0));
//! assert!(packets.iter().all(|(_, p)| p.ip.verify_checksum()));
//! ```

pub mod dest;
pub mod flow;
pub mod generator;
pub mod mix;
pub mod ttl;

pub use dest::DestPool;
pub use generator::{ArrivalModel, CbrConfig, GeneratorConfig, TrafficGenerator};
pub use mix::MixConfig;
pub use ttl::TtlConfig;
