//! Protocol and flag mix configuration.

/// Fractions of *flows* by protocol class. TCP flows are long (many
/// packets), so packet-level fractions skew further towards TCP; the
/// defaults are chosen so the resulting packet mix matches Figure 5.
#[derive(Debug, Clone, Copy)]
pub struct MixConfig {
    /// TCP flow fraction.
    pub tcp: f64,
    /// UDP flow fraction.
    pub udp: f64,
    /// ICMP echo-train fraction.
    pub icmp: f64,
    /// Multicast/IGMP fraction (the paper's MCAST category).
    pub mcast: f64,
    /// Other-protocol fraction (GRE, OSPF, …: the OTHER category).
    pub other: f64,
    /// Mean TCP flow length in packets (geometric). Figure 5 shows SYN and
    /// FIN each below 1% of *all* packets, which pins the mean flow length
    /// near 10²: with TCP at ~85% of packets, SYN ≈ 0.85/mean.
    pub mean_tcp_flow_pkts: f64,
    /// Mean UDP burst length in datagrams.
    pub mean_udp_burst: f64,
    /// Mean ICMP echo-train length.
    pub mean_icmp_train: f64,
    /// Probability a TCP data packet carries PSH.
    pub psh_prob: f64,
    /// Probability a flow is aborted with RST instead of FIN.
    pub rst_prob: f64,
    /// Probability a TCP data packet carries URG (vanishingly rare).
    pub urg_prob: f64,
}

impl Default for MixConfig {
    fn default() -> Self {
        Self {
            tcp: 0.62,
            udp: 0.27,
            icmp: 0.06,
            mcast: 0.02,
            other: 0.03,
            mean_tcp_flow_pkts: 90.0,
            mean_udp_burst: 20.0,
            mean_icmp_train: 4.0,
            psh_prob: 0.25,
            rst_prob: 0.02,
            urg_prob: 0.001,
        }
    }
}

impl MixConfig {
    /// Checks that the flow fractions sum to ~1 and all parameters are in
    /// range.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.tcp + self.udp + self.icmp + self.mcast + self.other;
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("flow fractions sum to {sum}, expected 1.0"));
        }
        for (name, v) in [
            ("tcp", self.tcp),
            ("udp", self.udp),
            ("icmp", self.icmp),
            ("mcast", self.mcast),
            ("other", self.other),
            ("psh_prob", self.psh_prob),
            ("rst_prob", self.rst_prob),
            ("urg_prob", self.urg_prob),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} out of [0, 1]"));
            }
        }
        for (name, v) in [
            ("mean_tcp_flow_pkts", self.mean_tcp_flow_pkts),
            ("mean_udp_burst", self.mean_udp_burst),
            ("mean_icmp_train", self.mean_icmp_train),
        ] {
            if v < 1.0 {
                return Err(format!("{name} = {v} must be >= 1"));
            }
        }
        Ok(())
    }

    /// Expected packets per flow across protocol classes.
    pub fn mean_flow_pkts(&self) -> f64 {
        // TCP flows carry SYN + data + FIN; the +2 is absorbed into the
        // geometric mean for estimation purposes.
        self.tcp * self.mean_tcp_flow_pkts
            + self.udp * self.mean_udp_burst
            + self.icmp * self.mean_icmp_train
            + self.mcast * 1.0
            + self.other * 1.0
    }
}

/// Protocol class of one flow, drawn from the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// A TCP connection (one direction).
    Tcp,
    /// A UDP datagram burst.
    Udp,
    /// An ICMP echo train (ping).
    IcmpEcho,
    /// An IGMP report (multicast).
    Mcast,
    /// A single packet of an uncommon protocol.
    Other,
}

impl MixConfig {
    /// Maps a uniform sample in `[0, 1)` to a flow class.
    pub fn classify(&self, u: f64) -> FlowClass {
        let mut acc = self.tcp;
        if u < acc {
            return FlowClass::Tcp;
        }
        acc += self.udp;
        if u < acc {
            return FlowClass::Udp;
        }
        acc += self.icmp;
        if u < acc {
            return FlowClass::IcmpEcho;
        }
        acc += self.mcast;
        if u < acc {
            return FlowClass::Mcast;
        }
        FlowClass::Other
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_valid() {
        MixConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_sum_rejected() {
        let mut m = MixConfig::default();
        m.tcp = 0.9;
        assert!(m.validate().is_err());
    }

    #[test]
    fn out_of_range_prob_rejected() {
        let mut m = MixConfig::default();
        m.psh_prob = 1.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn short_flows_rejected() {
        let mut m = MixConfig::default();
        m.mean_tcp_flow_pkts = 0.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn classify_covers_all_classes() {
        let m = MixConfig::default();
        assert_eq!(m.classify(0.0), FlowClass::Tcp);
        assert_eq!(m.classify(m.tcp + 0.001), FlowClass::Udp);
        assert_eq!(m.classify(m.tcp + m.udp + 0.001), FlowClass::IcmpEcho);
        assert_eq!(m.classify(m.tcp + m.udp + m.icmp + 0.001), FlowClass::Mcast);
        assert_eq!(m.classify(0.9999), FlowClass::Other);
    }

    #[test]
    fn mean_flow_pkts_dominated_by_tcp() {
        let m = MixConfig::default();
        let mean = m.mean_flow_pkts();
        assert!(mean > 50.0 && mean < 120.0, "mean {mean}");
    }

    #[test]
    fn packet_level_tcp_share_exceeds_80_percent() {
        // The flow mix is chosen so the *packet* mix hits Figure 5's TCP
        // share: tcp_flows×len / total_pkts > 0.8.
        let m = MixConfig::default();
        let tcp_pkts = m.tcp * m.mean_tcp_flow_pkts;
        assert!(tcp_pkts / m.mean_flow_pkts() > 0.80);
    }

    #[test]
    fn syn_share_below_one_percent() {
        let m = MixConfig::default();
        // One SYN per TCP flow.
        let syn_share = m.tcp / m.mean_flow_pkts();
        assert!(syn_share < 0.015, "syn share {syn_share}");
    }
}
