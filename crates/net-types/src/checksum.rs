//! Internet checksum (RFC 1071) and incremental update (RFC 1624).
//!
//! Routers decrementing the TTL do not recompute the IPv4 header checksum
//! from scratch; they apply the incremental update of RFC 1624 eqn. 3. The
//! simulator does the same, and the detector uses [`ttl_rewrite`]'s algebra
//! to verify that a candidate replica's checksum is *consistent* with its
//! TTL — a structural check the paper gets for free from real router
//! hardware.

/// Sums a byte slice as 16-bit big-endian words into a 32-bit accumulator
/// without folding. Odd trailing bytes are padded with a zero byte on the
/// right, per RFC 1071.
fn sum_words(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds a 32-bit accumulator into a 16-bit one's-complement sum.
fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Computes the internet checksum of `data`: the one's complement of the
/// one's-complement sum of all 16-bit words.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data))
}

/// Computes the internet checksum over several byte slices, treated as one
/// logical message. Each part must have even length except possibly the
/// last (a requirement all callers in this workspace satisfy: the
/// pseudo-header and transport headers are even-sized).
pub fn checksum_parts(parts: &[&[u8]]) -> u16 {
    debug_assert!(
        parts.iter().rev().skip(1).all(|p| p.len() % 2 == 0),
        "only the final part may have odd length"
    );
    let mut sum = 0u32;
    for part in parts {
        sum += sum_words(part);
        // Fold eagerly so the u32 cannot overflow on huge inputs.
        sum = u32::from(fold(sum));
    }
    !fold(sum)
}

/// The IPv4 pseudo-header used by TCP and UDP checksums.
pub fn pseudo_header(
    src: std::net::Ipv4Addr,
    dst: std::net::Ipv4Addr,
    protocol: u8,
    transport_len: u16,
) -> [u8; 12] {
    let mut ph = [0u8; 12];
    ph[0..4].copy_from_slice(&src.octets());
    ph[4..8].copy_from_slice(&dst.octets());
    ph[8] = 0;
    ph[9] = protocol;
    ph[10..12].copy_from_slice(&transport_len.to_be_bytes());
    ph
}

/// RFC 1624 incremental checksum update for a single 16-bit field change:
/// given the old checksum `hc`, the old field value `m`, and the new value
/// `m'`, returns the new checksum `hc' = ~(~hc + ~m + m')`.
pub fn update_u16(hc: u16, old: u16, new: u16) -> u16 {
    let sum = u32::from(!hc) + u32::from(!old) + u32::from(new);
    !fold(sum)
}

/// Incrementally updates an IPv4 header checksum for a TTL change.
///
/// TTL is the high byte of the word it shares with the protocol field, so
/// the 16-bit field transition is `(old_ttl, proto)` → `(new_ttl, proto)`.
pub fn ttl_rewrite(hc: u16, old_ttl: u8, new_ttl: u8, protocol: u8) -> u16 {
    let old = u16::from_be_bytes([old_ttl, protocol]);
    let new = u16::from_be_bytes([new_ttl, protocol]);
    update_u16(hc, old, new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    /// The classic example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // RFC 1071 computes the unfolded sum 2ddf0 -> folded ddf2.
        assert_eq!(fold(sum_words(&data)), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    /// A well-known worked IPv4 header checksum example (Wikipedia /
    /// RFC 1071 style): header with checksum field zeroed checksums to
    /// 0xb861.
    #[test]
    fn known_ipv4_header_vector() {
        let header = [
            0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(checksum(&header), 0xb861);
    }

    #[test]
    fn verification_of_valid_header_yields_zero_complement() {
        let mut header = [
            0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let c = checksum(&header);
        header[10..12].copy_from_slice(&c.to_be_bytes());
        // Folding a valid message including its checksum gives 0xffff, so the
        // complement is zero.
        assert_eq!(checksum(&header), 0);
    }

    #[test]
    fn odd_length_padded() {
        // 0x01 padded to 0x0100
        assert_eq!(checksum(&[0x01]), !0x0100u16);
        assert_eq!(checksum(&[0x00, 0x01, 0x02]), !(0x0001u16 + 0x0200));
    }

    #[test]
    fn empty_buffer_checksum() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn parts_equal_contiguous() {
        let whole = [0x12u8, 0x34, 0x56, 0x78, 0x9a, 0xbc];
        assert_eq!(
            checksum_parts(&[&whole[..2], &whole[2..4], &whole[4..]]),
            checksum(&whole)
        );
        assert_eq!(checksum_parts(&[&whole, &[]]), checksum(&whole));
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut header = [
            0x45u8, 0x00, 0x00, 0x54, 0xbe, 0xef, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0x0a, 0x00,
            0x00, 0x01, 0x0a, 0x00, 0x00, 0x02,
        ];
        let c0 = checksum(&header);
        header[10..12].copy_from_slice(&c0.to_be_bytes());
        // Decrement TTL from 0x40 to 0x3f.
        let updated = ttl_rewrite(c0, 0x40, 0x3f, 0x06);
        header[8] = 0x3f;
        header[10..12].copy_from_slice(&[0, 0]);
        let recomputed = checksum(&header);
        assert_eq!(updated, recomputed);
    }

    #[test]
    fn incremental_update_chain_of_decrements() {
        // Simulate a packet looping: many consecutive TTL decrements must
        // stay consistent with full recomputation at every step.
        let mut header = [
            0x45u8, 0x00, 0x05, 0xdc, 0x12, 0x34, 0x00, 0x00, 0x80, 0x11, 0x00, 0x00, 0xc6, 0x33,
            0x64, 0x01, 0xc0, 0x00, 0x02, 0x02,
        ];
        let mut hc = checksum(&header);
        let proto = header[9];
        for ttl in (1..0x80u8).rev() {
            let old_ttl = ttl + 1;
            hc = ttl_rewrite(hc, old_ttl, ttl, proto);
            header[8] = ttl;
            assert_eq!(hc, checksum(&header), "mismatch at ttl {ttl}");
        }
    }

    #[test]
    fn pseudo_header_layout() {
        let ph = pseudo_header(
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            0x1234,
        );
        assert_eq!(&ph[0..4], &[192, 168, 0, 1]);
        assert_eq!(&ph[4..8], &[10, 0, 0, 2]);
        assert_eq!(ph[8], 0);
        assert_eq!(ph[9], 17);
        assert_eq!(&ph[10..12], &[0x12, 0x34]);
    }

    #[test]
    fn update_u16_roundtrip() {
        let hc = checksum(&[0xab, 0xcd, 0x12, 0x34]);
        let hc2 = update_u16(hc, 0x1234, 0x5678);
        assert_eq!(hc2, checksum(&[0xab, 0xcd, 0x56, 0x78]));
        // And back.
        let hc3 = update_u16(hc2, 0x5678, 0x1234);
        assert_eq!(hc3, hc);
    }
}
