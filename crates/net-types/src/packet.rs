//! Owned full packets: IPv4 header + transport header + payload.

use crate::error::Result;
use crate::icmp::IcmpHeader;
use crate::ipv4::Ipv4Header;
use crate::proto::IpProtocol;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::udp::UdpHeader;
use bytes::Bytes;
use std::net::Ipv4Addr;

/// The transport-layer portion of a packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Transport {
    /// TCP segment header.
    Tcp(TcpHeader),
    /// UDP datagram header.
    Udp(UdpHeader),
    /// ICMP message header.
    Icmp(IcmpHeader),
    /// Any other protocol: the raw bytes following the IP header are kept
    /// verbatim so parse → emit is lossless. Used for IGMP/multicast and
    /// the "OTHER" traffic category.
    Opaque(Vec<u8>),
}

impl Transport {
    /// Length in bytes of the transport *header* (for [`Transport::Opaque`]
    /// all bytes count as header).
    pub fn header_len(&self) -> usize {
        match self {
            Transport::Tcp(h) => h.header_len(),
            Transport::Udp(_) => crate::udp::HEADER_LEN,
            Transport::Icmp(_) => crate::icmp::HEADER_LEN,
            Transport::Opaque(b) => b.len(),
        }
    }
}

/// An owned IPv4 packet.
///
/// For [`Transport::Opaque`] the `payload` is always empty (the opaque bytes
/// subsume everything after the IP header).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Network-layer header.
    pub ip: Ipv4Header,
    /// Transport-layer header.
    pub transport: Transport,
    /// Transport payload bytes.
    pub payload: Bytes,
}

impl Packet {
    /// Builds a TCP packet with correct lengths and both checksums filled.
    pub fn tcp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        mut tcp: TcpHeader,
        payload: impl Into<Bytes>,
    ) -> Self {
        let payload = payload.into();
        let mut ip = Ipv4Header::new(src, dst, IpProtocol::Tcp);
        ip.total_len = (ip.header_len() + tcp.header_len() + payload.len()) as u16;
        tcp.fill_checksum(src, dst, &payload);
        ip.fill_checksum();
        Self {
            ip,
            transport: Transport::Tcp(tcp),
            payload,
        }
    }

    /// Builds a UDP packet with correct lengths and both checksums filled.
    pub fn udp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        mut udp: UdpHeader,
        payload: impl Into<Bytes>,
    ) -> Self {
        let payload = payload.into();
        udp.set_payload_len(payload.len());
        let mut ip = Ipv4Header::new(src, dst, IpProtocol::Udp);
        ip.total_len = (ip.header_len() + crate::udp::HEADER_LEN + payload.len()) as u16;
        udp.fill_checksum(src, dst, &payload);
        ip.fill_checksum();
        Self {
            ip,
            transport: Transport::Udp(udp),
            payload,
        }
    }

    /// Builds an ICMP packet with correct lengths and both checksums filled.
    pub fn icmp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        mut icmp: IcmpHeader,
        payload: impl Into<Bytes>,
    ) -> Self {
        let payload = payload.into();
        let mut ip = Ipv4Header::new(src, dst, IpProtocol::Icmp);
        ip.total_len = (ip.header_len() + crate::icmp::HEADER_LEN + payload.len()) as u16;
        icmp.fill_checksum(&payload);
        ip.fill_checksum();
        Self {
            ip,
            transport: Transport::Icmp(icmp),
            payload,
        }
    }

    /// Builds a packet of an arbitrary protocol whose post-IP bytes are
    /// `body` (e.g. IGMP for the MCAST category).
    pub fn opaque(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, body: Vec<u8>) -> Self {
        let mut ip = Ipv4Header::new(src, dst, protocol);
        ip.total_len = (ip.header_len() + body.len()) as u16;
        ip.fill_checksum();
        Self {
            ip,
            transport: Transport::Opaque(body),
            payload: Bytes::new(),
        }
    }

    /// Convenience: a minimal TCP packet with the given flags (the workload
    /// generator's workhorse).
    pub fn tcp_flags(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        payload: impl Into<Bytes>,
    ) -> Self {
        Self::tcp(src, dst, TcpHeader::new(src_port, dst_port, flags), payload)
    }

    /// Total on-the-wire length in bytes (equals `ip.total_len` for
    /// consistently-built packets).
    pub fn wire_len(&self) -> usize {
        self.ip.header_len() + self.transport.header_len() + self.payload.len()
    }

    /// Emits the packet to wire bytes. Stored checksums are emitted
    /// verbatim; call [`fill_checksums`](Self::fill_checksums) first if
    /// fields were mutated.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = self.ip.emit();
        match &self.transport {
            Transport::Tcp(h) => buf.extend_from_slice(&h.emit()),
            Transport::Udp(h) => buf.extend_from_slice(&h.emit()),
            Transport::Icmp(h) => buf.extend_from_slice(&h.emit()),
            Transport::Opaque(b) => buf.extend_from_slice(b),
        }
        buf.extend_from_slice(&self.payload);
        buf
    }

    /// Emits at most `snaplen` bytes — the trace-capture truncation used by
    /// the Sprint monitors (first 40–44 bytes of every packet).
    pub fn snap(&self, snaplen: usize) -> Vec<u8> {
        let mut bytes = self.emit();
        bytes.truncate(snaplen);
        bytes
    }

    /// Parses a full (untruncated) packet. The transport header is decoded
    /// according to the IP protocol field; unknown protocols land in
    /// [`Transport::Opaque`].
    pub fn parse(buf: &[u8]) -> Result<Self> {
        let (ip, ip_len) = Ipv4Header::parse(buf)?;
        let body = &buf[ip_len..(ip.total_len as usize).min(buf.len())];
        let (transport, consumed) = match ip.protocol {
            IpProtocol::Tcp => {
                let (h, n) = TcpHeader::parse(body)?;
                (Transport::Tcp(h), n)
            }
            IpProtocol::Udp => {
                let (h, n) = UdpHeader::parse(body)?;
                (Transport::Udp(h), n)
            }
            IpProtocol::Icmp => {
                let (h, n) = IcmpHeader::parse(body)?;
                (Transport::Icmp(h), n)
            }
            _ => (Transport::Opaque(body.to_vec()), body.len()),
        };
        Ok(Self {
            ip,
            transport,
            payload: Bytes::copy_from_slice(&body[consumed..]),
        })
    }

    /// Parses a possibly snaplen-truncated capture: the transport header must
    /// be complete (40 bytes covers IP+TCP without options), but the payload
    /// may be cut short or absent. This is the entry point used when reading
    /// trace files.
    pub fn parse_truncated(buf: &[u8]) -> Result<Self> {
        Self::parse(buf)
    }

    /// Refreshes transport and IP checksums and the IP total length to match
    /// the current contents.
    pub fn fill_checksums(&mut self) {
        self.ip.total_len = self.wire_len() as u16;
        match &mut self.transport {
            Transport::Tcp(h) => h.fill_checksum(self.ip.src, self.ip.dst, &self.payload),
            Transport::Udp(h) => {
                h.set_payload_len(self.payload.len());
                h.fill_checksum(self.ip.src, self.ip.dst, &self.payload);
            }
            Transport::Icmp(h) => h.fill_checksum(&self.payload),
            Transport::Opaque(_) => {}
        }
        self.ip.fill_checksum();
    }

    /// The transport checksum — the detector's proxy for payload identity
    /// (§IV-A.1). `None` for opaque transports.
    pub fn transport_checksum(&self) -> Option<u16> {
        match &self.transport {
            Transport::Tcp(h) => Some(h.checksum),
            Transport::Udp(h) => Some(h.checksum),
            Transport::Icmp(h) => Some(h.checksum),
            Transport::Opaque(_) => None,
        }
    }

    /// Source/destination ports for TCP/UDP, `None` otherwise.
    pub fn ports(&self) -> Option<(u16, u16)> {
        match &self.transport {
            Transport::Tcp(h) => Some((h.src_port, h.dst_port)),
            Transport::Udp(h) => Some((h.src_port, h.dst_port)),
            _ => None,
        }
    }

    /// The IP protocol of the packet.
    pub fn protocol(&self) -> IpProtocol {
        self.ip.protocol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::IcmpType;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(203, 0, 113, 5), Ipv4Addr::new(192, 0, 2, 9))
    }

    #[test]
    fn tcp_builder_consistent() {
        let (src, dst) = addrs();
        let p = Packet::tcp_flags(src, dst, 1234, 80, TcpFlags::SYN, &b"xyz"[..]);
        assert_eq!(p.wire_len(), 43);
        assert_eq!(p.ip.total_len, 43);
        assert!(p.ip.verify_checksum());
        if let Transport::Tcp(h) = &p.transport {
            assert!(h.verify_checksum(src, dst, &p.payload));
        } else {
            panic!("wrong transport");
        }
    }

    #[test]
    fn udp_builder_consistent() {
        let (src, dst) = addrs();
        let p = Packet::udp(src, dst, UdpHeader::new(53, 53), &b"query"[..]);
        assert_eq!(p.wire_len(), 20 + 8 + 5);
        if let Transport::Udp(h) = &p.transport {
            assert_eq!(h.length, 13);
            assert!(h.verify_checksum(src, dst, &p.payload));
        } else {
            panic!("wrong transport");
        }
    }

    #[test]
    fn icmp_builder_consistent() {
        let (src, dst) = addrs();
        let p = Packet::icmp(src, dst, IcmpHeader::echo(true, 1, 1), &b"ping"[..]);
        assert_eq!(p.protocol(), IpProtocol::Icmp);
        if let Transport::Icmp(h) = &p.transport {
            assert!(h.verify_checksum(&p.payload));
            assert_eq!(h.icmp_type, IcmpType::EchoRequest);
        } else {
            panic!("wrong transport");
        }
    }

    #[test]
    fn emit_parse_roundtrip_all_transports() {
        let (src, dst) = addrs();
        let packets = vec![
            Packet::tcp_flags(src, dst, 5, 6, TcpFlags::ACK | TcpFlags::PSH, &b"data"[..]),
            Packet::udp(src, dst, UdpHeader::new(7, 8), &b"dgram"[..]),
            Packet::icmp(src, dst, IcmpHeader::time_exceeded(), &b"orig"[..]),
            Packet::opaque(src, dst, IpProtocol::Igmp, vec![0x16, 0, 0, 0]),
        ];
        for p in packets {
            let bytes = p.emit();
            assert_eq!(bytes.len(), p.wire_len());
            let parsed = Packet::parse(&bytes).unwrap();
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn snap_truncates_to_40_bytes() {
        let (src, dst) = addrs();
        let p = Packet::tcp_flags(src, dst, 1, 2, TcpFlags::ACK, vec![0u8; 1000]);
        let snapped = p.snap(40);
        assert_eq!(snapped.len(), 40);
        // IP + TCP headers survive; parse_truncated succeeds with empty payload.
        let parsed = Packet::parse_truncated(&snapped).unwrap();
        assert_eq!(parsed.ip.total_len, 1040);
        assert!(parsed.payload.is_empty());
        assert_eq!(
            parsed.transport_checksum(),
            p.transport_checksum(),
            "transport checksum must survive truncation"
        );
    }

    #[test]
    fn snap_longer_than_packet_is_identity() {
        let (src, dst) = addrs();
        let p = Packet::udp(src, dst, UdpHeader::new(1, 2), &b""[..]);
        assert_eq!(p.snap(9000), p.emit());
    }

    #[test]
    fn parse_truncated_fails_when_transport_header_cut() {
        let (src, dst) = addrs();
        let p = Packet::tcp_flags(src, dst, 1, 2, TcpFlags::SYN, &b""[..]);
        let snapped = p.snap(30); // cuts into the TCP header
        assert!(Packet::parse_truncated(&snapped).is_err());
    }

    #[test]
    fn ports_accessor() {
        let (src, dst) = addrs();
        let t = Packet::tcp_flags(src, dst, 10, 20, TcpFlags::SYN, &b""[..]);
        assert_eq!(t.ports(), Some((10, 20)));
        let u = Packet::udp(src, dst, UdpHeader::new(30, 40), &b""[..]);
        assert_eq!(u.ports(), Some((30, 40)));
        let i = Packet::icmp(src, dst, IcmpHeader::echo(true, 1, 1), &b""[..]);
        assert_eq!(i.ports(), None);
    }

    #[test]
    fn fill_checksums_after_mutation() {
        let (src, dst) = addrs();
        let mut p = Packet::tcp_flags(src, dst, 1, 2, TcpFlags::ACK, &b"aaa"[..]);
        p.payload = Bytes::from_static(b"bbbbb");
        p.fill_checksums();
        assert_eq!(p.ip.total_len, 45);
        assert!(p.ip.verify_checksum());
        if let Transport::Tcp(h) = &p.transport {
            assert!(h.verify_checksum(src, dst, &p.payload));
        }
    }

    #[test]
    fn opaque_keeps_bytes_verbatim() {
        let (src, dst) = addrs();
        let body = vec![1u8, 2, 3, 4, 5];
        let p = Packet::opaque(src, dst, IpProtocol::Other(47), body.clone());
        let parsed = Packet::parse(&p.emit()).unwrap();
        match parsed.transport {
            Transport::Opaque(b) => assert_eq!(b, body),
            _ => panic!("expected opaque"),
        }
        assert!(parsed.payload.is_empty());
    }
}
