//! IPv4 header representation.

use crate::checksum;
use crate::error::{check_len, Error, Result};
use crate::proto::IpProtocol;
use std::net::Ipv4Addr;

/// Minimum (option-less) IPv4 header length in bytes.
pub const MIN_HEADER_LEN: usize = 20;
/// Maximum IPv4 header length (IHL = 15).
pub const MAX_HEADER_LEN: usize = 60;

/// A parsed IPv4 header.
///
/// The `checksum` field holds the value as it appears on the wire; it is the
/// caller's choice whether to trust it ([`Ipv4Header::verify_checksum`]) or
/// refresh it ([`Ipv4Header::fill_checksum`]). This matters here because the
/// loop detector treats the header checksum as a *varying* field (it changes
/// with every TTL decrement) while everything else must match exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Type of service / DSCP+ECN byte.
    pub tos: u8,
    /// Total length of the datagram (header + payload) in bytes.
    pub total_len: u16,
    /// Identification field — the key that distinguishes looped replicas
    /// from ordinary same-flow packets (§IV-A.1).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// More-fragments flag.
    pub more_frags: bool,
    /// Fragment offset in 8-byte units (13 bits).
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Header checksum as on the wire.
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Raw option bytes; length must be a multiple of 4, at most 40.
    pub options: Vec<u8>,
}

impl Ipv4Header {
    /// Creates a minimal header with sane defaults (TTL 64, no options,
    /// checksum zero — call [`fill_checksum`](Self::fill_checksum) after
    /// setting `total_len`).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol) -> Self {
        Self {
            tos: 0,
            total_len: MIN_HEADER_LEN as u16,
            ident: 0,
            dont_frag: false,
            more_frags: false,
            frag_offset: 0,
            ttl: 64,
            protocol,
            checksum: 0,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Header length in bytes (20 + options).
    pub fn header_len(&self) -> usize {
        MIN_HEADER_LEN + self.options.len()
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(self.header_len())
    }

    /// Parses a header from the front of `buf`. Returns the header and the
    /// number of bytes consumed.
    ///
    /// Trailing data beyond the header is ignored (it is the payload).
    /// The checksum is *not* verified — traces may legitimately contain
    /// packets captured mid-rewrite; use [`verify_checksum`](Self::verify_checksum).
    pub fn parse(buf: &[u8]) -> Result<(Self, usize)> {
        check_len(buf, MIN_HEADER_LEN)?;
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(Error::BadVersion(version));
        }
        let ihl = (buf[0] & 0x0f) as usize;
        let header_len = ihl * 4;
        if header_len < MIN_HEADER_LEN {
            return Err(Error::BadLength {
                field: "ihl",
                value: ihl,
            });
        }
        check_len(buf, header_len)?;
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < header_len {
            return Err(Error::BadLength {
                field: "total_len",
                value: total_len as usize,
            });
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        Ok((
            Self {
                tos: buf[1],
                total_len,
                ident: u16::from_be_bytes([buf[4], buf[5]]),
                dont_frag: flags_frag & 0x4000 != 0,
                more_frags: flags_frag & 0x2000 != 0,
                frag_offset: flags_frag & 0x1fff,
                ttl: buf[8],
                protocol: IpProtocol::from_u8(buf[9]),
                checksum: u16::from_be_bytes([buf[10], buf[11]]),
                src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
                dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
                options: buf[MIN_HEADER_LEN..header_len].to_vec(),
            },
            header_len,
        ))
    }

    /// Emits the header (including the stored `checksum` verbatim) into a
    /// fresh buffer.
    ///
    /// # Panics
    /// Panics when `options` is malformed (not a multiple of 4 or longer
    /// than 40 bytes) — constructing such a header is a programming error.
    pub fn emit(&self) -> Vec<u8> {
        assert!(
            self.options.len().is_multiple_of(4) && self.options.len() <= 40,
            "IPv4 options must be 4-byte aligned and at most 40 bytes"
        );
        let header_len = self.header_len();
        let mut buf = vec![0u8; header_len];
        let ihl = (header_len / 4) as u8;
        buf[0] = 0x40 | ihl;
        buf[1] = self.tos;
        buf[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        let mut flags_frag = self.frag_offset & 0x1fff;
        if self.dont_frag {
            flags_frag |= 0x4000;
        }
        if self.more_frags {
            flags_frag |= 0x2000;
        }
        buf[6..8].copy_from_slice(&flags_frag.to_be_bytes());
        buf[8] = self.ttl;
        buf[9] = self.protocol.as_u8();
        buf[10..12].copy_from_slice(&self.checksum.to_be_bytes());
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        buf[MIN_HEADER_LEN..].copy_from_slice(&self.options);
        buf
    }

    /// Computes the header checksum over the current field values (with the
    /// checksum field treated as zero).
    pub fn compute_checksum(&self) -> u16 {
        let mut bytes = self.emit();
        bytes[10] = 0;
        bytes[11] = 0;
        checksum::checksum(&bytes)
    }

    /// Recomputes and stores the checksum.
    pub fn fill_checksum(&mut self) {
        self.checksum = self.compute_checksum();
    }

    /// True when the stored checksum matches the header contents.
    pub fn verify_checksum(&self) -> bool {
        self.checksum == self.compute_checksum()
    }

    /// Decrements the TTL the way a forwarding router does: TTL goes down by
    /// one and the checksum is patched incrementally (RFC 1624) rather than
    /// recomputed. Returns `false` (and leaves the header untouched) when the
    /// TTL is already 0 and the packet must not be forwarded.
    pub fn decrement_ttl(&mut self) -> bool {
        if self.ttl == 0 {
            return false;
        }
        let old = self.ttl;
        self.ttl -= 1;
        self.checksum = checksum::ttl_rewrite(self.checksum, old, self.ttl, self.protocol.as_u8());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        let mut h = Ipv4Header::new(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(198, 51, 100, 2),
            IpProtocol::Tcp,
        );
        h.total_len = 40;
        h.ident = 0xbeef;
        h.ttl = 64;
        h.dont_frag = true;
        h.fill_checksum();
        h
    }

    #[test]
    fn emit_parse_roundtrip() {
        let h = sample();
        let bytes = h.emit();
        assert_eq!(bytes.len(), 20);
        let (parsed, consumed) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(consumed, 20);
        assert_eq!(parsed, h);
        assert!(parsed.verify_checksum());
    }

    #[test]
    fn parse_rejects_short_buffer() {
        let err = Ipv4Header::parse(&[0x45; 10]).unwrap_err();
        assert!(matches!(
            err,
            Error::Truncated {
                needed: 20,
                got: 10
            }
        ));
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let mut bytes = sample().emit();
        bytes[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::parse(&bytes).unwrap_err(), Error::BadVersion(6));
    }

    #[test]
    fn parse_rejects_bad_ihl() {
        let mut bytes = sample().emit();
        bytes[0] = 0x43; // IHL 3 -> 12-byte header, invalid
        assert!(matches!(
            Ipv4Header::parse(&bytes).unwrap_err(),
            Error::BadLength { field: "ihl", .. }
        ));
    }

    #[test]
    fn parse_rejects_total_len_below_header() {
        let mut h = sample();
        h.total_len = 10;
        let bytes = h.emit();
        assert!(matches!(
            Ipv4Header::parse(&bytes).unwrap_err(),
            Error::BadLength {
                field: "total_len",
                ..
            }
        ));
    }

    #[test]
    fn options_roundtrip() {
        let mut h = sample();
        h.options = vec![0x94, 0x04, 0x00, 0x00]; // router alert
        h.total_len = 44;
        h.fill_checksum();
        let bytes = h.emit();
        assert_eq!(bytes.len(), 24);
        assert_eq!(bytes[0] & 0x0f, 6); // IHL 6
        let (parsed, consumed) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(consumed, 24);
        assert_eq!(parsed.options, h.options);
        assert!(parsed.verify_checksum());
    }

    #[test]
    #[should_panic(expected = "4-byte aligned")]
    fn emit_rejects_misaligned_options() {
        let mut h = sample();
        h.options = vec![1, 2, 3];
        let _ = h.emit();
    }

    #[test]
    fn flags_and_fragment_offset() {
        let mut h = sample();
        h.dont_frag = false;
        h.more_frags = true;
        h.frag_offset = 0x1abc;
        h.fill_checksum();
        let bytes = h.emit();
        let (parsed, _) = Ipv4Header::parse(&bytes).unwrap();
        assert!(!parsed.dont_frag);
        assert!(parsed.more_frags);
        assert_eq!(parsed.frag_offset, 0x1abc);
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut h = sample();
        assert!(h.verify_checksum());
        for expected in (0..64u8).rev() {
            assert!(h.decrement_ttl());
            assert_eq!(h.ttl, expected);
            assert!(h.verify_checksum(), "invalid checksum at ttl {expected}");
        }
        // TTL is now 0; forwarding must be refused and state untouched.
        assert!(!h.decrement_ttl());
        assert_eq!(h.ttl, 0);
        assert!(h.verify_checksum());
    }

    #[test]
    fn checksum_verification_detects_corruption() {
        let mut h = sample();
        h.ident ^= 1;
        assert!(!h.verify_checksum());
    }

    #[test]
    fn payload_len_saturates() {
        let mut h = sample();
        h.total_len = 60;
        assert_eq!(h.payload_len(), 40);
        h.total_len = 5; // bogus but must not underflow
        assert_eq!(h.payload_len(), 0);
    }
}
