//! IP protocol numbers.

use std::fmt;

/// An IP protocol number as carried in the IPv4 `protocol` field.
///
/// Only the protocols the paper's traffic analysis distinguishes (TCP, UDP,
/// ICMP, plus IGMP for the multicast category) get named variants; everything
/// else is preserved verbatim in [`IpProtocol::Other`] so that parse → emit
/// is lossless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// IGMP (2) — stands in for the paper's MCAST traffic category.
    Igmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl IpProtocol {
    /// Converts the wire value into a protocol.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            2 => IpProtocol::Igmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }

    /// The wire value.
    pub fn as_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Igmp => 2,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        IpProtocol::from_u8(v)
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        p.as_u8()
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "ICMP"),
            IpProtocol::Igmp => write!(f, "IGMP"),
            IpProtocol::Tcp => write!(f, "TCP"),
            IpProtocol::Udp => write!(f, "UDP"),
            IpProtocol::Other(v) => write!(f, "proto-{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_roundtrips() {
        for v in [1u8, 2, 6, 17] {
            assert_eq!(IpProtocol::from_u8(v).as_u8(), v);
        }
        assert_eq!(IpProtocol::from_u8(6), IpProtocol::Tcp);
        assert_eq!(IpProtocol::from_u8(17), IpProtocol::Udp);
        assert_eq!(IpProtocol::from_u8(1), IpProtocol::Icmp);
        assert_eq!(IpProtocol::from_u8(2), IpProtocol::Igmp);
    }

    #[test]
    fn other_preserves_value() {
        for v in 0u8..=255 {
            assert_eq!(IpProtocol::from_u8(v).as_u8(), v);
        }
        assert_eq!(IpProtocol::from_u8(47), IpProtocol::Other(47));
    }

    #[test]
    fn display_names() {
        assert_eq!(IpProtocol::Tcp.to_string(), "TCP");
        assert_eq!(IpProtocol::Other(89).to_string(), "proto-89");
    }
}
