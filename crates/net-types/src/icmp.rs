//! ICMP header representation.
//!
//! The paper observed a high proportion of looped ICMP traffic — echo
//! requests (hosts pinging when they see loss) and Time Exceeded messages
//! (routers dropping TTL-expired looping packets), plus one host emitting
//! packets with *reserved* type values. All three cases are representable
//! here, and the simulator generates Time Exceeded messages itself.

use crate::checksum;
use crate::error::{check_len, Result};
use std::fmt;

/// ICMP header length (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMP message types the analysis distinguishes, with everything else kept
/// verbatim (including the reserved types the paper saw in the wild).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3).
    DestUnreachable,
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11) — generated when a looping packet's TTL expires.
    TimeExceeded,
    /// Any other type, including reserved values.
    Other(u8),
}

impl IcmpType {
    /// Converts the wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestUnreachable,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            other => IcmpType::Other(other),
        }
    }

    /// The wire value.
    pub fn as_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::Other(v) => v,
        }
    }

    /// True for type values IANA lists as reserved/unassigned in the ranges
    /// the paper's anomalous host used (1, 2, 7, and 44+).
    pub fn is_reserved(self) -> bool {
        matches!(self.as_u8(), 1 | 2 | 7 | 44..=252)
    }
}

impl fmt::Display for IcmpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcmpType::EchoReply => write!(f, "echo-reply"),
            IcmpType::DestUnreachable => write!(f, "dest-unreachable"),
            IcmpType::EchoRequest => write!(f, "echo-request"),
            IcmpType::TimeExceeded => write!(f, "time-exceeded"),
            IcmpType::Other(v) => write!(f, "icmp-type-{v}"),
        }
    }
}

/// A parsed ICMP header (the fixed 8 bytes; the variable body is the packet
/// payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IcmpHeader {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Message code (e.g. 0 = "TTL exceeded in transit" under TimeExceeded).
    pub code: u8,
    /// Checksum as on the wire.
    pub checksum: u16,
    /// The 4 "rest of header" bytes: identifier+sequence for echo messages,
    /// unused for Time Exceeded.
    pub rest: [u8; 4],
}

impl IcmpHeader {
    /// Creates a header with zeroed checksum and rest-of-header.
    pub fn new(icmp_type: IcmpType, code: u8) -> Self {
        Self {
            icmp_type,
            code,
            checksum: 0,
            rest: [0; 4],
        }
    }

    /// Creates an echo request/reply with identifier and sequence.
    pub fn echo(request: bool, ident: u16, seq: u16) -> Self {
        let mut rest = [0u8; 4];
        rest[0..2].copy_from_slice(&ident.to_be_bytes());
        rest[2..4].copy_from_slice(&seq.to_be_bytes());
        Self {
            icmp_type: if request {
                IcmpType::EchoRequest
            } else {
                IcmpType::EchoReply
            },
            code: 0,
            checksum: 0,
            rest,
        }
    }

    /// Creates a Time Exceeded (TTL expired in transit) header.
    pub fn time_exceeded() -> Self {
        Self::new(IcmpType::TimeExceeded, 0)
    }

    /// Echo identifier (meaningful for echo messages only).
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.rest[0], self.rest[1]])
    }

    /// Echo sequence number (meaningful for echo messages only).
    pub fn seq(&self) -> u16 {
        u16::from_be_bytes([self.rest[2], self.rest[3]])
    }

    /// Parses an ICMP header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize)> {
        check_len(buf, HEADER_LEN)?;
        Ok((
            Self {
                icmp_type: IcmpType::from_u8(buf[0]),
                code: buf[1],
                checksum: u16::from_be_bytes([buf[2], buf[3]]),
                rest: [buf[4], buf[5], buf[6], buf[7]],
            },
            HEADER_LEN,
        ))
    }

    /// Emits the header (stored checksum verbatim).
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN];
        buf[0] = self.icmp_type.as_u8();
        buf[1] = self.code;
        buf[2..4].copy_from_slice(&self.checksum.to_be_bytes());
        buf[4..8].copy_from_slice(&self.rest);
        buf
    }

    /// Computes the ICMP checksum over the header and message body (no
    /// pseudo-header for ICMPv4).
    pub fn compute_checksum(&self, payload: &[u8]) -> u16 {
        let mut header = self.emit();
        header[2] = 0;
        header[3] = 0;
        checksum::checksum_parts(&[&header, payload])
    }

    /// Recomputes and stores the checksum.
    pub fn fill_checksum(&mut self, payload: &[u8]) {
        self.checksum = self.compute_checksum(payload);
    }

    /// True when the stored checksum matches header and body.
    pub fn verify_checksum(&self, payload: &[u8]) -> bool {
        self.checksum == self.compute_checksum(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_roundtrips() {
        for v in 0u8..=255 {
            assert_eq!(IcmpType::from_u8(v).as_u8(), v);
        }
        assert_eq!(IcmpType::from_u8(8), IcmpType::EchoRequest);
        assert_eq!(IcmpType::from_u8(11), IcmpType::TimeExceeded);
    }

    #[test]
    fn reserved_types() {
        assert!(IcmpType::from_u8(1).is_reserved());
        assert!(IcmpType::from_u8(100).is_reserved());
        assert!(!IcmpType::EchoRequest.is_reserved());
        assert!(!IcmpType::TimeExceeded.is_reserved());
        assert!(!IcmpType::from_u8(253).is_reserved()); // experimental, not reserved
    }

    #[test]
    fn echo_accessors() {
        let h = IcmpHeader::echo(true, 0xabcd, 42);
        assert_eq!(h.icmp_type, IcmpType::EchoRequest);
        assert_eq!(h.ident(), 0xabcd);
        assert_eq!(h.seq(), 42);
        let r = IcmpHeader::echo(false, 1, 2);
        assert_eq!(r.icmp_type, IcmpType::EchoReply);
    }

    #[test]
    fn emit_parse_roundtrip() {
        let mut h = IcmpHeader::echo(true, 7, 9);
        h.fill_checksum(b"pingdata");
        let bytes = h.emit();
        let (parsed, consumed) = IcmpHeader::parse(&bytes).unwrap();
        assert_eq!(consumed, 8);
        assert_eq!(parsed, h);
        assert!(parsed.verify_checksum(b"pingdata"));
    }

    #[test]
    fn parse_rejects_short_buffer() {
        assert!(IcmpHeader::parse(&[0u8; 7]).is_err());
    }

    #[test]
    fn checksum_covers_body() {
        let mut h = IcmpHeader::time_exceeded();
        h.fill_checksum(b"original header bytes");
        assert!(h.verify_checksum(b"original header bytes"));
        assert!(!h.verify_checksum(b"original header byteZ"));
    }

    #[test]
    fn time_exceeded_shape() {
        let h = IcmpHeader::time_exceeded();
        assert_eq!(h.icmp_type, IcmpType::TimeExceeded);
        assert_eq!(h.code, 0);
        assert_eq!(h.rest, [0; 4]);
    }
}
