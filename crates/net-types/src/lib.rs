#![warn(missing_docs)]
//! Wire formats and typed packet views for the routing-loops workspace.
//!
//! Modelled after smoltcp's philosophy: explicit, checked wire
//! representations with no macro tricks. Every header type provides
//! `parse` / `emit` symmetric with each other, and checksums are first-class
//! (the paper's detection algorithm keys on the IP header checksum changing
//! with the TTL while the transport checksum stays fixed).
//!
//! * [`ipv4::Ipv4Header`] — IPv4 header with options, RFC 1071 checksum and
//!   RFC 1624 incremental update on TTL decrement.
//! * [`tcp::TcpHeader`], [`udp::UdpHeader`], [`icmp::IcmpHeader`] — transport
//!   headers with pseudo-header checksums.
//! * [`packet::Packet`] — an owned full packet (IPv4 + transport + payload)
//!   with builder, emit, parse, and snaplen truncation.
//! * [`prefix::Ipv4Prefix`] — CIDR prefixes (the detector aggregates replica
//!   streams by /24, the longest prefix honoured by tier-1 ISPs).

//! ```
//! use net_types::{Packet, TcpFlags};
//! use std::net::Ipv4Addr;
//!
//! let p = Packet::tcp_flags(
//!     Ipv4Addr::new(192, 0, 2, 1),
//!     Ipv4Addr::new(198, 51, 100, 2),
//!     443, 55000, TcpFlags::SYN | TcpFlags::ACK, &b"hello"[..],
//! );
//! // Emit to wire bytes and parse back: lossless.
//! let bytes = p.emit();
//! let parsed = Packet::parse(&bytes).unwrap();
//! assert_eq!(parsed, p);
//! assert!(parsed.ip.verify_checksum());
//!
//! // Forwarding decrements the TTL and patches the checksum incrementally.
//! let mut hop = parsed.clone();
//! hop.ip.decrement_ttl();
//! assert!(hop.ip.verify_checksum());
//! assert_eq!(hop.transport_checksum(), p.transport_checksum());
//! ```

pub mod checksum;
pub mod error;
pub mod icmp;
pub mod ipv4;
pub mod packet;
pub mod prefix;
pub mod proto;
pub mod tcp;
pub mod udp;

pub use error::{Error, Result};
pub use icmp::{IcmpHeader, IcmpType};
pub use ipv4::Ipv4Header;
pub use packet::{Packet, Transport};
pub use prefix::Ipv4Prefix;
pub use proto::IpProtocol;
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;

pub use std::net::Ipv4Addr;
