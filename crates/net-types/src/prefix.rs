//! IPv4 CIDR prefixes.
//!
//! The detector merges replicas of packets whose destinations share the same
//! /24 (§IV-A.2: "24 bits is the longest prefix currently honored by tier-1
//! ISPs"), and the routing substrate advertises reachability per prefix, so
//! prefixes show up on both sides of the pipeline.

use crate::error::{Error, Result};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix in CIDR notation (`addr/len`), canonicalised so that all
/// host bits are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Prefix {
    network: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix from an address and length, masking host bits.
    ///
    /// # Errors
    /// Returns [`Error::BadField`] when `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self> {
        if len > 32 {
            return Err(Error::BadField {
                field: "prefix-len",
                value: u64::from(len),
            });
        }
        let raw = u32::from(addr);
        Ok(Self {
            network: raw & Self::mask_bits(len),
            len,
        })
    }

    /// The all-addresses default route `0.0.0.0/0`.
    pub fn default_route() -> Self {
        Self { network: 0, len: 0 }
    }

    /// The /24 containing `addr` — the aggregation unit of §IV-A.2.
    pub fn slash24_of(addr: Ipv4Addr) -> Self {
        Self {
            network: u32::from(addr) & 0xffff_ff00,
            len: 24,
        }
    }

    fn mask_bits(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Network address (host bits zero).
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a prefix has no empty notion
    pub fn len(&self) -> u8 {
        self.len
    }

    /// The netmask as an address.
    pub fn netmask(&self) -> Ipv4Addr {
        Ipv4Addr::from(Self::mask_bits(self.len))
    }

    /// True when `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_bits(self.len) == self.network
    }

    /// True when `other` is fully contained in (or equal to) this prefix.
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        other.len >= self.len && (other.network & Self::mask_bits(self.len)) == self.network
    }

    /// Number of addresses in the prefix (2^(32-len)), saturating at
    /// `u64::MAX` never — a /0 has 2^32 which fits in u64.
    pub fn size(&self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }

    /// The `i`-th address inside the prefix (wrapping within the prefix) —
    /// handy for synthetic host assignment.
    pub fn host(&self, i: u64) -> Ipv4Addr {
        let offset = (i % self.size()) as u32;
        Ipv4Addr::from(self.network | offset)
    }

    /// Raw network bits, for trie keys.
    pub fn network_bits(&self) -> u32 {
        self.network
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let (addr_s, len_s) = s.split_once('/').ok_or(Error::BadField {
            field: "prefix",
            value: 0,
        })?;
        let addr: Ipv4Addr = addr_s.parse().map_err(|_| Error::BadField {
            field: "prefix-addr",
            value: 0,
        })?;
        let len: u8 = len_s.parse().map_err(|_| Error::BadField {
            field: "prefix-len",
            value: 0,
        })?;
        Ipv4Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalises_host_bits() {
        let pfx = Ipv4Prefix::new(Ipv4Addr::new(192, 168, 1, 77), 24).unwrap();
        assert_eq!(pfx.network(), Ipv4Addr::new(192, 168, 1, 0));
        assert_eq!(pfx.len(), 24);
        assert_eq!(pfx.to_string(), "192.168.1.0/24");
    }

    #[test]
    fn len_over_32_rejected() {
        assert!(Ipv4Prefix::new(Ipv4Addr::new(1, 2, 3, 4), 33).is_err());
    }

    #[test]
    fn zero_length_default_route_contains_everything() {
        let d = Ipv4Prefix::default_route();
        assert!(d.contains(Ipv4Addr::new(0, 0, 0, 0)));
        assert!(d.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(d.size(), 1 << 32);
        assert_eq!(d.to_string(), "0.0.0.0/0");
    }

    #[test]
    fn contains_boundaries() {
        let pfx = p("10.1.2.0/24");
        assert!(pfx.contains(Ipv4Addr::new(10, 1, 2, 0)));
        assert!(pfx.contains(Ipv4Addr::new(10, 1, 2, 255)));
        assert!(!pfx.contains(Ipv4Addr::new(10, 1, 3, 0)));
        assert!(!pfx.contains(Ipv4Addr::new(10, 1, 1, 255)));
    }

    #[test]
    fn slash32_contains_only_itself() {
        let pfx = p("10.0.0.1/32");
        assert!(pfx.contains(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!pfx.contains(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(pfx.size(), 1);
    }

    #[test]
    fn covers_nested_prefixes() {
        assert!(p("10.0.0.0/8").covers(&p("10.1.0.0/16")));
        assert!(p("10.0.0.0/8").covers(&p("10.0.0.0/8")));
        assert!(!p("10.1.0.0/16").covers(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").covers(&p("11.0.0.0/16")));
    }

    #[test]
    fn slash24_of_matches_manual() {
        let pfx = Ipv4Prefix::slash24_of(Ipv4Addr::new(192, 0, 2, 123));
        assert_eq!(pfx, p("192.0.2.0/24"));
    }

    #[test]
    fn host_indexing_wraps() {
        let pfx = p("10.0.0.0/30");
        assert_eq!(pfx.host(0), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(pfx.host(3), Ipv4Addr::new(10, 0, 0, 3));
        assert_eq!(pfx.host(4), Ipv4Addr::new(10, 0, 0, 0)); // wrapped
    }

    #[test]
    fn netmask_values() {
        assert_eq!(p("0.0.0.0/0").netmask(), Ipv4Addr::new(0, 0, 0, 0));
        assert_eq!(p("10.0.0.0/8").netmask(), Ipv4Addr::new(255, 0, 0, 0));
        assert_eq!(
            p("10.0.0.0/30").netmask(),
            Ipv4Addr::new(255, 255, 255, 252)
        );
        assert_eq!(
            p("10.0.0.1/32").netmask(),
            Ipv4Addr::new(255, 255, 255, 255)
        );
    }

    #[test]
    fn parse_errors() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("banana/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn ordering_is_stable_for_btreemap_use() {
        let a = p("10.0.0.0/8");
        let b = p("10.0.0.0/16");
        let c = p("11.0.0.0/8");
        assert!(a < b); // same network, longer length sorts after
        assert!(b < c);
    }
}
