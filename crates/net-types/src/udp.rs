//! UDP header representation.

use crate::checksum;
use crate::error::{check_len, Error, Result};
use std::net::Ipv4Addr;

/// UDP header length (fixed).
pub const HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload.
    pub length: u16,
    /// Checksum as on the wire; `0` means "not computed" per RFC 768.
    pub checksum: u16,
}

impl UdpHeader {
    /// Creates a header with the given ports; `length` covers an empty
    /// payload until [`set_payload_len`](Self::set_payload_len) is called.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        Self {
            src_port,
            dst_port,
            length: HEADER_LEN as u16,
            checksum: 0,
        }
    }

    /// Sets `length` for a payload of `len` bytes.
    pub fn set_payload_len(&mut self, len: usize) {
        self.length = (HEADER_LEN + len) as u16;
    }

    /// Parses a UDP header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize)> {
        check_len(buf, HEADER_LEN)?;
        let length = u16::from_be_bytes([buf[4], buf[5]]);
        if (length as usize) < HEADER_LEN {
            return Err(Error::BadLength {
                field: "udp_length",
                value: length as usize,
            });
        }
        Ok((
            Self {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                length,
                checksum: u16::from_be_bytes([buf[6], buf[7]]),
            },
            HEADER_LEN,
        ))
    }

    /// Emits the header (stored checksum verbatim).
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN];
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.length.to_be_bytes());
        buf[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        buf
    }

    /// Computes the UDP checksum (pseudo-header + header + payload). A
    /// computed value of zero is transmitted as `0xffff` per RFC 768, since
    /// zero on the wire means "no checksum".
    pub fn compute_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> u16 {
        let ph = checksum::pseudo_header(src, dst, 17, self.length);
        let mut header = self.emit();
        header[6] = 0;
        header[7] = 0;
        let c = checksum::checksum_parts(&[&ph, &header, payload]);
        if c == 0 {
            0xffff
        } else {
            c
        }
    }

    /// Recomputes and stores the checksum.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) {
        self.checksum = self.compute_checksum(src, dst, payload);
    }

    /// True when the stored checksum is valid (a zero stored checksum is
    /// "valid" by definition — checksum disabled).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> bool {
        self.checksum == 0 || self.checksum == self.compute_checksum(src, dst, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(172, 16, 0, 1), Ipv4Addr::new(172, 16, 0, 2))
    }

    #[test]
    fn emit_parse_roundtrip() {
        let (src, dst) = addrs();
        let mut h = UdpHeader::new(5353, 53);
        h.set_payload_len(11);
        h.fill_checksum(src, dst, b"hello world");
        let bytes = h.emit();
        let (parsed, consumed) = UdpHeader::parse(&bytes).unwrap();
        assert_eq!(consumed, 8);
        assert_eq!(parsed, h);
        assert!(parsed.verify_checksum(src, dst, b"hello world"));
    }

    #[test]
    fn parse_rejects_short_buffer() {
        assert!(matches!(
            UdpHeader::parse(&[0u8; 7]).unwrap_err(),
            Error::Truncated { needed: 8, got: 7 }
        ));
    }

    #[test]
    fn parse_rejects_length_below_header() {
        let mut h = UdpHeader::new(1, 2);
        h.length = 4;
        let bytes = h.emit();
        assert!(matches!(
            UdpHeader::parse(&bytes).unwrap_err(),
            Error::BadLength {
                field: "udp_length",
                ..
            }
        ));
    }

    #[test]
    fn zero_checksum_means_disabled() {
        let (src, dst) = addrs();
        let h = UdpHeader::new(1000, 2000);
        assert_eq!(h.checksum, 0);
        assert!(h.verify_checksum(src, dst, b"anything at all"));
    }

    #[test]
    fn computed_zero_transmitted_as_ffff() {
        // compute_checksum never returns 0.
        let (src, dst) = addrs();
        let mut h = UdpHeader::new(0, 0);
        h.set_payload_len(0);
        for s in 0..2000u16 {
            h.src_port = s;
            let c = h.compute_checksum(src, dst, b"");
            assert_ne!(c, 0);
        }
    }

    #[test]
    fn checksum_detects_payload_change() {
        let (src, dst) = addrs();
        let mut h = UdpHeader::new(9, 9);
        h.set_payload_len(3);
        h.fill_checksum(src, dst, b"abc");
        assert!(h.verify_checksum(src, dst, b"abc"));
        assert!(!h.verify_checksum(src, dst, b"abd"));
    }

    #[test]
    fn length_accounts_for_payload() {
        let mut h = UdpHeader::new(1, 2);
        h.set_payload_len(100);
        assert_eq!(h.length, 108);
    }
}
