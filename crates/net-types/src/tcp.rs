//! TCP header representation.

use crate::checksum;
use crate::error::{check_len, Error, Result};
use std::net::Ipv4Addr;
use std::ops::{BitOr, BitOrAssign};

/// Minimum (option-less) TCP header length.
pub const MIN_HEADER_LEN: usize = 20;

/// TCP control flags (the low 6 bits of byte 13; ECN bits are preserved via
/// the raw representation).
///
/// The paper's traffic-type breakdown (Figures 5 and 6) reports ACK, PSH,
/// RST, URG, SYN, and FIN as separate categories, so the flags are
/// first-class here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG flag.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// True when every flag in `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when no flags are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

/// A parsed TCP header.
///
/// As with [`crate::Ipv4Header`], the `checksum` is stored verbatim: the
/// detector uses equal TCP checksums as the proxy for "identical payloads"
/// on 40-byte-snaplen traces (§IV-A.1), so it must survive parse → emit
/// unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum as on the wire.
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Raw option bytes; length must be a multiple of 4, at most 40.
    pub options: Vec<u8>,
}

impl TcpHeader {
    /// Creates a header with the given ports and flags, everything else
    /// zeroed.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> Self {
        Self {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags,
            window: 0,
            checksum: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Header length in bytes (20 + options).
    pub fn header_len(&self) -> usize {
        MIN_HEADER_LEN + self.options.len()
    }

    /// Parses a TCP header from the front of `buf`, returning the header and
    /// bytes consumed.
    pub fn parse(buf: &[u8]) -> Result<(Self, usize)> {
        check_len(buf, MIN_HEADER_LEN)?;
        let data_offset = (buf[12] >> 4) as usize;
        let header_len = data_offset * 4;
        if header_len < MIN_HEADER_LEN {
            return Err(Error::BadLength {
                field: "data_offset",
                value: data_offset,
            });
        }
        check_len(buf, header_len)?;
        Ok((
            Self {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: TcpFlags(buf[13] & 0x3f),
                window: u16::from_be_bytes([buf[14], buf[15]]),
                checksum: u16::from_be_bytes([buf[16], buf[17]]),
                urgent: u16::from_be_bytes([buf[18], buf[19]]),
                options: buf[MIN_HEADER_LEN..header_len].to_vec(),
            },
            header_len,
        ))
    }

    /// Emits the header (stored checksum verbatim).
    ///
    /// # Panics
    /// Panics on malformed options, as for IPv4.
    pub fn emit(&self) -> Vec<u8> {
        assert!(
            self.options.len().is_multiple_of(4) && self.options.len() <= 40,
            "TCP options must be 4-byte aligned and at most 40 bytes"
        );
        let header_len = self.header_len();
        let mut buf = vec![0u8; header_len];
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        buf[12] = ((header_len / 4) as u8) << 4;
        buf[13] = self.flags.0;
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        buf[18..20].copy_from_slice(&self.urgent.to_be_bytes());
        buf[MIN_HEADER_LEN..].copy_from_slice(&self.options);
        buf
    }

    /// Computes the TCP checksum over pseudo-header, header, and payload.
    pub fn compute_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> u16 {
        let transport_len = self.header_len() + payload.len();
        let ph = checksum::pseudo_header(src, dst, 6, transport_len as u16);
        let mut header = self.emit();
        header[16] = 0;
        header[17] = 0;
        checksum::checksum_parts(&[&ph, &header, payload])
    }

    /// Recomputes and stores the checksum for the given addressing/payload.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) {
        self.checksum = self.compute_checksum(src, dst, payload);
    }

    /// True when the stored checksum is valid for the given addressing and
    /// payload.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> bool {
        self.checksum == self.compute_checksum(src, dst, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    fn sample() -> TcpHeader {
        let (src, dst) = addrs();
        let mut h = TcpHeader::new(43210, 80, TcpFlags::SYN);
        h.seq = 0x12345678;
        h.window = 65535;
        h.fill_checksum(src, dst, b"");
        h
    }

    #[test]
    fn flags_operations() {
        let synack = TcpFlags::SYN | TcpFlags::ACK;
        assert!(synack.contains(TcpFlags::SYN));
        assert!(synack.contains(TcpFlags::ACK));
        assert!(!synack.contains(TcpFlags::FIN));
        assert!(synack.contains(synack));
        assert!(TcpFlags::default().is_empty());
        let mut f = TcpFlags::PSH;
        f |= TcpFlags::ACK;
        assert!(f.contains(TcpFlags::PSH | TcpFlags::ACK));
    }

    #[test]
    fn emit_parse_roundtrip() {
        let h = sample();
        let bytes = h.emit();
        assert_eq!(bytes.len(), 20);
        let (parsed, consumed) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(consumed, 20);
        assert_eq!(parsed, h);
    }

    #[test]
    fn options_roundtrip() {
        let (src, dst) = addrs();
        let mut h = sample();
        h.options = vec![0x02, 0x04, 0x05, 0xb4]; // MSS 1460
        h.fill_checksum(src, dst, b"");
        let bytes = h.emit();
        assert_eq!(bytes.len(), 24);
        assert_eq!(bytes[12] >> 4, 6);
        let (parsed, consumed) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(consumed, 24);
        assert_eq!(parsed.options, h.options);
        assert!(parsed.verify_checksum(src, dst, b""));
    }

    #[test]
    fn parse_rejects_bad_data_offset() {
        let mut bytes = sample().emit();
        bytes[12] = 0x40; // data offset 4 -> 16 bytes, invalid
        assert!(matches!(
            TcpHeader::parse(&bytes).unwrap_err(),
            Error::BadLength {
                field: "data_offset",
                ..
            }
        ));
    }

    #[test]
    fn parse_rejects_truncated() {
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
        // Header claims options beyond the buffer.
        let mut bytes = sample().emit();
        bytes[12] = 0x80; // data offset 8 -> 32 bytes
        assert!(matches!(
            TcpHeader::parse(&bytes).unwrap_err(),
            Error::Truncated { needed: 32, .. }
        ));
    }

    #[test]
    fn checksum_covers_payload() {
        let (src, dst) = addrs();
        let mut h = sample();
        h.fill_checksum(src, dst, b"hello");
        assert!(h.verify_checksum(src, dst, b"hello"));
        assert!(!h.verify_checksum(src, dst, b"hellp"));
        // Odd-length payload exercises RFC 1071 padding.
        assert!(!h.verify_checksum(src, dst, b"hell"));
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let (src, dst) = addrs();
        let h = sample();
        assert!(h.verify_checksum(src, dst, b""));
        // Note: merely swapping src and dst cannot change the checksum (the
        // one's-complement sum is commutative), so perturb an address.
        assert!(!h.verify_checksum(src, Ipv4Addr::new(10, 0, 0, 3), b""));
    }

    #[test]
    fn checksum_unchanged_by_reemit() {
        // The detector relies on the transport checksum being a stable
        // replica key; emit must never silently refresh it.
        let (src, dst) = addrs();
        let mut h = sample();
        h.fill_checksum(src, dst, b"payload");
        let stored = h.checksum;
        let bytes = h.emit();
        let (parsed, _) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed.checksum, stored);
    }
}
