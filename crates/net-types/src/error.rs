//! Error type shared by all wire-format code.

use std::fmt;

/// Errors raised while parsing or emitting wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the format requires. Carries the number of
    /// bytes that were needed.
    Truncated {
        /// Bytes the format required.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A version field did not match (e.g. IPv4 version != 4).
    BadVersion(u8),
    /// A length field is inconsistent with the buffer (e.g. IHL < 5, or
    /// total length smaller than the header).
    BadLength {
        /// Which length field.
        field: &'static str,
        /// The offending value.
        value: usize,
    },
    /// A checksum failed verification.
    BadChecksum {
        /// Which checksum.
        field: &'static str,
    },
    /// A field holds a value this implementation cannot represent.
    BadField {
        /// Which field.
        field: &'static str,
        /// The offending value (widened).
        value: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated { needed, got } => {
                write!(f, "truncated buffer: needed {needed} bytes, got {got}")
            }
            Error::BadVersion(v) => write!(f, "bad version field: {v}"),
            Error::BadLength { field, value } => {
                write!(f, "inconsistent length field {field}: {value}")
            }
            Error::BadChecksum { field } => write!(f, "checksum mismatch in {field}"),
            Error::BadField { field, value } => {
                write!(f, "unrepresentable value {value} in field {field}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Checks that `buf` holds at least `needed` bytes.
pub(crate) fn check_len(buf: &[u8], needed: usize) -> Result<()> {
    if buf.len() < needed {
        Err(Error::Truncated {
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::Truncated { needed: 20, got: 4 }.to_string(),
            "truncated buffer: needed 20 bytes, got 4"
        );
        assert_eq!(Error::BadVersion(6).to_string(), "bad version field: 6");
        assert!(Error::BadChecksum { field: "ipv4" }
            .to_string()
            .contains("ipv4"));
        assert!(Error::BadLength {
            field: "ihl",
            value: 3
        }
        .to_string()
        .contains("ihl"));
        assert!(Error::BadField {
            field: "proto",
            value: 300
        }
        .to_string()
        .contains("proto"));
    }

    #[test]
    fn check_len_boundary() {
        assert!(check_len(&[0u8; 4], 4).is_ok());
        assert_eq!(
            check_len(&[0u8; 3], 4),
            Err(Error::Truncated { needed: 4, got: 3 })
        );
    }
}
