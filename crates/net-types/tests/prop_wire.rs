//! Property-based tests for wire formats: parse/emit symmetry and checksum
//! algebra, over arbitrary field values.

use net_types::checksum;
use net_types::icmp::IcmpHeader;
use net_types::ipv4::Ipv4Header;
use net_types::packet::{Packet, Transport};
use net_types::prefix::Ipv4Prefix;
use net_types::proto::IpProtocol;
use net_types::tcp::{TcpFlags, TcpHeader};
use net_types::udp::UdpHeader;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_ipv4_header() -> impl Strategy<Value = Ipv4Header> {
    (
        arb_addr(),
        arb_addr(),
        any::<u8>(),
        any::<u16>(),
        any::<u8>(),
        any::<u8>(),
        any::<bool>(),
        any::<bool>(),
        0u16..0x2000,
        0usize..=10,
    )
        .prop_map(
            |(src, dst, tos, ident, ttl, proto, df, mf, frag, opt_words)| {
                let mut h = Ipv4Header::new(src, dst, IpProtocol::from_u8(proto));
                h.tos = tos;
                h.ident = ident;
                h.ttl = ttl;
                h.dont_frag = df;
                h.more_frags = mf;
                h.frag_offset = frag;
                h.options = vec![0xAB; opt_words * 4];
                h.total_len = (h.header_len() + 13) as u16;
                h.fill_checksum();
                h
            },
        )
}

proptest! {
    #[test]
    fn ipv4_emit_parse_roundtrip(h in arb_ipv4_header()) {
        let bytes = h.emit();
        let (parsed, consumed) = Ipv4Header::parse(&bytes).unwrap();
        prop_assert_eq!(consumed, h.header_len());
        prop_assert_eq!(&parsed, &h);
        prop_assert!(parsed.verify_checksum());
    }

    #[test]
    fn ttl_decrement_incremental_checksum_matches_full(
        h in arb_ipv4_header(),
        steps in 1usize..255,
    ) {
        let mut h = h;
        for _ in 0..steps {
            if !h.decrement_ttl() {
                break;
            }
            prop_assert!(
                h.verify_checksum(),
                "incremental checksum diverged at ttl {}",
                h.ttl
            );
        }
    }

    #[test]
    fn incremental_u16_update_matches_recompute(
        words in proptest::collection::vec(any::<u16>(), 2..20),
        idx in 0usize..19,
        new in any::<u16>(),
    ) {
        let idx = idx % words.len();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        let old_sum = checksum::checksum(&bytes);
        let updated = checksum::update_u16(old_sum, words[idx], new);
        let mut words2 = words.clone();
        words2[idx] = new;
        let bytes2: Vec<u8> = words2.iter().flat_map(|w| w.to_be_bytes()).collect();
        let recomputed = checksum::checksum(&bytes2);
        // One's-complement arithmetic has two representations of zero
        // (0x0000 and 0xffff); RFC 1624 updates may land on the other one.
        let canon = |c: u16| if c == 0xffff { 0 } else { c };
        prop_assert_eq!(canon(updated), canon(recomputed));
    }

    #[test]
    fn checksum_parts_equals_contiguous(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cut in 0usize..512,
    ) {
        let cut = (cut % (data.len() + 1)) & !1; // even split point
        let (a, b) = data.split_at(cut);
        prop_assert_eq!(checksum::checksum_parts(&[a, b]), checksum::checksum(&data));
    }

    #[test]
    fn tcp_emit_parse_roundtrip(
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        flags in 0u8..0x40, window in any::<u16>(),
        urgent in any::<u16>(),
        opt_words in 0usize..=10,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        src in arb_addr(), dst in arb_addr(),
    ) {
        let mut h = TcpHeader::new(sp, dp, TcpFlags(flags));
        h.seq = seq;
        h.ack = ack;
        h.window = window;
        h.urgent = urgent;
        h.options = vec![1u8; opt_words * 4];
        h.fill_checksum(src, dst, &payload);
        let bytes = h.emit();
        let (parsed, consumed) = TcpHeader::parse(&bytes).unwrap();
        prop_assert_eq!(consumed, h.header_len());
        prop_assert_eq!(&parsed, &h);
        prop_assert!(parsed.verify_checksum(src, dst, &payload));
    }

    #[test]
    fn udp_emit_parse_roundtrip(
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        src in arb_addr(), dst in arb_addr(),
    ) {
        let mut h = UdpHeader::new(sp, dp);
        h.set_payload_len(payload.len());
        h.fill_checksum(src, dst, &payload);
        let (parsed, _) = UdpHeader::parse(&h.emit()).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert!(parsed.verify_checksum(src, dst, &payload));
        prop_assert_ne!(parsed.checksum, 0, "filled checksum never 0 on the wire");
    }

    #[test]
    fn icmp_emit_parse_roundtrip(
        ty in any::<u8>(), code in any::<u8>(), rest in any::<[u8; 4]>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut h = IcmpHeader::new(net_types::IcmpType::from_u8(ty), code);
        h.rest = rest;
        h.fill_checksum(&payload);
        let (parsed, _) = IcmpHeader::parse(&h.emit()).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert!(parsed.verify_checksum(&payload));
    }

    #[test]
    fn packet_emit_parse_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        kind in 0u8..4,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let p = match kind {
            0 => Packet::tcp_flags(src, dst, 1, 2, TcpFlags::ACK, payload.clone()),
            1 => Packet::udp(src, dst, UdpHeader::new(3, 4), payload.clone()),
            2 => Packet::icmp(src, dst, IcmpHeader::echo(true, 9, 9), payload.clone()),
            _ => Packet::opaque(src, dst, IpProtocol::Other(47), payload.clone()),
        };
        let parsed = Packet::parse(&p.emit()).unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn snaplen_truncation_preserves_headers(
        src in arb_addr(), dst in arb_addr(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
    ) {
        let p = Packet::tcp_flags(src, dst, 80, 443, TcpFlags::ACK, payload);
        let snapped = p.snap(40);
        let parsed = Packet::parse_truncated(&snapped).unwrap();
        prop_assert_eq!(parsed.ip.src, p.ip.src);
        prop_assert_eq!(parsed.ip.dst, p.ip.dst);
        prop_assert_eq!(parsed.ip.ident, p.ip.ident);
        prop_assert_eq!(parsed.ip.total_len, p.ip.total_len);
        prop_assert_eq!(parsed.transport_checksum(), p.transport_checksum());
        match (&parsed.transport, &p.transport) {
            (Transport::Tcp(a), Transport::Tcp(b)) => {
                prop_assert_eq!(a.src_port, b.src_port);
                prop_assert_eq!(a.seq, b.seq);
            }
            _ => prop_assert!(false, "transport type changed by truncation"),
        }
    }

    #[test]
    fn prefix_contains_consistent_with_masking(addr in any::<u32>(), len in 0u8..=32) {
        let a = Ipv4Addr::from(addr);
        let pfx = Ipv4Prefix::new(a, len).unwrap();
        prop_assert!(pfx.contains(a));
        prop_assert!(pfx.covers(&Ipv4Prefix::new(a, 32).unwrap()));
        // The network address itself is always inside.
        prop_assert!(pfx.contains(pfx.network()));
    }

    #[test]
    fn slash24_grouping_is_an_equivalence(a in any::<u32>(), b in any::<u32>()) {
        let pa = Ipv4Prefix::slash24_of(Ipv4Addr::from(a));
        let pb = Ipv4Prefix::slash24_of(Ipv4Addr::from(b));
        prop_assert_eq!(pa == pb, a >> 8 == b >> 8);
    }
}
