//! The discrete-event simulation engine.

use crate::fib::{Fib, Route};
use crate::link::{LinkCounters, LinkState};
use crate::tap::Tap;
use crate::time::{SimDuration, SimTime};
use crate::topology::{LinkId, NodeId, Topology};
use net_types::{Ipv4Prefix, Packet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;
use telemetry::{LazyCounter, LazyGauge};

static TM_EVENTS_PROCESSED: LazyCounter = LazyCounter::new("simnet.events_processed");
static TM_TAP_EMITS: LazyCounter = LazyCounter::new("simnet.tap_emits");
static TM_QUEUE_DEPTH: LazyGauge = LazyGauge::new("simnet.queue_depth");

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
    /// Whether routers generate ICMP Time Exceeded when a TTL expires —
    /// the mechanism behind the paper's observation that looped traffic is
    /// ICMP-heavy ("routers dropping packets that expire due to loops").
    pub generate_time_exceeded: bool,
    /// Per-router minimum interval between generated ICMP messages
    /// (real routers rate-limit ICMP generation).
    pub icmp_min_interval: SimDuration,
    /// Record one [`DeliveryRecord`] per delivered packet (needed for the
    /// escape-delay analysis; turn off for memory-constrained runs).
    pub record_deliveries: bool,
    /// Safety valve: abort after this many events (loops with ICMP storms
    /// could otherwise run away).
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            generate_time_exceeded: true,
            icmp_min_interval: SimDuration::ZERO,
            record_deliveries: true,
            max_events: u64::MAX,
        }
    }
}

/// Why a packet was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Output queue overflow (congestion — including loop-induced
    /// congestion, the paper's §VI loss mechanism).
    QueueFull,
    /// TTL reached zero (the fate of most looping packets).
    TtlExpired,
    /// No FIB entry matched.
    NoRoute,
    /// The selected output link was down.
    LinkDown,
    /// Injected link fault (line corruption).
    Fault,
    /// An explicit blackhole route.
    Blackhole,
}

impl DropCause {
    /// All causes, for report iteration.
    pub const ALL: [DropCause; 6] = [
        DropCause::QueueFull,
        DropCause::TtlExpired,
        DropCause::NoRoute,
        DropCause::LinkDown,
        DropCause::Fault,
        DropCause::Blackhole,
    ];

    fn index(self) -> usize {
        match self {
            DropCause::QueueFull => 0,
            DropCause::TtlExpired => 1,
            DropCause::NoRoute => 2,
            DropCause::LinkDown => 3,
            DropCause::Fault => 4,
            DropCause::Blackhole => 5,
        }
    }

    /// Human-readable label.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::QueueFull => "queue-full",
            DropCause::TtlExpired => "ttl-expired",
            DropCause::NoRoute => "no-route",
            DropCause::LinkDown => "link-down",
            DropCause::Fault => "fault",
            DropCause::Blackhole => "blackhole",
        }
    }
}

/// One delivered packet (when [`SimConfig::record_deliveries`] is set).
#[derive(Debug, Clone, Copy)]
pub struct DeliveryRecord {
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Injection time.
    pub inject_time: SimTime,
    /// Delivery time.
    pub deliver_time: SimTime,
    /// Whether the packet revisited some router — i.e. it was caught in a
    /// loop and *escaped* (the paper: 25–300 ms extra delay for escapees).
    pub looped: bool,
    /// Router hops traversed.
    pub hops: u32,
}

impl DeliveryRecord {
    /// End-to-end delay.
    pub fn delay(&self) -> SimDuration {
        self.deliver_time - self.inject_time
    }
}

/// One dropped packet.
#[derive(Debug, Clone, Copy)]
pub struct DropRecord {
    /// Drop time.
    pub time: SimTime,
    /// Why.
    pub cause: DropCause,
    /// Destination of the dropped packet.
    pub dst: Ipv4Addr,
    /// Whether the packet had revisited a router before being dropped.
    pub looped: bool,
}

/// Ground truth: a packet arrived at a router it had already visited. The
/// set of these events is exactly "a routing loop was live here", against
/// which the trace-based detector is validated.
#[derive(Debug, Clone, Copy)]
pub struct LoopEvent {
    /// When the revisit happened.
    pub time: SimTime,
    /// The revisited router.
    pub node: NodeId,
    /// Destination of the looping packet.
    pub dst: Ipv4Addr,
}

/// Results of a run.
#[derive(Debug, Default)]
pub struct SimReport {
    /// Host-injected packets.
    pub injected: u64,
    /// Delivered packets.
    pub delivered: u64,
    /// Router-generated ICMP messages.
    pub icmp_generated: u64,
    /// Link-layer duplicates created by fault injection.
    pub duplicates_generated: u64,
    /// Drop counters indexed per [`DropCause`].
    drops: [u64; 6],
    /// Per-delivery records (empty unless configured).
    pub deliveries: Vec<DeliveryRecord>,
    /// Per-drop records.
    pub drop_records: Vec<DropRecord>,
    /// Ground-truth loop events.
    pub loop_events: Vec<LoopEvent>,
    /// Per-link counters (indexed by `LinkId`).
    pub link_counters: Vec<LinkCounters>,
    /// Virtual time of the last processed event.
    pub end_time: SimTime,
    /// Events processed.
    pub events_processed: u64,
    /// True when the run hit `max_events` and stopped early.
    pub truncated: bool,
}

impl SimReport {
    /// Drop count for one cause.
    pub fn drop_count(&self, cause: DropCause) -> u64 {
        self.drops[cause.index()]
    }

    /// Total drops across causes.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Conservation check: every injected or generated packet must be
    /// accounted for as delivered or dropped. (In-flight packets cannot
    /// remain once the event queue drains.)
    pub fn is_conserved(&self) -> bool {
        self.injected + self.icmp_generated + self.duplicates_generated
            == self.delivered + self.total_drops()
    }
}

#[derive(Debug)]
struct Flight {
    packet: Packet,
    inject_time: SimTime,
    visited: Vec<NodeId>,
    looped: bool,
    hops: u32,
    /// True for router-generated ICMP (never spawns further ICMP errors).
    generated: bool,
}

#[derive(Debug)]
enum EventKind {
    Inject {
        node: NodeId,
        packet: Box<Packet>,
    },
    Arrive {
        node: NodeId,
        slot: usize,
    },
    Dequeue {
        link: LinkId,
    },
    FibInsert {
        node: NodeId,
        prefix: Ipv4Prefix,
        route: Route,
    },
    FibRemove {
        node: NodeId,
        prefix: Ipv4Prefix,
    },
    LinkDown {
        link: LinkId,
    },
    LinkUp {
        link: LinkId,
    },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The simulator.
pub struct Engine {
    topo: Topology,
    cfg: SimConfig,
    fibs: Vec<Fib>,
    links: Vec<LinkState>,
    taps: Vec<Tap>,
    tap_of_link: Vec<Option<usize>>,
    flights: Vec<Option<Flight>>,
    free_slots: Vec<usize>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    last_icmp: Vec<Option<SimTime>>,
    icmp_ident: u16,
    report: SimReport,
}

impl Engine {
    /// Creates an engine over a topology.
    pub fn new(topo: Topology, cfg: SimConfig) -> Self {
        for l in topo.links() {
            l.faults.validate();
        }
        let n_nodes = topo.num_nodes();
        let n_links = topo.num_links();
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            fibs: (0..n_nodes).map(|_| Fib::new()).collect(),
            links: (0..n_links).map(|_| LinkState::new()).collect(),
            taps: Vec::new(),
            tap_of_link: vec![None; n_links],
            flights: Vec::new(),
            free_slots: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng,
            last_icmp: vec![None; n_nodes],
            icmp_ident: 0,
            report: SimReport {
                link_counters: vec![LinkCounters::default(); n_links],
                ..SimReport::default()
            },
            topo,
            cfg,
        }
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Read access to a node's FIB.
    pub fn fib(&self, node: NodeId) -> &Fib {
        &self.fibs[node.0]
    }

    /// Installs a route immediately (pre-run setup).
    pub fn install_route(&mut self, node: NodeId, prefix: Ipv4Prefix, route: Route) {
        self.fibs[node.0].insert(prefix, route);
    }

    /// Removes a route immediately (pre-run setup).
    pub fn remove_route(&mut self, node: NodeId, prefix: Ipv4Prefix) {
        self.fibs[node.0].remove(prefix);
    }

    /// Attaches a tap to a link; returns its index into [`Engine::taps`].
    ///
    /// # Panics
    /// Panics when the link already has a tap.
    pub fn add_tap(&mut self, link: LinkId) -> usize {
        assert!(self.tap_of_link[link.0].is_none(), "link already has a tap");
        let idx = self.taps.len();
        self.taps.push(Tap::new(link));
        self.tap_of_link[link.0] = Some(idx);
        idx
    }

    /// Taps and their records (valid after `run`).
    pub fn taps(&self) -> &[Tap] {
        &self.taps
    }

    /// Consumes the taps (to avoid cloning large traces).
    pub fn take_taps(&mut self) -> Vec<Tap> {
        for slot in self.tap_of_link.iter_mut() {
            *slot = None;
        }
        std::mem::take(&mut self.taps)
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    /// Schedules a host packet injection.
    pub fn schedule_inject(&mut self, time: SimTime, node: NodeId, packet: Packet) {
        self.push_event(
            time,
            EventKind::Inject {
                node,
                packet: Box::new(packet),
            },
        );
    }

    /// Schedules a FIB route installation (control-plane update).
    pub fn schedule_fib_insert(
        &mut self,
        time: SimTime,
        node: NodeId,
        prefix: Ipv4Prefix,
        route: Route,
    ) {
        self.push_event(
            time,
            EventKind::FibInsert {
                node,
                prefix,
                route,
            },
        );
    }

    /// Schedules a FIB route withdrawal.
    pub fn schedule_fib_remove(&mut self, time: SimTime, node: NodeId, prefix: Ipv4Prefix) {
        self.push_event(time, EventKind::FibRemove { node, prefix });
    }

    /// Schedules a link failure.
    pub fn schedule_link_down(&mut self, time: SimTime, link: LinkId) {
        self.push_event(time, EventKind::LinkDown { link });
    }

    /// Schedules a link recovery.
    pub fn schedule_link_up(&mut self, time: SimTime, link: LinkId) {
        self.push_event(time, EventKind::LinkUp { link });
    }

    fn alloc(&mut self, flight: Flight) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            self.flights[slot] = Some(flight);
            slot
        } else {
            self.flights.push(Some(flight));
            self.flights.len() - 1
        }
    }

    fn take(&mut self, slot: usize) -> Flight {
        let f = self.flights[slot].take().expect("flight slot empty");
        self.free_slots.push(slot);
        f
    }

    /// Runs until the event queue drains (or `max_events`), returning the
    /// report. Taps stay on the engine; fetch them with
    /// [`Engine::taps`]/[`Engine::take_taps`].
    pub fn run(&mut self) -> SimReport {
        while let Some(Reverse(ev)) = self.events.pop() {
            if self.report.events_processed >= self.cfg.max_events {
                self.report.truncated = true;
                break;
            }
            self.report.events_processed += 1;
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            match ev.kind {
                EventKind::Inject { node, packet } => self.handle_inject(node, *packet),
                EventKind::Arrive { node, slot } => {
                    let flight = self.take(slot);
                    self.route_and_forward(node, flight);
                }
                EventKind::Dequeue { link } => self.handle_dequeue(link),
                EventKind::FibInsert {
                    node,
                    prefix,
                    route,
                } => {
                    self.fibs[node.0].insert(prefix, route);
                }
                EventKind::FibRemove { node, prefix } => {
                    self.fibs[node.0].remove(prefix);
                }
                EventKind::LinkDown { link } => self.handle_link_down(link),
                EventKind::LinkUp { link } => {
                    self.links[link.0].up = true;
                }
            }
        }
        self.report.end_time = self.now;
        TM_EVENTS_PROCESSED.add(self.report.events_processed);
        for (i, l) in self.links.iter().enumerate() {
            self.report.link_counters[i] = l.counters;
        }
        std::mem::replace(
            &mut self.report,
            SimReport {
                link_counters: vec![LinkCounters::default(); self.topo.num_links()],
                ..SimReport::default()
            },
        )
    }

    fn handle_inject(&mut self, node: NodeId, packet: Packet) {
        self.report.injected += 1;
        let flight = Flight {
            packet,
            inject_time: self.now,
            visited: Vec::new(),
            looped: false,
            hops: 0,
            generated: false,
        };
        self.route_and_forward(node, flight);
    }

    fn record_drop(&mut self, cause: DropCause, flight: &Flight) {
        self.report.drops[cause.index()] += 1;
        self.report.drop_records.push(DropRecord {
            time: self.now,
            cause,
            dst: flight.packet.ip.dst,
            looped: flight.looped,
        });
    }

    fn deliver(&mut self, flight: Flight) {
        self.report.delivered += 1;
        if self.cfg.record_deliveries {
            self.report.deliveries.push(DeliveryRecord {
                dst: flight.packet.ip.dst,
                inject_time: flight.inject_time,
                deliver_time: self.now,
                looped: flight.looped,
                hops: flight.hops,
            });
        }
    }

    fn route_and_forward(&mut self, node: NodeId, mut flight: Flight) {
        let dst = flight.packet.ip.dst;
        let node_cfg = self.topo.node(node);
        // Local delivery?
        if dst == node_cfg.address || node_cfg.local_prefixes.iter().any(|p| p.contains(dst)) {
            self.deliver(flight);
            return;
        }
        // Ground-truth loop detection: a revisit means the packet is caught
        // in a forwarding loop right now.
        if flight.visited.contains(&node) {
            flight.looped = true;
            self.report.loop_events.push(LoopEvent {
                time: self.now,
                node,
                dst,
            });
        }
        flight.visited.push(node);
        match self.fibs[node.0].lookup(dst) {
            None => self.record_drop(DropCause::NoRoute, &flight),
            Some(Route::Blackhole) => self.record_drop(DropCause::Blackhole, &flight),
            Some(Route::Local) => self.deliver(flight),
            Some(route @ (Route::Link(_) | Route::Ecmp(_))) => {
                let link = route
                    .resolve(flow_hash(&flight.packet))
                    .expect("Link/Ecmp always resolve");
                // A router forwards by decrementing the TTL first; a packet
                // whose TTL hits zero is discarded with Time Exceeded.
                if flight.packet.ip.ttl <= 1 {
                    let expired_src = flight.packet.ip.src;
                    let expired_bytes = flight.packet.emit();
                    let was_generated = flight.generated;
                    let is_icmp = flight.packet.protocol() == net_types::IpProtocol::Icmp;
                    self.record_drop(DropCause::TtlExpired, &flight);
                    if self.cfg.generate_time_exceeded && !was_generated && !is_icmp {
                        self.generate_time_exceeded(node, expired_src, &expired_bytes);
                    }
                    return;
                }
                let ok = flight.packet.ip.decrement_ttl();
                debug_assert!(ok);
                flight.hops += 1;
                self.enqueue(link, flight);
            }
        }
    }

    fn generate_time_exceeded(&mut self, node: NodeId, dst: Ipv4Addr, expired_bytes: &[u8]) {
        // Per-router rate limit.
        if self.cfg.icmp_min_interval > SimDuration::ZERO {
            if let Some(last) = self.last_icmp[node.0] {
                if self.now.since(last) < self.cfg.icmp_min_interval {
                    return;
                }
            }
        }
        self.last_icmp[node.0] = Some(self.now);
        let src = self.topo.node(node).address;
        // RFC 792: the body carries the offending IP header + first 8 bytes
        // of its payload.
        let body_len = expired_bytes.len().min(28);
        let mut pkt = Packet::icmp(
            src,
            dst,
            net_types::IcmpHeader::time_exceeded(),
            expired_bytes[..body_len].to_vec(),
        );
        pkt.ip.ttl = 255;
        self.icmp_ident = self.icmp_ident.wrapping_add(1);
        pkt.ip.ident = self.icmp_ident;
        pkt.fill_checksums();
        self.report.icmp_generated += 1;
        let flight = Flight {
            packet: pkt,
            inject_time: self.now,
            visited: Vec::new(),
            looped: false,
            hops: 0,
            generated: true,
        };
        self.route_and_forward(node, flight);
    }

    fn enqueue(&mut self, link_id: LinkId, flight: Flight) {
        let capacity = self.topo.link(link_id).queue_capacity;
        let link = &mut self.links[link_id.0];
        if !link.up {
            link.counters.down_drops += 1;
            self.record_drop(DropCause::LinkDown, &flight);
            return;
        }
        if link.queue.len() >= capacity {
            link.counters.queue_drops += 1;
            self.record_drop(DropCause::QueueFull, &flight);
            return;
        }
        let slot = self.alloc(flight);
        let link = &mut self.links[link_id.0];
        link.queue.push_back(slot);
        TM_QUEUE_DEPTH.add(1);
        if !link.busy {
            link.busy = true;
            self.push_event(self.now, EventKind::Dequeue { link: link_id });
        }
    }

    fn handle_dequeue(&mut self, link_id: LinkId) {
        let cfg = self.topo.link(link_id).clone();
        let state = &mut self.links[link_id.0];
        if !state.up {
            // Link died while busy: queued packets were already drained by
            // handle_link_down; just go idle.
            state.busy = false;
            return;
        }
        let Some(slot) = state.queue.pop_front() else {
            state.busy = false;
            return;
        };
        TM_QUEUE_DEPTH.add(-1);
        let flight = self.take(slot);
        let wire_len = flight.packet.wire_len();
        let packet_copy = flight.packet.clone();
        let ser = SimDuration::serialization(wire_len, cfg.bandwidth_bps);
        let state = &mut self.links[link_id.0];
        state.counters.tx_packets += 1;
        state.counters.tx_bytes += wire_len as u64;
        // Fault decisions (skip the RNG entirely on clean links so runs with
        // and without faults consume the same random stream for clean links).
        let (dup, corrupt) = if cfg.faults.is_none() {
            (false, false)
        } else {
            (
                self.rng.gen_bool(cfg.faults.duplicate_prob),
                self.rng.gen_bool(cfg.faults.drop_prob),
            )
        };
        // The monitor sees the packet as it hits the wire.
        if let Some(tap_idx) = self.tap_of_link[link_id.0] {
            self.taps[tap_idx].record(self.now, flight.packet.clone());
            TM_TAP_EMITS.inc();
        }
        let mut next_free = self.now + ser;
        if corrupt {
            self.links[link_id.0].counters.fault_drops += 1;
            self.record_drop(DropCause::Fault, &flight);
        } else {
            let arrive_at = self.now + ser + cfg.prop_delay;
            let slot = self.alloc(flight);
            self.push_event(arrive_at, EventKind::Arrive { node: cfg.to, slot });
        }
        if dup {
            // The duplicate occupies the wire for a second serialization
            // slot immediately after the original — a link-layer artefact,
            // not a routing loop. A protection-path duplicate arrives with
            // extra TTL decrements (it crossed more routers), checksum
            // patched per RFC 1624 like real forwarding hardware.
            self.links[link_id.0].counters.duplicates += 1;
            self.report.duplicates_generated += 1;
            let mut packet_copy = packet_copy;
            for _ in 0..cfg.faults.duplicate_ttl_skew {
                if !packet_copy.ip.decrement_ttl() {
                    break;
                }
            }
            if let Some(tap_idx) = self.tap_of_link[link_id.0] {
                self.taps[tap_idx].record(self.now + ser, packet_copy.clone());
                TM_TAP_EMITS.inc();
            }
            let dup_flight = Flight {
                packet: packet_copy,
                inject_time: self.now,
                visited: Vec::new(),
                looped: false,
                hops: 0,
                generated: true, // duplicates never spawn ICMP
            };
            let slot = self.alloc(dup_flight);
            self.push_event(
                self.now + ser + ser + cfg.prop_delay,
                EventKind::Arrive { node: cfg.to, slot },
            );
            next_free = self.now + ser + ser;
        }
        let state = &mut self.links[link_id.0];
        state.busy = true;
        state.busy_until = next_free;
        self.push_event(next_free, EventKind::Dequeue { link: link_id });
    }

    fn handle_link_down(&mut self, link_id: LinkId) {
        let state = &mut self.links[link_id.0];
        state.up = false;
        let queued: Vec<usize> = state.queue.drain(..).collect();
        TM_QUEUE_DEPTH.add(-(queued.len() as i64));
        for slot in queued {
            let flight = self.take(slot);
            self.links[link_id.0].counters.down_drops += 1;
            self.record_drop(DropCause::LinkDown, &flight);
        }
    }
}

/// Flow hash for ECMP path selection: identical for every packet of a
/// flow (5-tuple when ports exist, 3-tuple otherwise), well-mixed so
/// `hash % n` balances. Deterministic across runs — the same flow always
/// rides the same path, as real hashed multipath does.
fn flow_hash(p: &Packet) -> u64 {
    let (sp, dp) = p.ports().unwrap_or((0, 0));
    let mut x = (u64::from(u32::from(p.ip.src)) << 32) | u64::from(u32::from(p.ip.dst));
    x ^= u64::from(p.ip.protocol.as_u8()) << 17;
    x ^= (u64::from(sp) << 48) | (u64::from(dp) << 32);
    // splitmix64 finalizer.
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::topology::TopologyBuilder;
    use net_types::tcp::TcpFlags;

    const MBPS: u64 = 1_000_000;

    fn addr(i: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 200, 0, i)
    }

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn test_packet(dst: Ipv4Addr, ttl: u8) -> Packet {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(172, 16, 0, 1),
            dst,
            40000,
            80,
            TcpFlags::ACK,
            vec![0u8; 100],
        );
        p.ip.ttl = ttl;
        p.ip.ident = 0x1111;
        p.fill_checksums();
        p
    }

    /// host -- r1 -- r2 -- dest(192.0.2.0/24)
    fn line_topology() -> (Topology, [NodeId; 4], [LinkId; 3]) {
        let mut b = TopologyBuilder::new();
        let host = b.node("host", addr(1));
        let r1 = b.node("r1", addr(2));
        let r2 = b.node("r2", addr(3));
        let dest = b.node("dest", addr(4));
        b.attach_prefix(dest, pfx("192.0.2.0/24"));
        let l0 = b.link(host, r1, 100 * MBPS, SimDuration::from_millis(1));
        let l1 = b.link(r1, r2, 100 * MBPS, SimDuration::from_millis(1));
        let l2 = b.link(r2, dest, 100 * MBPS, SimDuration::from_millis(1));
        (b.build(), [host, r1, r2, dest], [l0, l1, l2])
    }

    fn wire_line(engine: &mut Engine, nodes: &[NodeId; 4], links: &[LinkId; 3]) {
        let p = pfx("192.0.2.0/24");
        engine.install_route(nodes[0], p, Route::Link(links[0]));
        engine.install_route(nodes[1], p, Route::Link(links[1]));
        engine.install_route(nodes[2], p, Route::Link(links[2]));
    }

    #[test]
    fn delivers_along_line() {
        let (topo, nodes, links) = line_topology();
        let mut e = Engine::new(topo, SimConfig::default());
        wire_line(&mut e, &nodes, &links);
        let dst = Ipv4Addr::new(192, 0, 2, 55);
        e.schedule_inject(SimTime::ZERO, nodes[0], test_packet(dst, 64));
        let report = e.run();
        assert_eq!(report.injected, 1);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.total_drops(), 0);
        assert!(report.is_conserved());
        let d = &report.deliveries[0];
        assert_eq!(d.dst, dst);
        assert_eq!(d.hops, 3);
        assert!(!d.looped);
        // 3 links × (serialization + 1 ms propagation); 140 B at 100 Mbps
        // is 11.2 µs per hop.
        let delay = d.delay();
        assert!(delay > SimDuration::from_millis(3), "delay {delay}");
        assert!(delay < SimDuration::from_millis(4), "delay {delay}");
    }

    #[test]
    fn ttl_decremented_per_hop_and_checksum_valid() {
        let (topo, nodes, links) = line_topology();
        let mut e = Engine::new(topo, SimConfig::default());
        wire_line(&mut e, &nodes, &links);
        e.add_tap(links[2]);
        let dst = Ipv4Addr::new(192, 0, 2, 55);
        e.schedule_inject(SimTime::ZERO, nodes[0], test_packet(dst, 64));
        e.run();
        let rec = &e.taps()[0].records[0];
        // host, r1, r2 each decrement before transmitting on the next link;
        // on the final link the TTL has gone 64 -> 61.
        assert_eq!(rec.packet.ip.ttl, 61);
        assert!(rec.packet.ip.verify_checksum());
    }

    #[test]
    fn no_route_drops() {
        let (topo, nodes, _links) = line_topology();
        let mut e = Engine::new(topo, SimConfig::default());
        // No routes installed at all.
        e.schedule_inject(
            SimTime::ZERO,
            nodes[0],
            test_packet(Ipv4Addr::new(192, 0, 2, 55), 64),
        );
        let report = e.run();
        assert_eq!(report.drop_count(DropCause::NoRoute), 1);
        assert!(report.is_conserved());
    }

    #[test]
    fn blackhole_route_drops() {
        let (topo, nodes, _links) = line_topology();
        let mut e = Engine::new(topo, SimConfig::default());
        e.install_route(nodes[0], pfx("192.0.2.0/24"), Route::Blackhole);
        e.schedule_inject(
            SimTime::ZERO,
            nodes[0],
            test_packet(Ipv4Addr::new(192, 0, 2, 1), 64),
        );
        let report = e.run();
        assert_eq!(report.drop_count(DropCause::Blackhole), 1);
    }

    /// Two routers pointing at each other: the classic transient micro-loop.
    fn loop_topology() -> (Topology, [NodeId; 3], [LinkId; 4]) {
        let mut b = TopologyBuilder::new();
        let host = b.node("host", addr(1));
        let r1 = b.node("r1", addr(2));
        let r2 = b.node("r2", addr(3));
        let l_host = b.link(host, r1, 100 * MBPS, SimDuration::from_micros(100));
        let (l12, l21) = b.duplex(r1, r2, 100 * MBPS, SimDuration::from_micros(500));
        // An exit link that is never wired into any FIB, so packets cannot
        // escape; it exists to make the topology realistic.
        let l_exit = b.link(r2, host, 100 * MBPS, SimDuration::from_micros(100));
        (b.build(), [host, r1, r2], [l_host, l12, l21, l_exit])
    }

    #[test]
    fn forwarding_loop_expires_ttl_and_replicates_on_tap() {
        let (topo, nodes, links) = loop_topology();
        let mut e = Engine::new(
            topo,
            SimConfig {
                generate_time_exceeded: false,
                ..SimConfig::default()
            },
        );
        let p = pfx("203.0.113.0/24");
        // r1 -> r2 and r2 -> r1: a two-node loop for this prefix.
        e.install_route(nodes[0], p, Route::Link(links[0]));
        e.install_route(nodes[1], p, Route::Link(links[1]));
        e.install_route(nodes[2], p, Route::Link(links[2]));
        e.add_tap(links[1]); // monitor r1 -> r2
        let dst = Ipv4Addr::new(203, 0, 113, 7);
        e.schedule_inject(SimTime::ZERO, nodes[0], test_packet(dst, 64));
        let report = e.run();
        assert_eq!(report.delivered, 0);
        assert_eq!(report.drop_count(DropCause::TtlExpired), 1);
        assert!(report.is_conserved());
        // Ground truth saw the loop.
        assert!(!report.loop_events.is_empty());
        assert!(report.loop_events.iter().all(|ev| ev.dst == dst));
        // The tap saw the packet many times with TTL decreasing by 2 each
        // traversal (two routers in the loop).
        let recs = &e.taps()[0].records;
        // TTL 64 at injection, host decrements to 63; r1 transmits at 62,
        // 60, 58, ... -> 31 sightings for the r1->r2 direction.
        assert!(recs.len() >= 30, "got {} sightings", recs.len());
        for w in recs.windows(2) {
            let a = w[0].packet.ip.ttl;
            let b = w[1].packet.ip.ttl;
            assert_eq!(a - b, 2, "TTL delta between replicas");
            assert_eq!(w[0].packet.ip.ident, w[1].packet.ip.ident);
            assert_eq!(
                w[0].packet.transport_checksum(),
                w[1].packet.transport_checksum()
            );
            assert!(w[1].packet.ip.verify_checksum());
        }
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded_back_to_source() {
        let (topo, nodes, links) = loop_topology();
        let mut e = Engine::new(topo, SimConfig::default());
        let p = pfx("203.0.113.0/24");
        e.install_route(nodes[0], p, Route::Link(links[0]));
        e.install_route(nodes[1], p, Route::Link(links[1]));
        e.install_route(nodes[2], p, Route::Link(links[2]));
        // Route back to the source so the ICMP can travel: r1 -> r2 -> host
        // (links[3] is the r2 -> host exit link).
        let back = pfx("172.16.0.0/16");
        e.install_route(nodes[1], back, Route::Link(links[1]));
        e.install_route(nodes[2], back, Route::Link(links[3]));
        let dst = Ipv4Addr::new(203, 0, 113, 7);
        e.schedule_inject(SimTime::ZERO, nodes[0], test_packet(dst, 8));
        let report = e.run();
        assert_eq!(report.icmp_generated, 1);
        assert_eq!(report.drop_count(DropCause::TtlExpired), 1);
        // The ICMP either reached the host (no local prefix -> dropped as
        // no-route at host) — either way conservation holds.
        assert!(report.is_conserved());
    }

    #[test]
    fn queue_overflow_drops() {
        let mut b = TopologyBuilder::new();
        let a_ = b.node("a", addr(1));
        let c = b.node("c", addr(2));
        b.attach_prefix(c, pfx("192.0.2.0/24"));
        // Slow link (1 Mbps), tiny queue (2 packets).
        let l = b.link_with(
            a_,
            c,
            MBPS,
            SimDuration::from_millis(1),
            2,
            FaultConfig::none(),
        );
        let topo = b.build();
        let mut e = Engine::new(topo, SimConfig::default());
        e.install_route(a_, pfx("192.0.2.0/24"), Route::Link(l));
        // Burst of 10 packets at t=0. The serializer only starts after the
        // whole same-instant burst has been enqueued, so the queue (capacity
        // 2, including the head being transmitted) admits 2 and drops 8.
        for _ in 0..10 {
            e.schedule_inject(
                SimTime::ZERO,
                a_,
                test_packet(Ipv4Addr::new(192, 0, 2, 1), 64),
            );
        }
        let report = e.run();
        assert_eq!(report.delivered, 2);
        assert_eq!(report.drop_count(DropCause::QueueFull), 8);
        assert_eq!(report.link_counters[l.0].queue_drops, 8);
        assert!(report.is_conserved());
    }

    #[test]
    fn link_down_drops_and_up_restores() {
        let (topo, nodes, links) = line_topology();
        let mut e = Engine::new(topo, SimConfig::default());
        wire_line(&mut e, &nodes, &links);
        e.schedule_link_down(SimTime::from_millis(10), links[1]);
        e.schedule_link_up(SimTime::from_millis(20), links[1]);
        let dst = Ipv4Addr::new(192, 0, 2, 9);
        // One packet while up, one while down, one after recovery.
        e.schedule_inject(SimTime::ZERO, nodes[0], test_packet(dst, 64));
        e.schedule_inject(SimTime::from_millis(15), nodes[0], test_packet(dst, 64));
        e.schedule_inject(SimTime::from_millis(25), nodes[0], test_packet(dst, 64));
        let report = e.run();
        assert_eq!(report.delivered, 2);
        assert_eq!(report.drop_count(DropCause::LinkDown), 1);
        assert!(report.is_conserved());
    }

    #[test]
    fn midrun_fib_update_heals_loop() {
        let (topo, nodes, links) = loop_topology();
        let mut e = Engine::new(
            topo,
            SimConfig {
                generate_time_exceeded: false,
                ..SimConfig::default()
            },
        );
        let p = pfx("203.0.113.0/24");
        e.install_route(nodes[0], p, Route::Link(links[0]));
        e.install_route(nodes[1], p, Route::Link(links[1]));
        e.install_route(nodes[2], p, Route::Link(links[2])); // loop!
                                                             // At t = 3 ms, r2 learns the truth: deliver locally.
        e.schedule_fib_insert(SimTime::from_millis(3), nodes[2], p, Route::Local);
        let dst = Ipv4Addr::new(203, 0, 113, 7);
        e.schedule_inject(SimTime::ZERO, nodes[0], test_packet(dst, 255));
        let report = e.run();
        // The packet loops for ~3 ms, then escapes and is delivered.
        assert_eq!(report.delivered, 1);
        assert!(report.deliveries[0].looped, "the escapee must be marked");
        assert!(!report.loop_events.is_empty());
        assert!(report.deliveries[0].delay() >= SimDuration::from_millis(3));
        assert!(report.is_conserved());
    }

    #[test]
    fn duplicate_fault_produces_unchanged_ttl_copies() {
        let mut b = TopologyBuilder::new();
        let a_ = b.node("a", addr(1));
        let c = b.node("c", addr(2));
        b.attach_prefix(c, pfx("192.0.2.0/24"));
        let l = b.link_with(
            a_,
            c,
            100 * MBPS,
            SimDuration::from_millis(1),
            64,
            FaultConfig::duplicates(1.0), // always duplicate
        );
        let topo = b.build();
        let mut e = Engine::new(topo, SimConfig::default());
        e.install_route(a_, pfx("192.0.2.0/24"), Route::Link(l));
        e.add_tap(l);
        e.schedule_inject(
            SimTime::ZERO,
            a_,
            test_packet(Ipv4Addr::new(192, 0, 2, 1), 64),
        );
        let report = e.run();
        // Original + duplicate both delivered (duplicate counts as
        // generated traffic for conservation).
        assert_eq!(report.delivered, 2);
        assert_eq!(report.duplicates_generated, 1);
        assert!(report.is_conserved());
        let recs = &e.taps()[0].records;
        assert_eq!(recs.len(), 2, "tap sees both copies");
        assert_eq!(
            recs[0].packet.ip.ttl, recs[1].packet.ip.ttl,
            "TTL unchanged"
        );
        assert_eq!(recs[0].packet, recs[1].packet);
        assert_eq!(report.link_counters[l.0].duplicates, 1);
    }

    #[test]
    fn protection_duplicate_arrives_with_skewed_ttl() {
        let mut b = TopologyBuilder::new();
        let a_ = b.node("a", addr(1));
        let c = b.node("c", addr(2));
        b.attach_prefix(c, pfx("192.0.2.0/24"));
        let l = b.link_with(
            a_,
            c,
            100 * MBPS,
            SimDuration::from_millis(1),
            64,
            FaultConfig::protection_duplicates(1.0, 2),
        );
        let topo = b.build();
        let mut e = Engine::new(topo, SimConfig::default());
        e.install_route(a_, pfx("192.0.2.0/24"), Route::Link(l));
        e.add_tap(l);
        e.schedule_inject(
            SimTime::ZERO,
            a_,
            test_packet(Ipv4Addr::new(192, 0, 2, 1), 64),
        );
        let report = e.run();
        assert_eq!(report.delivered, 2);
        let recs = &e.taps()[0].records;
        assert_eq!(recs.len(), 2);
        // The copy shows up 2 TTL lower with a consistent checksum — the
        // 2-element false replica stream §IV-A.2 guards against.
        assert_eq!(recs[0].packet.ip.ttl - recs[1].packet.ip.ttl, 2);
        assert!(recs[1].packet.ip.verify_checksum());
        assert_eq!(
            recs[0].packet.transport_checksum(),
            recs[1].packet.transport_checksum()
        );
    }

    #[test]
    fn random_drop_fault() {
        let mut b = TopologyBuilder::new();
        let a_ = b.node("a", addr(1));
        let c = b.node("c", addr(2));
        b.attach_prefix(c, pfx("192.0.2.0/24"));
        let l = b.link_with(
            a_,
            c,
            100 * MBPS,
            SimDuration::from_millis(1),
            4096,
            FaultConfig::drops(1.0), // drop everything
        );
        let topo = b.build();
        let mut e = Engine::new(topo, SimConfig::default());
        e.install_route(a_, pfx("192.0.2.0/24"), Route::Link(l));
        for _ in 0..5 {
            e.schedule_inject(
                SimTime::ZERO,
                a_,
                test_packet(Ipv4Addr::new(192, 0, 2, 1), 64),
            );
        }
        let report = e.run();
        assert_eq!(report.delivered, 0);
        assert_eq!(report.drop_count(DropCause::Fault), 5);
        assert!(report.is_conserved());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let (topo, nodes, links) = line_topology();
            let mut e = Engine::new(
                topo,
                SimConfig {
                    seed: 42,
                    ..SimConfig::default()
                },
            );
            wire_line(&mut e, &nodes, &links);
            e.add_tap(links[1]);
            for i in 0..50u64 {
                let mut p = test_packet(Ipv4Addr::new(192, 0, 2, (i % 200) as u8), 64);
                p.ip.ident = i as u16;
                p.fill_checksums();
                e.schedule_inject(SimTime(i * 10_000), nodes[0], p);
            }
            let report = e.run();
            let tap_sig: Vec<(u64, u16)> = e.taps()[0]
                .records
                .iter()
                .map(|r| (r.time.as_nanos(), r.packet.ip.ident))
                .collect();
            (report.delivered, report.events_processed, tap_sig)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn max_events_truncates() {
        let (topo, nodes, links) = loop_topology();
        let mut e = Engine::new(
            topo,
            SimConfig {
                max_events: 10,
                generate_time_exceeded: false,
                ..SimConfig::default()
            },
        );
        let p = pfx("203.0.113.0/24");
        e.install_route(nodes[0], p, Route::Link(links[0]));
        e.install_route(nodes[1], p, Route::Link(links[1]));
        e.install_route(nodes[2], p, Route::Link(links[2]));
        e.schedule_inject(
            SimTime::ZERO,
            nodes[0],
            test_packet(Ipv4Addr::new(203, 0, 113, 1), 255),
        );
        let report = e.run();
        assert!(report.truncated);
    }

    #[test]
    fn tap_on_busy_link_observes_everything_in_order() {
        let (topo, nodes, links) = line_topology();
        let mut e = Engine::new(topo, SimConfig::default());
        wire_line(&mut e, &nodes, &links);
        e.add_tap(links[0]);
        for i in 0..20u16 {
            let mut p = test_packet(Ipv4Addr::new(192, 0, 2, 1), 64);
            p.ip.ident = i;
            p.fill_checksums();
            e.schedule_inject(SimTime::ZERO, nodes[0], p);
        }
        let report = e.run();
        assert_eq!(report.delivered, 20);
        let recs = &e.taps()[0].records;
        assert_eq!(recs.len(), 20);
        // FIFO order preserved; timestamps strictly increase (serialization
        // separates transmissions).
        for w in recs.windows(2) {
            assert!(w[0].time < w[1].time);
            assert!(w[0].packet.ip.ident < w[1].packet.ip.ident);
        }
    }

    #[test]
    fn icmp_rate_limit_suppresses_bursts() {
        // A burst of TTL-expiring packets at one router must generate at
        // most one Time Exceeded per rate-limit interval.
        let mut b = TopologyBuilder::new();
        let a_ = b.node("a", addr(1));
        let r = b.node("r", addr(2));
        let l = b.link(a_, r, 100 * MBPS, SimDuration::from_micros(100));
        let topo = b.build();
        let mut e = Engine::new(
            topo,
            SimConfig {
                icmp_min_interval: SimDuration::from_millis(100),
                ..SimConfig::default()
            },
        );
        e.install_route(a_, pfx("192.0.2.0/24"), Route::Link(l));
        // r has no route: packets arrive with TTL 1 and expire there.
        e.install_route(r, pfx("192.0.2.0/24"), Route::Link(l));
        // Wait: r's only link goes back... give r a blackhole-free setup:
        // actually force expiry AT r by sending TTL=2 packets (a_ burns 1).
        for i in 0..50u16 {
            let mut p = test_packet(Ipv4Addr::new(192, 0, 2, 1), 2);
            p.ip.ident = i;
            p.fill_checksums();
            e.schedule_inject(SimTime(u64::from(i) * 10_000), a_, p);
        }
        let report = e.run();
        assert_eq!(report.drop_count(DropCause::TtlExpired), 50);
        // 50 packets over ~0.5 ms: only the first ICMP fits the 100 ms
        // rate-limit window.
        assert_eq!(report.icmp_generated, 1, "{report:?}");
        assert!(report.is_conserved());
    }

    #[test]
    fn icmp_never_generated_for_icmp_or_generated_packets() {
        let mut b = TopologyBuilder::new();
        let a_ = b.node("a", addr(1));
        let r = b.node("r", addr(2));
        let l = b.link(a_, r, 100 * MBPS, SimDuration::from_micros(100));
        let topo = b.build();
        let mut e = Engine::new(topo, SimConfig::default());
        e.install_route(a_, pfx("192.0.2.0/24"), Route::Link(l));
        e.install_route(r, pfx("192.0.2.0/24"), Route::Link(l));
        // An ICMP echo that expires: no Time Exceeded about ICMP.
        let mut p = Packet::icmp(
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(192, 0, 2, 1),
            net_types::IcmpHeader::echo(true, 1, 1),
            vec![0u8; 8],
        );
        p.ip.ttl = 2;
        p.fill_checksums();
        e.schedule_inject(SimTime::ZERO, a_, p);
        let report = e.run();
        assert_eq!(report.drop_count(DropCause::TtlExpired), 1);
        assert_eq!(report.icmp_generated, 0);
    }

    #[test]
    fn link_flapping_drains_and_recovers_repeatedly() {
        let (topo, nodes, links) = line_topology();
        let mut e = Engine::new(topo, SimConfig::default());
        wire_line(&mut e, &nodes, &links);
        // Flap the middle link five times.
        for k in 0..5u64 {
            e.schedule_link_down(SimTime::from_millis(10 + 20 * k), links[1]);
            e.schedule_link_up(SimTime::from_millis(20 + 20 * k), links[1]);
        }
        // Steady packet stream across the flaps.
        let dst = Ipv4Addr::new(192, 0, 2, 9);
        for i in 0..120u64 {
            let mut p = test_packet(dst, 64);
            p.ip.ident = i as u16;
            p.fill_checksums();
            e.schedule_inject(SimTime::from_millis(i), nodes[0], p);
        }
        let report = e.run();
        assert!(report.is_conserved());
        // Roughly half the stream falls into down windows.
        assert!(report.delivered > 40, "delivered {}", report.delivered);
        assert!(report.drop_count(DropCause::LinkDown) > 20, "{report:?}");
        assert_eq!(
            report.delivered + report.total_drops(),
            120 + report.icmp_generated
        );
    }

    #[test]
    fn ecmp_member_link_down_drops_hashed_flows() {
        use crate::fib::EcmpSet;
        // ECMP over two links, one of which is down: flows hashed onto the
        // dead member drop (the FIB has not yet reconverged — exactly the
        // transient the control plane later repairs).
        let mut b = TopologyBuilder::new();
        let a_ = b.node("a", addr(1));
        let nb = b.node("b", addr(2));
        let nc = b.node("c", addr(3));
        let nd = b.node("d", addr(4));
        b.attach_prefix(nd, pfx("192.0.2.0/24"));
        let l_ab = b.link(a_, nb, 100 * MBPS, SimDuration::from_millis(1));
        let l_ac = b.link(a_, nc, 100 * MBPS, SimDuration::from_millis(1));
        let l_bd = b.link(nb, nd, 100 * MBPS, SimDuration::from_millis(1));
        let l_cd = b.link(nc, nd, 100 * MBPS, SimDuration::from_millis(1));
        let topo = b.build();
        let mut e = Engine::new(topo, SimConfig::default());
        let p = pfx("192.0.2.0/24");
        e.install_route(a_, p, Route::Ecmp(EcmpSet::new(&[l_ab, l_ac])));
        e.install_route(nb, p, Route::Link(l_bd));
        e.install_route(nc, p, Route::Link(l_cd));
        e.schedule_link_down(SimTime::ZERO, l_ab);
        for f in 0..100u16 {
            let mut pkt = Packet::tcp_flags(
                Ipv4Addr::new(172, 16, 0, 1),
                Ipv4Addr::new(192, 0, 2, 1),
                5_000 + f,
                80,
                net_types::TcpFlags::ACK,
                vec![0u8; 64],
            );
            pkt.ip.ident = f;
            pkt.fill_checksums();
            e.schedule_inject(SimTime(1_000 + u64::from(f)), a_, pkt);
        }
        let report = e.run();
        assert!(report.is_conserved());
        let dropped = report.drop_count(DropCause::LinkDown);
        assert!(dropped > 20 && dropped < 80, "hash split, got {dropped}");
        assert_eq!(report.delivered + dropped, 100);
    }

    #[test]
    fn ecmp_splits_flows_across_paths() {
        use crate::fib::EcmpSet;
        // a -> {b, c} -> d(local prefix): two equal paths from a.
        let mut bld = TopologyBuilder::new();
        let a_ = bld.node("a", addr(1));
        let nb = bld.node("b", addr(2));
        let nc = bld.node("c", addr(3));
        let nd = bld.node("d", addr(4));
        bld.attach_prefix(nd, pfx("192.0.2.0/24"));
        let l_ab = bld.link(a_, nb, 100 * MBPS, SimDuration::from_millis(1));
        let l_ac = bld.link(a_, nc, 100 * MBPS, SimDuration::from_millis(1));
        let l_bd = bld.link(nb, nd, 100 * MBPS, SimDuration::from_millis(1));
        let l_cd = bld.link(nc, nd, 100 * MBPS, SimDuration::from_millis(1));
        let topo = bld.build();
        let mut e = Engine::new(topo, SimConfig::default());
        let p = pfx("192.0.2.0/24");
        e.install_route(a_, p, Route::Ecmp(EcmpSet::new(&[l_ab, l_ac])));
        e.install_route(nb, p, Route::Link(l_bd));
        e.install_route(nc, p, Route::Link(l_cd));
        e.add_tap(l_ab);
        e.add_tap(l_ac);
        // 200 flows (distinct ports) of 3 packets each.
        for f in 0..200u16 {
            for k in 0..3u16 {
                let mut pkt = Packet::tcp_flags(
                    Ipv4Addr::new(172, 16, 0, 1),
                    Ipv4Addr::new(192, 0, 2, 50),
                    10_000 + f,
                    80,
                    net_types::TcpFlags::ACK,
                    vec![0u8; 64],
                );
                pkt.ip.ident = f * 4 + k;
                pkt.fill_checksums();
                e.schedule_inject(SimTime(u64::from(f) * 100_000 + u64::from(k)), a_, pkt);
            }
        }
        let report = e.run();
        assert_eq!(report.delivered, 600);
        assert!(report.is_conserved());
        let via_b = e.taps()[0].records.len();
        let via_c = e.taps()[1].records.len();
        assert_eq!(via_b + via_c, 600);
        // Both paths used, roughly balanced (flow hash, 200 flows).
        assert!(via_b > 150 && via_c > 150, "split {via_b}/{via_c}");
        // Flow affinity: all packets of one flow take the same path.
        for tap in e.taps() {
            let mut ports: std::collections::HashMap<u16, u32> = Default::default();
            for r in &tap.records {
                if let Some((sp, _)) = r.packet.ports() {
                    *ports.entry(sp).or_insert(0) += 1;
                }
            }
            assert!(
                ports.values().all(|&c| c == 3),
                "flows must not straddle paths"
            );
        }
    }

    #[test]
    fn ecmp_flow_hash_deterministic() {
        let p1 = test_packet(Ipv4Addr::new(192, 0, 2, 1), 64);
        let p2 = test_packet(Ipv4Addr::new(192, 0, 2, 1), 33); // TTL differs
        assert_eq!(flow_hash(&p1), flow_hash(&p2), "TTL must not affect path");
        let p3 = test_packet(Ipv4Addr::new(192, 0, 2, 2), 64);
        assert_ne!(flow_hash(&p1), flow_hash(&p3));
    }

    #[test]
    #[should_panic(expected = "already has a tap")]
    fn double_tap_rejected() {
        let (topo, _nodes, links) = line_topology();
        let mut e = Engine::new(topo, SimConfig::default());
        e.add_tap(links[0]);
        e.add_tap(links[0]);
    }
}
