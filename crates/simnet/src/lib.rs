#![warn(missing_docs)]
//! Discrete-event packet-level network simulator.
//!
//! The paper detects routing loops in traces from a real tier-1 backbone.
//! We do not have that backbone, so this crate provides the substitute: a
//! packet-level simulator whose routers forward by longest-prefix match from
//! per-router FIBs, decrement TTLs (with RFC 1624 incremental checksum
//! updates, like real hardware), drop packets on queue overflow or TTL
//! expiry, and emit ICMP Time Exceeded messages. Transient routing loops
//! arise exactly as in the wild: the control plane (the `routing` crate)
//! schedules *staggered* per-router FIB updates after a failure, and while
//! routers disagree, packets ping-pong between them.
//!
//! Key pieces:
//!
//! * [`topology::Topology`] / [`topology::TopologyBuilder`] — routers and
//!   unidirectional links (bandwidth, propagation delay, queue capacity).
//! * [`fib::Fib`] — a binary-trie longest-prefix-match forwarding table.
//! * [`engine::Engine`] — the event loop: packet injection, forwarding,
//!   queueing, scheduled FIB updates, link up/down, taps.
//! * [`tap::TapRecord`] — what a passive monitor on a link sees; converted
//!   to pcap bytes or analysis records downstream.
//! * [`fault::FaultConfig`] — link-layer fault injection (duplicates —
//!   the false-positive source §IV-A.2 guards against — and random drops).
//!
//! The simulator is deterministic given a seed: identical runs produce
//! identical traces, which the test suite leans on heavily.
//!
//! ```
//! use simnet::{Engine, Route, SimConfig, SimDuration, SimTime, TopologyBuilder};
//! use net_types::{Packet, TcpFlags};
//! use std::net::Ipv4Addr;
//!
//! let mut b = TopologyBuilder::new();
//! let src = b.node("src", Ipv4Addr::new(10, 0, 0, 1));
//! let dst = b.node("dst", Ipv4Addr::new(10, 0, 0, 2));
//! b.attach_prefix(dst, "203.0.113.0/24".parse().unwrap());
//! let link = b.link(src, dst, 622_000_000, SimDuration::from_millis(2));
//! let mut engine = Engine::new(b.build(), SimConfig::default());
//! engine.install_route(src, "203.0.113.0/24".parse().unwrap(), Route::Link(link));
//!
//! let p = Packet::tcp_flags(
//!     Ipv4Addr::new(100, 64, 0, 1),
//!     Ipv4Addr::new(203, 0, 113, 5),
//!     4000, 80, TcpFlags::ACK, &b"hi"[..],
//! );
//! engine.add_tap(link);
//! engine.schedule_inject(SimTime::ZERO, src, p);
//! let report = engine.run();
//! assert_eq!(report.delivered, 1);
//! assert_eq!(engine.taps()[0].records.len(), 1);
//! ```

pub mod engine;
pub mod fault;
pub mod fib;
pub mod fleet;
pub mod link;
pub mod tap;
pub mod time;
pub mod topology;

pub use engine::{DeliveryRecord, DropCause, Engine, LoopEvent, SimConfig, SimReport};
pub use fault::{FaultConfig, FlapSchedule};
pub use fib::{Fib, Route};
pub use fleet::FleetSpec;
pub use link::LinkCounters;
pub use tap::{Tap, TapRecord};
pub use time::{SimDuration, SimTime};
pub use topology::{LinkId, NodeId, Topology, TopologyBuilder};
