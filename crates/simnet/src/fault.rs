//! Link-layer fault injection.
//!
//! §IV-A.2 of the paper rejects 2-element replica sets because the link
//! layer itself can duplicate packets — "the sender may fail to drain the
//! packet in a token ring, or a misconfigured SONET protection layer may
//! transmit packets on both the working and protection links". To exercise
//! that validation rule, links can be configured to duplicate a fraction of
//! the packets they carry (a duplicate has an *unchanged* TTL, unlike a loop
//! replica). Random drops model line errors.
//!
//! [`FlapSchedule`] is the control-plane counterpart: a deterministic,
//! jitter-free periodic down/up schedule for a link, used by the `fleet`
//! scenario to roll failures across hundreds of links so that at any
//! instant a predictable fraction of the fleet is mid-convergence.

use crate::engine::Engine;
use crate::time::{SimDuration, SimTime};
use crate::topology::LinkId;

/// Per-link fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a transmitted packet is delivered twice
    /// (link-layer duplication).
    pub duplicate_prob: f64,
    /// Extra TTL decrements applied to the duplicate copy. Zero models a
    /// same-segment duplicate (token ring drain failure: identical TTL);
    /// two models a SONET protection path that traverses a different
    /// router pair, which is what makes such duplicates *look like*
    /// 2-element replica streams to a TTL-based detector — the artefact
    /// §IV-A.2's two-element rule exists to reject. The duplicate's IP
    /// checksum is patched consistently (RFC 1624), as real routers would.
    pub duplicate_ttl_skew: u8,
    /// Probability that a transmitted packet is silently lost.
    pub drop_prob: f64,
}

impl FaultConfig {
    /// No faults (the default).
    pub fn none() -> Self {
        Self {
            duplicate_prob: 0.0,
            duplicate_ttl_skew: 0,
            drop_prob: 0.0,
        }
    }

    /// Same-TTL duplication faults (token-ring style).
    pub fn duplicates(p: f64) -> Self {
        Self {
            duplicate_prob: p,
            duplicate_ttl_skew: 0,
            drop_prob: 0.0,
        }
    }

    /// Protection-path duplication: the copy arrives with its TTL lower by
    /// `skew` (it travelled a longer physical path).
    pub fn protection_duplicates(p: f64, skew: u8) -> Self {
        Self {
            duplicate_prob: p,
            duplicate_ttl_skew: skew,
            drop_prob: 0.0,
        }
    }

    /// Only random drops.
    pub fn drops(p: f64) -> Self {
        Self {
            duplicate_prob: 0.0,
            duplicate_ttl_skew: 0,
            drop_prob: p,
        }
    }

    /// True when both probabilities are zero (fast path: skip RNG entirely).
    pub fn is_none(&self) -> bool {
        self.duplicate_prob == 0.0 && self.drop_prob == 0.0
    }

    /// Panics unless both probabilities are valid (`0.0..=1.0`).
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.duplicate_prob),
            "duplicate_prob out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.drop_prob),
            "drop_prob out of range"
        );
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A deterministic periodic link-flap schedule: starting at `offset`, the
/// link goes down every `period` and comes back up `down_for` later.
///
/// There is no randomness anywhere — two engines given the same schedule
/// produce identical event sequences — which is what lets the fleet
/// scenario's per-link traces be regenerated bit-for-bit for the monitor
/// determinism proof. Rolling a fleet is just phase-staggering the same
/// schedule across links ([`FlapSchedule::rolling`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSchedule {
    /// Time of the first failure.
    pub offset: SimDuration,
    /// Interval between consecutive failures.
    pub period: SimDuration,
    /// How long each failure lasts. Strictly less than `period`.
    pub down_for: SimDuration,
}

impl FlapSchedule {
    /// A schedule with an explicit phase offset.
    ///
    /// # Panics
    /// Panics unless `0 < down_for < period`.
    pub fn new(offset: SimDuration, period: SimDuration, down_for: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO, "flap period must be positive");
        assert!(
            down_for > SimDuration::ZERO && down_for < period,
            "down_for must be in (0, period)"
        );
        Self {
            offset,
            period,
            down_for,
        }
    }

    /// The schedule for link `index` of a fleet of `fleet` links whose
    /// failures roll evenly through each period: link *i* fails at phase
    /// `period * i / fleet`.
    ///
    /// # Panics
    /// Panics when `index >= fleet` or the durations fail [`Self::new`].
    pub fn rolling(index: usize, fleet: usize, period: SimDuration, down_for: SimDuration) -> Self {
        assert!(index < fleet, "link index {index} out of fleet of {fleet}");
        let offset = SimDuration(period.as_nanos() * index as u64 / fleet as u64);
        Self::new(offset, period, down_for)
    }

    /// Every `(down, up)` window with `down < horizon`. A window whose
    /// recovery would land past the horizon is still returned in full, so
    /// a link never ends a bounded run administratively down.
    pub fn windows(&self, horizon: SimDuration) -> Vec<(SimTime, SimTime)> {
        let mut out = Vec::new();
        let mut down = SimTime::ZERO + self.offset;
        while down.as_nanos() < horizon.as_nanos() {
            out.push((down, down + self.down_for));
            down += self.period;
        }
        out
    }

    /// Schedules the down/up events on `link` for every window within
    /// `horizon`. Callers that need to co-schedule control-plane reactions
    /// (the fleet scenario's stale protection routes) iterate
    /// [`Self::windows`] themselves instead.
    pub fn apply(&self, engine: &mut Engine, link: LinkId, horizon: SimDuration) {
        for (down, up) in self.windows(horizon) {
            engine.schedule_link_down(down, link);
            engine.schedule_link_up(up, link);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultConfig::none().is_none());
        assert!(FaultConfig::default().is_none());
        assert!(!FaultConfig::duplicates(0.1).is_none());
        assert!(!FaultConfig::drops(0.1).is_none());
    }

    #[test]
    fn validate_accepts_bounds() {
        FaultConfig::none().validate();
        FaultConfig::duplicates(1.0).validate();
        FaultConfig::drops(1.0).validate();
        FaultConfig::protection_duplicates(0.5, 2).validate();
    }

    #[test]
    fn protection_duplicates_carry_skew() {
        let f = FaultConfig::protection_duplicates(0.1, 2);
        assert_eq!(f.duplicate_ttl_skew, 2);
        assert!(!f.is_none());
        assert_eq!(FaultConfig::duplicates(0.1).duplicate_ttl_skew, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate_prob")]
    fn validate_rejects_over_one() {
        FaultConfig::duplicates(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn validate_rejects_negative() {
        FaultConfig::drops(-0.1).validate();
    }

    #[test]
    fn flap_windows_are_periodic() {
        let s = FlapSchedule::new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
            SimDuration::from_secs(2),
        );
        let w = s.windows(SimDuration::from_secs(25));
        assert_eq!(
            w,
            vec![
                (SimTime::from_secs(1), SimTime::from_secs(3)),
                (SimTime::from_secs(11), SimTime::from_secs(13)),
                (SimTime::from_secs(21), SimTime::from_secs(23)),
            ]
        );
    }

    #[test]
    fn flap_window_straddling_horizon_still_recovers() {
        let s = FlapSchedule::new(
            SimDuration::from_secs(9),
            SimDuration::from_secs(10),
            SimDuration::from_secs(3),
        );
        // Down at 9s is within the 10s horizon; the up at 12s is kept.
        let w = s.windows(SimDuration::from_secs(10));
        assert_eq!(w, vec![(SimTime::from_secs(9), SimTime::from_secs(12))]);
    }

    #[test]
    fn rolling_staggers_phases_evenly() {
        let period = SimDuration::from_secs(8);
        let down = SimDuration::from_secs(1);
        let offsets: Vec<u64> = (0..4)
            .map(|i| FlapSchedule::rolling(i, 4, period, down).offset.as_nanos())
            .collect();
        assert_eq!(
            offsets,
            vec![0, 2_000_000_000, 4_000_000_000, 6_000_000_000]
        );
        // Deterministic: same inputs, same schedule.
        assert_eq!(
            FlapSchedule::rolling(3, 4, period, down),
            FlapSchedule::rolling(3, 4, period, down)
        );
    }

    #[test]
    #[should_panic(expected = "down_for")]
    fn flap_rejects_down_for_at_period() {
        let _ = FlapSchedule::new(
            SimDuration::ZERO,
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
        );
    }

    #[test]
    #[should_panic(expected = "out of fleet")]
    fn rolling_rejects_index_out_of_fleet() {
        let _ = FlapSchedule::rolling(4, 4, SimDuration::from_secs(8), SimDuration::from_secs(1));
    }
}
