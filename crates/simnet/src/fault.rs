//! Link-layer fault injection.
//!
//! §IV-A.2 of the paper rejects 2-element replica sets because the link
//! layer itself can duplicate packets — "the sender may fail to drain the
//! packet in a token ring, or a misconfigured SONET protection layer may
//! transmit packets on both the working and protection links". To exercise
//! that validation rule, links can be configured to duplicate a fraction of
//! the packets they carry (a duplicate has an *unchanged* TTL, unlike a loop
//! replica). Random drops model line errors.

/// Per-link fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a transmitted packet is delivered twice
    /// (link-layer duplication).
    pub duplicate_prob: f64,
    /// Extra TTL decrements applied to the duplicate copy. Zero models a
    /// same-segment duplicate (token ring drain failure: identical TTL);
    /// two models a SONET protection path that traverses a different
    /// router pair, which is what makes such duplicates *look like*
    /// 2-element replica streams to a TTL-based detector — the artefact
    /// §IV-A.2's two-element rule exists to reject. The duplicate's IP
    /// checksum is patched consistently (RFC 1624), as real routers would.
    pub duplicate_ttl_skew: u8,
    /// Probability that a transmitted packet is silently lost.
    pub drop_prob: f64,
}

impl FaultConfig {
    /// No faults (the default).
    pub fn none() -> Self {
        Self {
            duplicate_prob: 0.0,
            duplicate_ttl_skew: 0,
            drop_prob: 0.0,
        }
    }

    /// Same-TTL duplication faults (token-ring style).
    pub fn duplicates(p: f64) -> Self {
        Self {
            duplicate_prob: p,
            duplicate_ttl_skew: 0,
            drop_prob: 0.0,
        }
    }

    /// Protection-path duplication: the copy arrives with its TTL lower by
    /// `skew` (it travelled a longer physical path).
    pub fn protection_duplicates(p: f64, skew: u8) -> Self {
        Self {
            duplicate_prob: p,
            duplicate_ttl_skew: skew,
            drop_prob: 0.0,
        }
    }

    /// Only random drops.
    pub fn drops(p: f64) -> Self {
        Self {
            duplicate_prob: 0.0,
            duplicate_ttl_skew: 0,
            drop_prob: p,
        }
    }

    /// True when both probabilities are zero (fast path: skip RNG entirely).
    pub fn is_none(&self) -> bool {
        self.duplicate_prob == 0.0 && self.drop_prob == 0.0
    }

    /// Panics unless both probabilities are valid (`0.0..=1.0`).
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.duplicate_prob),
            "duplicate_prob out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.drop_prob),
            "drop_prob out of range"
        );
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultConfig::none().is_none());
        assert!(FaultConfig::default().is_none());
        assert!(!FaultConfig::duplicates(0.1).is_none());
        assert!(!FaultConfig::drops(0.1).is_none());
    }

    #[test]
    fn validate_accepts_bounds() {
        FaultConfig::none().validate();
        FaultConfig::duplicates(1.0).validate();
        FaultConfig::drops(1.0).validate();
        FaultConfig::protection_duplicates(0.5, 2).validate();
    }

    #[test]
    fn protection_duplicates_carry_skew() {
        let f = FaultConfig::protection_duplicates(0.1, 2);
        assert_eq!(f.duplicate_ttl_skew, 2);
        assert!(!f.is_none());
        assert_eq!(FaultConfig::duplicates(0.1).duplicate_ttl_skew, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate_prob")]
    fn validate_rejects_over_one() {
        FaultConfig::duplicates(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn validate_rejects_negative() {
        FaultConfig::drops(-0.1).validate();
    }
}
