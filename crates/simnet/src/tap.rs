//! Passive monitoring taps.
//!
//! The paper's data comes from IPMON monitors on OC-12 links that record a
//! timestamp and the first ~40 bytes of every packet. A [`Tap`] is the
//! simulated equivalent: attached to one unidirectional link, it records
//! every packet the link serializes, in transmission order.

use crate::time::SimTime;
use crate::topology::LinkId;
use net_types::Packet;

/// One observed packet at a tap.
#[derive(Debug, Clone)]
pub struct TapRecord {
    /// Time the packet hit the wire.
    pub time: SimTime,
    /// The full packet (truncation to a snap length happens at export;
    /// keeping the full packet lets tests cross-check what truncation
    /// discards).
    pub packet: Packet,
}

impl TapRecord {
    /// The packet as wire bytes truncated to `snaplen` — what a monitor
    /// with that snap length would have stored.
    pub fn snapped_bytes(&self, snaplen: usize) -> Vec<u8> {
        self.packet.snap(snaplen)
    }
}

/// A passive monitor on one link.
#[derive(Debug)]
pub struct Tap {
    /// The monitored link.
    pub link: LinkId,
    /// Records in transmission order.
    pub records: Vec<TapRecord>,
}

impl Tap {
    /// Creates an empty tap for `link`.
    pub fn new(link: LinkId) -> Self {
        Self {
            link,
            records: Vec::new(),
        }
    }

    /// Appends an observation.
    pub fn record(&mut self, time: SimTime, packet: Packet) {
        debug_assert!(
            self.records.last().is_none_or(|r| r.time <= time),
            "tap records must be appended in time order"
        );
        self.records.push(TapRecord { time, packet });
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes observed (original wire lengths).
    pub fn total_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.packet.wire_len() as u64)
            .sum()
    }

    /// Observation window: `(first, last)` record times, `None` when empty.
    pub fn window(&self) -> Option<(SimTime, SimTime)> {
        Some((self.records.first()?.time, self.records.last()?.time))
    }

    /// Average offered bandwidth in bits per second across the observation
    /// window (0.0 when fewer than two records).
    pub fn avg_bandwidth_bps(&self) -> f64 {
        match self.window() {
            Some((first, last)) if last > first => {
                let secs = (last - first).as_secs_f64();
                self.total_bytes() as f64 * 8.0 / secs
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_types::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn pkt(n: usize) -> Packet {
        Packet::tcp_flags(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            TcpFlags::ACK,
            vec![0u8; n],
        )
    }

    #[test]
    fn records_accumulate_in_order() {
        let mut tap = Tap::new(LinkId(3));
        tap.record(SimTime::from_millis(1), pkt(0));
        tap.record(SimTime::from_millis(2), pkt(10));
        assert_eq!(tap.records.len(), 2);
        assert_eq!(tap.link, LinkId(3));
        assert_eq!(
            tap.window(),
            Some((SimTime::from_millis(1), SimTime::from_millis(2)))
        );
    }

    #[test]
    fn total_bytes_counts_wire_lengths() {
        let mut tap = Tap::new(LinkId(0));
        tap.record(SimTime::ZERO, pkt(0)); // 40 bytes
        tap.record(SimTime::from_millis(1), pkt(100)); // 140 bytes
        assert_eq!(tap.total_bytes(), 180);
    }

    #[test]
    fn bandwidth_over_window() {
        let mut tap = Tap::new(LinkId(0));
        tap.record(SimTime::ZERO, pkt(0)); // 40 B
        tap.record(SimTime::from_secs(1), pkt(0)); // 40 B
                                                   // 80 bytes over 1 s = 640 bps.
        assert!((tap.avg_bandwidth_bps() - 640.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_degenerate_cases() {
        let mut tap = Tap::new(LinkId(0));
        assert_eq!(tap.avg_bandwidth_bps(), 0.0);
        tap.record(SimTime::ZERO, pkt(0));
        assert_eq!(tap.avg_bandwidth_bps(), 0.0);
    }

    #[test]
    fn snapped_bytes_truncate() {
        let mut tap = Tap::new(LinkId(0));
        tap.record(SimTime::ZERO, pkt(500));
        let bytes = tap.records[0].snapped_bytes(40);
        assert_eq!(bytes.len(), 40);
    }
}
