//! Simulation time: nanosecond-resolution virtual clock types.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the simulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Length in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time a given number of bytes occupies a link of `bits_per_sec`,
    /// rounded up to the next nanosecond (never zero for nonzero sizes so
    /// event ordering stays strict).
    pub fn serialization(bytes: usize, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "link bandwidth must be positive");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(u128::from(bits_per_sec));
        SimDuration(ns as u64)
    }

    /// Scales the duration by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_millis_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!((t - SimTime::from_secs(1)).as_nanos(), 500_000_000);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_micros(7);
        assert_eq!(t2.as_nanos(), 7_000);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_secs(1);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(
            SimTime::ZERO.since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(5).since(SimTime::from_secs(2)),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn serialization_delay() {
        // 1500 bytes at 1 Gbps = 12 µs.
        assert_eq!(
            SimDuration::serialization(1500, 1_000_000_000),
            SimDuration::from_micros(12)
        );
        // 40 bytes at 622 Mbps (OC-12) ≈ 514 ns, rounded up.
        let d = SimDuration::serialization(40, 622_000_000);
        assert_eq!(d.as_nanos(), 515);
        // Rounds up: 1 byte at 1 Tbps is 1 ns, never 0.
        assert_eq!(
            SimDuration::serialization(1, 1_000_000_000_000).as_nanos(),
            1
        );
        // Zero bytes take zero time.
        assert_eq!(SimDuration::serialization(0, 1_000_000), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = SimDuration::serialization(1, 0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500000s");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.250ms");
    }
}
