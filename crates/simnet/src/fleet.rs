//! Fleet scenario: hundreds of monitored router links with rolling
//! failures, the workload behind the `loopmond` multi-link monitor.
//!
//! The paper's traces each watch *one* backbone link; a fleet monitor
//! watches hundreds at once. This module builds that fleet as independent
//! per-link simulations — each link gets its own four-node network
//!
//! ```text
//!   host ──▶ r1 ══monitored══▶ r2 ──exit──▶ edge(prefix)
//!             ◀────return──────┘
//! ```
//!
//! with a [`FlapSchedule`]-driven failure cycle: when the exit link goes
//! down, `r2` falls back to a *stale protection route* pointing back
//! across the return link while `r1` still forwards ahead — the classic
//! two-router micro-loop of the paper's Figure 1 — until `r2`'s control
//! plane converges to a blackhole `heal_delay` later. Failures roll
//! across the fleet ([`FlapSchedule::rolling`]), so at any instant a
//! predictable fraction of links is mid-loop.
//!
//! Everything is deterministic and per-link independent: [`FleetSpec::
//! run_link`] regenerates link *i*'s tap bit-for-bit in isolation, which
//! is exactly what the monitor's byte-identity conformance test needs,
//! and what lets `loopmond` generate links lazily on worker threads
//! instead of materialising the whole fleet up front.

use crate::engine::{Engine, SimConfig};
use crate::fault::FlapSchedule;
use crate::fib::Route;
use crate::tap::Tap;
use crate::time::{SimDuration, SimTime};
use crate::topology::TopologyBuilder;
use net_types::{Ipv4Prefix, Packet, TcpFlags};
use std::net::Ipv4Addr;

/// The fleet's address plan caps out at 512 links (two /16s of /24s).
pub const MAX_FLEET_LINKS: usize = 512;

/// Parameters of a monitored-link fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of monitored links (≤ [`MAX_FLEET_LINKS`]).
    pub links: usize,
    /// Traffic window per link; the simulation drains in-flight packets
    /// past this point.
    pub duration: SimDuration,
    /// Base seed (folded with the link index; the scenario itself is
    /// RNG-free, so this only matters if fault probabilities are added).
    pub seed: u64,
    /// Interval between failures of any one link.
    pub flap_period: SimDuration,
    /// How long each failure keeps the exit link down.
    pub flap_down: SimDuration,
    /// Time from failure to `r2` converging (blackholing the prefix) —
    /// the loop window length. Strictly less than `flap_down`.
    pub heal_delay: SimDuration,
    /// Constant inter-packet gap of the per-link CBR workload.
    pub packet_interval: SimDuration,
    /// Initial TTL of injected packets; bounds replicas-per-stream at
    /// roughly `first_ttl / 2`.
    pub first_ttl: u8,
}

impl FleetSpec {
    /// The demo fleet: enough traffic and flaps per link that every link
    /// shows several distinct loops, small enough that hundreds of links
    /// simulate in seconds.
    pub fn demo(links: usize) -> Self {
        Self {
            links,
            duration: SimDuration::from_secs(20),
            seed: 42,
            flap_period: SimDuration::from_secs(6),
            flap_down: SimDuration::from_secs(2),
            heal_delay: SimDuration::from_millis(300),
            packet_interval: SimDuration::from_millis(50),
            first_ttl: 26,
        }
    }

    /// Panics unless the spec is internally consistent.
    pub fn validate(&self) {
        assert!(self.links > 0, "fleet must have at least one link");
        assert!(
            self.links <= MAX_FLEET_LINKS,
            "fleet of {} exceeds the {MAX_FLEET_LINKS}-link address plan",
            self.links
        );
        assert!(
            self.heal_delay > SimDuration::ZERO && self.heal_delay < self.flap_down,
            "heal_delay must be in (0, flap_down)"
        );
        assert!(
            self.flap_down < self.flap_period,
            "flap_down must be less than flap_period"
        );
        assert!(
            self.packet_interval > SimDuration::ZERO,
            "packet_interval must be positive"
        );
        assert!(self.first_ttl >= 6, "first_ttl too small to form replicas");
    }

    /// The monitor link id for link `i`: `"link-000"`, `"link-001"`, …
    pub fn link_name(i: usize) -> String {
        format!("link-{i:03}")
    }

    /// Link `i`'s destination /24 (from `198.18.0.0/15`, the benchmarking
    /// range — hence the 512-link cap).
    pub fn prefix(i: usize) -> Ipv4Prefix {
        assert!(i < MAX_FLEET_LINKS, "link index out of address plan");
        format!("198.{}.{}.0/24", 18 + i / 256, i % 256)
            .parse()
            .expect("fleet prefix")
    }

    /// Link `i`'s failure schedule within the rolling fleet.
    pub fn flap(&self, i: usize) -> FlapSchedule {
        FlapSchedule::rolling(i, self.links, self.flap_period, self.flap_down)
    }

    /// Simulates link `i` alone and returns its monitored-link tap.
    /// Deterministic and independent of every other link: calling this
    /// twice, in any order, from any thread, yields identical taps.
    ///
    /// # Panics
    /// Panics when `i >= self.links` or the spec fails [`Self::validate`].
    pub fn run_link(&self, i: usize) -> Tap {
        self.validate();
        assert!(i < self.links, "link {i} out of fleet of {}", self.links);
        let prefix = Self::prefix(i);

        let mut b = TopologyBuilder::new();
        let host = b.node("host", Ipv4Addr::new(10, 0, 0, 1));
        let r1 = b.node("r1", Ipv4Addr::new(10, 0, 0, 2));
        let r2 = b.node("r2", Ipv4Addr::new(10, 0, 0, 3));
        let edge = b.node("edge", Ipv4Addr::new(10, 0, 0, 4));
        b.attach_prefix(edge, prefix);
        let bw = 1_000_000_000;
        let d = SimDuration::from_millis(1);
        let ingress = b.link(host, r1, bw, d);
        let monitored = b.link(r1, r2, bw, d);
        let ret = b.link(r2, r1, bw, d);
        let exit = b.link(r2, edge, bw, d);

        let mut engine = Engine::new(
            b.build(),
            SimConfig {
                seed: self.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                // Looping packets die silently at TTL 0; the fleet wants
                // bounded per-link event counts, not ICMP storms.
                generate_time_exceeded: false,
                icmp_min_interval: SimDuration::ZERO,
                record_deliveries: false,
                max_events: 50_000_000,
            },
        );
        engine.install_route(host, prefix, Route::Link(ingress));
        engine.install_route(r1, prefix, Route::Link(monitored));
        engine.install_route(r2, prefix, Route::Link(exit));
        engine.add_tap(monitored);

        // Failure cycle. At t_down the exit fails and r2 falls back to a
        // stale protection route across the return link — r1 still
        // forwards ahead, so the pair micro-loops over the monitored link
        // until r2 converges to a blackhole at t_down + heal_delay. At
        // t_up both the link and the real route come back.
        for (down, up) in self.flap(i).windows(self.duration) {
            engine.schedule_link_down(down, exit);
            engine.schedule_fib_insert(down, r2, prefix, Route::Link(ret));
            engine.schedule_fib_insert(down + self.heal_delay, r2, prefix, Route::Blackhole);
            engine.schedule_link_up(up, exit);
            engine.schedule_fib_insert(up, r2, prefix, Route::Link(exit));
        }

        // CBR TCP workload: one packet per interval, incrementing IP
        // ident, constant initial TTL — every looped packet yields a
        // clean replica stream with TTL delta 2.
        let dst = Ipv4Addr::from(u32::from(prefix.network()) | 1);
        let mut t = SimTime::ZERO;
        let mut ident: u16 = 0;
        while t.as_nanos() < self.duration.as_nanos() {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 64, 0, 1),
                dst,
                4000,
                80,
                TcpFlags::ACK,
                &b"fleet"[..],
            );
            p.ip.ident = ident;
            p.ip.ttl = self.first_ttl;
            p.fill_checksums();
            engine.schedule_inject(t, host, p);
            ident = ident.wrapping_add(1);
            t += self.packet_interval;
        }

        engine.run();
        engine.take_taps().remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetSpec {
        FleetSpec {
            links: 4,
            duration: SimDuration::from_secs(8),
            seed: 7,
            flap_period: SimDuration::from_secs(4),
            flap_down: SimDuration::from_secs(1),
            heal_delay: SimDuration::from_millis(200),
            packet_interval: SimDuration::from_millis(40),
            first_ttl: 20,
        }
    }

    #[test]
    fn run_link_is_deterministic() {
        let spec = tiny();
        let a = spec.run_link(1);
        let b = spec.run_link(1);
        assert_eq!(a.records.len(), b.records.len());
        assert!(!a.records.is_empty());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.packet.emit(), y.packet.emit());
        }
    }

    #[test]
    fn flaps_produce_replica_sightings() {
        let spec = tiny();
        let tap = spec.run_link(0);
        // Count sightings per (ident): a looped packet crosses the
        // monitored link many times with falling TTL.
        let mut max_sightings = 0usize;
        let mut looped_idents = 0usize;
        for ident in 0..200u16 {
            let ttls: Vec<u8> = tap
                .records
                .iter()
                .filter(|r| r.packet.ip.ident == ident)
                .map(|r| r.packet.ip.ttl)
                .collect();
            if ttls.len() >= 3 {
                looped_idents += 1;
                max_sightings = max_sightings.max(ttls.len());
                // Strictly falling by 2 per crossing.
                for w in ttls.windows(2) {
                    assert_eq!(w[0] - w[1], 2, "loop replicas fall by 2 TTL");
                }
            }
        }
        assert!(
            looped_idents >= 3,
            "flap windows must loop several packets (got {looped_idents})"
        );
        assert!(max_sightings >= 3);
    }

    #[test]
    fn links_are_phase_staggered() {
        let spec = tiny();
        let w0 = spec.flap(0).windows(spec.duration);
        let w1 = spec.flap(1).windows(spec.duration);
        assert!(!w0.is_empty() && !w1.is_empty());
        assert_ne!(w0[0].0, w1[0].0, "rolling fleet staggers failures");
    }

    #[test]
    fn address_plan_is_disjoint() {
        let p0 = FleetSpec::prefix(0);
        let p255 = FleetSpec::prefix(255);
        let p256 = FleetSpec::prefix(256);
        assert_ne!(p0, p255);
        assert_ne!(p255, p256);
        assert_eq!(FleetSpec::link_name(7), "link-007");
        assert_eq!(FleetSpec::link_name(123), "link-123");
    }

    #[test]
    #[should_panic(expected = "address plan")]
    fn fleet_cap_is_enforced() {
        let _ = FleetSpec::prefix(512);
    }
}
