//! Forwarding Information Base: longest-prefix-match over a binary trie.
//!
//! Each router owns one [`Fib`]. The control plane (the `routing` crate)
//! installs and withdraws routes over time; staggered updates across routers
//! are exactly what opens transient-loop windows, so the FIB is deliberately
//! a *per-router* mutable structure rather than a shared table.

use crate::topology::LinkId;
use net_types::Ipv4Prefix;
use std::net::Ipv4Addr;

/// Maximum equal-cost paths an [`Route::Ecmp`] entry can carry (typical
/// line-card limits are 4–64; four suffices for the topologies here and
/// keeps `Route` `Copy`).
pub const MAX_ECMP_PATHS: usize = 4;

/// An equal-cost multipath set: up to [`MAX_ECMP_PATHS`] output links.
/// Selection is by flow hash, so all packets of one flow take one path
/// (per-packet spraying would reorder TCP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcmpSet {
    links: [LinkId; MAX_ECMP_PATHS],
    len: u8,
}

impl EcmpSet {
    /// Builds a set from up to [`MAX_ECMP_PATHS`] links; extras are
    /// silently dropped (deterministically: the first N win), mirroring a
    /// router's max-paths limit.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn new(links: &[LinkId]) -> Self {
        assert!(!links.is_empty(), "ECMP set needs at least one link");
        let mut arr = [LinkId(usize::MAX); MAX_ECMP_PATHS];
        let len = links.len().min(MAX_ECMP_PATHS);
        arr[..len].copy_from_slice(&links[..len]);
        Self {
            links: arr,
            len: len as u8,
        }
    }

    /// Number of member links.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The member links.
    pub fn links(&self) -> &[LinkId] {
        &self.links[..usize::from(self.len)]
    }

    /// Selects the member for a flow hash.
    pub fn select(&self, flow_hash: u64) -> LinkId {
        self.links[(flow_hash % u64::from(self.len)) as usize]
    }
}

/// A forwarding decision stored in the FIB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Forward out of the given link.
    Link(LinkId),
    /// Forward out of one of several equal-cost links, chosen by flow
    /// hash.
    Ecmp(EcmpSet),
    /// Deliver locally (the destination network is attached to this router).
    Local,
    /// Explicit null route (discard) — distinct from "no route at all" in
    /// that the packet is intentionally dropped without ICMP unreachable.
    Blackhole,
}

impl Route {
    /// Resolves the output link for a flow hash (`None` for Local and
    /// Blackhole).
    pub fn resolve(&self, flow_hash: u64) -> Option<LinkId> {
        match self {
            Route::Link(l) => Some(*l),
            Route::Ecmp(set) => Some(set.select(flow_hash)),
            Route::Local | Route::Blackhole => None,
        }
    }
}

#[derive(Debug, Default)]
struct TrieNode {
    children: [Option<Box<TrieNode>>; 2],
    route: Option<Route>,
}

impl TrieNode {
    fn is_empty(&self) -> bool {
        self.route.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A longest-prefix-match forwarding table.
#[derive(Debug, Default)]
pub struct Fib {
    root: TrieNode,
    len: usize,
}

fn bit(addr_bits: u32, depth: u8) -> usize {
    ((addr_bits >> (31 - depth)) & 1) as usize
}

impl Fib {
    /// Creates an empty FIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Installs (or replaces) the route for `prefix`. Returns the previous
    /// route if one existed.
    pub fn insert(&mut self, prefix: Ipv4Prefix, route: Route) -> Option<Route> {
        let mut node = &mut self.root;
        let bits = prefix.network_bits();
        for depth in 0..prefix.len() {
            let b = bit(bits, depth);
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let prev = node.route.replace(route);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes the route for exactly `prefix`. Returns the removed route, or
    /// `None` when the prefix was not installed. Empty trie branches are
    /// pruned so memory does not grow monotonically under churn.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<Route> {
        fn rec(node: &mut TrieNode, bits: u32, depth: u8, target: u8) -> Option<Route> {
            if depth == target {
                return node.route.take();
            }
            let b = bit(bits, depth);
            let child = node.children[b].as_mut()?;
            let removed = rec(child, bits, depth + 1, target);
            if removed.is_some() && child.is_empty() {
                node.children[b] = None;
            }
            removed
        }
        let removed = rec(&mut self.root, prefix.network_bits(), 0, prefix.len());
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Longest-prefix-match lookup for a destination address.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<Route> {
        let bits = u32::from(dst);
        let mut node = &self.root;
        let mut best = node.route;
        for depth in 0..32u8 {
            let b = bit(bits, depth);
            match &node.children[b] {
                Some(child) => {
                    node = child;
                    if node.route.is_some() {
                        best = node.route;
                    }
                }
                None => break,
            }
        }
        best
    }

    /// The exact route installed for `prefix`, ignoring longer/shorter
    /// matches (control-plane introspection).
    pub fn get_exact(&self, prefix: Ipv4Prefix) -> Option<Route> {
        let bits = prefix.network_bits();
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            let b = bit(bits, depth);
            node = node.children[b].as_ref()?;
        }
        node.route
    }

    /// Iterates all installed `(prefix, route)` pairs in trie order.
    pub fn entries(&self) -> Vec<(Ipv4Prefix, Route)> {
        fn rec(node: &TrieNode, bits: u32, depth: u8, out: &mut Vec<(Ipv4Prefix, Route)>) {
            if let Some(route) = node.route {
                let prefix =
                    Ipv4Prefix::new(Ipv4Addr::from(bits), depth).expect("depth bounded by 32");
                out.push((prefix, route));
            }
            for (b, child) in node.children.iter().enumerate() {
                if let Some(child) = child {
                    debug_assert!(depth < 32);
                    let child_bits = bits | ((b as u32) << (31 - depth));
                    rec(child, child_bits, depth + 1, out);
                }
            }
        }
        let mut out = Vec::with_capacity(self.len);
        rec(&self.root, 0, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_fib_has_no_routes() {
        let fib = Fib::new();
        assert!(fib.is_empty());
        assert_eq!(fib.lookup(a("1.2.3.4")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut fib = Fib::new();
        fib.insert(Ipv4Prefix::default_route(), Route::Link(LinkId(0)));
        assert_eq!(fib.lookup(a("0.0.0.0")), Some(Route::Link(LinkId(0))));
        assert_eq!(
            fib.lookup(a("255.255.255.255")),
            Some(Route::Link(LinkId(0)))
        );
    }

    #[test]
    fn longest_prefix_wins() {
        let mut fib = Fib::new();
        fib.insert(p("10.0.0.0/8"), Route::Link(LinkId(1)));
        fib.insert(p("10.1.0.0/16"), Route::Link(LinkId(2)));
        fib.insert(p("10.1.2.0/24"), Route::Link(LinkId(3)));
        assert_eq!(fib.lookup(a("10.1.2.3")), Some(Route::Link(LinkId(3))));
        assert_eq!(fib.lookup(a("10.1.9.9")), Some(Route::Link(LinkId(2))));
        assert_eq!(fib.lookup(a("10.9.9.9")), Some(Route::Link(LinkId(1))));
        assert_eq!(fib.lookup(a("11.0.0.1")), None);
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut fib = Fib::new();
        assert_eq!(fib.insert(p("10.0.0.0/8"), Route::Local), None);
        assert_eq!(
            fib.insert(p("10.0.0.0/8"), Route::Blackhole),
            Some(Route::Local)
        );
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(a("10.0.0.1")), Some(Route::Blackhole));
    }

    #[test]
    fn remove_restores_shorter_match() {
        let mut fib = Fib::new();
        fib.insert(p("10.0.0.0/8"), Route::Link(LinkId(1)));
        fib.insert(p("10.1.0.0/16"), Route::Link(LinkId(2)));
        assert_eq!(fib.remove(p("10.1.0.0/16")), Some(Route::Link(LinkId(2))));
        assert_eq!(fib.len(), 1);
        assert_eq!(fib.lookup(a("10.1.2.3")), Some(Route::Link(LinkId(1))));
        assert_eq!(fib.remove(p("10.1.0.0/16")), None);
    }

    #[test]
    fn remove_prunes_branches() {
        let mut fib = Fib::new();
        fib.insert(p("192.168.55.0/24"), Route::Local);
        fib.remove(p("192.168.55.0/24"));
        assert!(fib.root.is_empty(), "trie must be pruned after removal");
    }

    #[test]
    fn slash32_host_route() {
        let mut fib = Fib::new();
        fib.insert(p("10.0.0.1/32"), Route::Local);
        fib.insert(p("10.0.0.0/24"), Route::Link(LinkId(7)));
        assert_eq!(fib.lookup(a("10.0.0.1")), Some(Route::Local));
        assert_eq!(fib.lookup(a("10.0.0.2")), Some(Route::Link(LinkId(7))));
    }

    #[test]
    fn get_exact_distinguishes_lengths() {
        let mut fib = Fib::new();
        fib.insert(p("10.0.0.0/8"), Route::Local);
        assert_eq!(fib.get_exact(p("10.0.0.0/8")), Some(Route::Local));
        assert_eq!(fib.get_exact(p("10.0.0.0/16")), None);
        assert_eq!(fib.get_exact(p("10.0.0.0/9")), None);
    }

    #[test]
    fn entries_lists_all_routes() {
        let mut fib = Fib::new();
        let routes = [
            (p("0.0.0.0/0"), Route::Link(LinkId(0))),
            (p("10.0.0.0/8"), Route::Link(LinkId(1))),
            (p("10.128.0.0/9"), Route::Blackhole),
            (p("192.168.1.0/24"), Route::Local),
        ];
        for (pfx, r) in routes {
            fib.insert(pfx, r);
        }
        let mut entries = fib.entries();
        entries.sort_by_key(|(p, _)| (p.network_bits(), p.len()));
        assert_eq!(entries.len(), 4);
        for (pfx, r) in routes {
            assert!(entries.contains(&(pfx, r)));
        }
    }
}
