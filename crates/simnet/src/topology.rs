//! Network topology: routers and unidirectional links.

use crate::fault::FaultConfig;
use crate::time::SimDuration;
use net_types::Ipv4Prefix;
use std::net::Ipv4Addr;

/// Identifies a router/host node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies one unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Static configuration of a node.
#[derive(Debug, Clone)]
pub struct NodeCfg {
    /// Human-readable name for reports.
    pub name: String,
    /// Address used as the source of ICMP messages this router originates.
    pub address: Ipv4Addr,
    /// Prefixes delivered locally at this node (stub networks / hosts).
    pub local_prefixes: Vec<Ipv4Prefix>,
}

/// Static configuration of a unidirectional link.
#[derive(Debug, Clone)]
pub struct LinkCfg {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Output queue capacity in packets (drop-tail beyond this).
    pub queue_capacity: usize,
    /// Link-layer fault injection.
    pub faults: FaultConfig,
}

/// An immutable network description consumed by the engine.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeCfg>,
    links: Vec<LinkCfg>,
}

impl Topology {
    /// All nodes.
    pub fn nodes(&self) -> &[NodeCfg] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[LinkCfg] {
        &self.links
    }

    /// Node configuration by id.
    pub fn node(&self, id: NodeId) -> &NodeCfg {
        &self.nodes[id.0]
    }

    /// Link configuration by id.
    pub fn link(&self, id: LinkId) -> &LinkCfg {
        &self.links[id.0]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Links transmitting from `node`.
    pub fn links_from(&self, node: NodeId) -> impl Iterator<Item = LinkId> + '_ {
        self.links
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.from == node)
            .map(|(i, _)| LinkId(i))
    }

    /// The reverse direction of `link`, if one exists (same endpoints
    /// swapped). Bidirectional fibre is modelled as two unidirectional
    /// links; protocol models need the pairing to fail both together.
    pub fn reverse_of(&self, link: LinkId) -> Option<LinkId> {
        let l = self.link(link);
        self.links
            .iter()
            .position(|r| r.from == l.to && r.to == l.from)
            .map(LinkId)
    }

    /// Looks a node up by name (test/scenario convenience).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }
}

/// Builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeCfg>,
    links: Vec<LinkCfg>,
}

/// Default queue capacity in packets for [`TopologyBuilder::link`]; sized
/// like a small router line-card buffer.
pub const DEFAULT_QUEUE_CAPACITY: usize = 512;

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node; the address doubles as its ICMP source address.
    pub fn node(&mut self, name: &str, address: Ipv4Addr) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeCfg {
            name: name.to_string(),
            address,
            local_prefixes: Vec::new(),
        });
        id
    }

    /// Attaches a locally-delivered prefix to a node.
    pub fn attach_prefix(&mut self, node: NodeId, prefix: Ipv4Prefix) -> &mut Self {
        self.nodes[node.0].local_prefixes.push(prefix);
        self
    }

    /// Adds one unidirectional link with default queue capacity and no
    /// faults.
    pub fn link(
        &mut self,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
    ) -> LinkId {
        self.link_with(
            from,
            to,
            bandwidth_bps,
            prop_delay,
            DEFAULT_QUEUE_CAPACITY,
            FaultConfig::none(),
        )
    }

    /// Adds one unidirectional link with full control.
    pub fn link_with(
        &mut self,
        from: NodeId,
        to: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
        queue_capacity: usize,
        faults: FaultConfig,
    ) -> LinkId {
        assert!(from.0 < self.nodes.len(), "unknown from-node");
        assert!(to.0 < self.nodes.len(), "unknown to-node");
        assert_ne!(from, to, "self-links are not allowed");
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        assert!(queue_capacity > 0, "queue capacity must be positive");
        let id = LinkId(self.links.len());
        self.links.push(LinkCfg {
            from,
            to,
            bandwidth_bps,
            prop_delay,
            queue_capacity,
            faults,
        });
        id
    }

    /// Adds a bidirectional link: two unidirectional links with identical
    /// parameters. Returns `(forward, reverse)`.
    pub fn duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth_bps: u64,
        prop_delay: SimDuration,
    ) -> (LinkId, LinkId) {
        let f = self.link(a, b, bandwidth_bps, prop_delay);
        let r = self.link(b, a, bandwidth_bps, prop_delay);
        (f, r)
    }

    /// Finalises the topology.
    pub fn build(self) -> Topology {
        Topology {
            nodes: self.nodes,
            links: self.links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 255, 0, i)
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = TopologyBuilder::new();
        let n0 = b.node("r0", addr(0));
        let n1 = b.node("r1", addr(1));
        assert_eq!(n0, NodeId(0));
        assert_eq!(n1, NodeId(1));
        let l = b.link(n0, n1, 1_000_000, SimDuration::from_millis(1));
        assert_eq!(l, LinkId(0));
        let t = b.build();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_links(), 1);
        assert_eq!(t.link(l).from, n0);
        assert_eq!(t.link(l).to, n1);
    }

    #[test]
    fn duplex_creates_reverse_pair() {
        let mut b = TopologyBuilder::new();
        let n0 = b.node("a", addr(0));
        let n1 = b.node("b", addr(1));
        let (f, r) = b.duplex(n0, n1, 1_000_000, SimDuration::from_millis(2));
        let t = b.build();
        assert_eq!(t.reverse_of(f), Some(r));
        assert_eq!(t.reverse_of(r), Some(f));
    }

    #[test]
    fn reverse_of_missing_is_none() {
        let mut b = TopologyBuilder::new();
        let n0 = b.node("a", addr(0));
        let n1 = b.node("b", addr(1));
        let l = b.link(n0, n1, 1_000_000, SimDuration::ZERO);
        let t = b.build();
        assert_eq!(t.reverse_of(l), None);
    }

    #[test]
    fn links_from_filters_by_source() {
        let mut b = TopologyBuilder::new();
        let n0 = b.node("a", addr(0));
        let n1 = b.node("b", addr(1));
        let n2 = b.node("c", addr(2));
        let l01 = b.link(n0, n1, 1, SimDuration::ZERO);
        let l02 = b.link(n0, n2, 1, SimDuration::ZERO);
        let _l12 = b.link(n1, n2, 1, SimDuration::ZERO);
        let t = b.build();
        let from0: Vec<LinkId> = t.links_from(n0).collect();
        assert_eq!(from0, vec![l01, l02]);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut b = TopologyBuilder::new();
        let n0 = b.node("a", addr(0));
        b.link(n0, n0, 1, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn dangling_endpoint_rejected() {
        let mut b = TopologyBuilder::new();
        let n0 = b.node("a", addr(0));
        b.link(n0, NodeId(99), 1, SimDuration::ZERO);
    }

    #[test]
    fn attach_prefix_and_lookup_by_name() {
        let mut b = TopologyBuilder::new();
        let n0 = b.node("edge", addr(0));
        b.attach_prefix(n0, "192.0.2.0/24".parse().unwrap());
        let t = b.build();
        assert_eq!(t.node_by_name("edge"), Some(n0));
        assert_eq!(t.node_by_name("nope"), None);
        assert_eq!(t.node(n0).local_prefixes.len(), 1);
    }
}
