//! Runtime link state: output queue, serializer occupancy, counters.

use crate::time::SimTime;

/// Per-link traffic counters, exported in the simulation report. These feed
/// Table I (average bandwidth per monitored link) and the loss analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Bytes fully serialized onto the wire.
    pub tx_bytes: u64,
    /// Packets dropped because the output queue was full.
    pub queue_drops: u64,
    /// Packets dropped by injected link faults.
    pub fault_drops: u64,
    /// Packets the link layer duplicated (fault injection).
    pub duplicates: u64,
    /// Packets dropped because the link was administratively/physically
    /// down when the router tried to enqueue.
    pub down_drops: u64,
}

/// Mutable state of one link during a run. The queue holds opaque flight
/// indices managed by the engine (keeping this module engine-agnostic).
#[derive(Debug)]
pub struct LinkState {
    /// Whether the link is up. FIBs may lag reality — that is the whole
    /// point of this simulator — so routers can and do try to use down
    /// links.
    pub up: bool,
    /// Whether the serializer is currently transmitting.
    pub busy: bool,
    /// Output queue of flight slots awaiting serialization.
    pub queue: std::collections::VecDeque<usize>,
    /// Counters.
    pub counters: LinkCounters,
    /// Time the current transmission completes (diagnostic only).
    pub busy_until: SimTime,
}

impl LinkState {
    /// A fresh, idle, up link.
    pub fn new() -> Self {
        Self {
            up: true,
            busy: false,
            queue: std::collections::VecDeque::new(),
            counters: LinkCounters::default(),
            busy_until: SimTime::ZERO,
        }
    }
}

impl Default for LinkState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_link_is_idle_and_up() {
        let l = LinkState::new();
        assert!(l.up);
        assert!(!l.busy);
        assert!(l.queue.is_empty());
        assert_eq!(l.counters, LinkCounters::default());
    }
}
