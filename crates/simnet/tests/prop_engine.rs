//! Engine-level properties under arbitrary — including pathological —
//! routing states: random topologies, random FIBs (loops, blackholes, and
//! dead ends included), random traffic. Whatever the chaos, every packet
//! must be accounted for and runs must be reproducible.

use net_types::{Ipv4Prefix, Packet, TcpFlags};
use proptest::prelude::*;
use simnet::{
    DropCause, Engine, FaultConfig, LinkId, NodeId, Route, SimConfig, SimDuration, SimTime,
    TopologyBuilder,
};
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
struct RandomNet {
    n_nodes: usize,
    /// (from, to) pairs, deduped, no self-links.
    links: Vec<(usize, usize)>,
    /// Per node: route choice encoded as 0 = none, 1 = local, 2 = blackhole,
    /// 3+k = link k (mod out-degree).
    route_codes: Vec<u8>,
    /// (inject node, dst host octet, ttl, ident)
    packets: Vec<(usize, u8, u8, u16)>,
    seed: u64,
    dup_prob: u8,
    drop_prob: u8,
}

fn arb_net() -> impl Strategy<Value = RandomNet> {
    (3usize..8)
        .prop_flat_map(|n_nodes| {
            let links = proptest::collection::vec((0..n_nodes, 0..n_nodes), 2..16);
            let route_codes = proptest::collection::vec(any::<u8>(), n_nodes);
            let packets =
                proptest::collection::vec((0..n_nodes, any::<u8>(), 2u8..255, any::<u16>()), 1..60);
            (
                Just(n_nodes),
                links,
                route_codes,
                packets,
                any::<u64>(),
                0u8..40,
                0u8..40,
            )
        })
        .prop_map(
            |(n_nodes, raw_links, route_codes, packets, seed, dup_prob, drop_prob)| {
                let mut links: Vec<(usize, usize)> =
                    raw_links.into_iter().filter(|(a, b)| a != b).collect();
                links.sort();
                links.dedup();
                RandomNet {
                    n_nodes,
                    links,
                    route_codes,
                    packets,
                    seed,
                    dup_prob,
                    drop_prob,
                }
            },
        )
        .prop_filter("need at least one link", |net| !net.links.is_empty())
}

fn build_engine(net: &RandomNet) -> Engine {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<NodeId> = (0..net.n_nodes)
        .map(|i| b.node(&format!("n{i}"), Ipv4Addr::new(10, 77, 0, i as u8 + 1)))
        .collect();
    // One delivery prefix on node 0 so Local routes and stray packets have
    // somewhere to land.
    b.attach_prefix(nodes[0], "198.51.100.0/24".parse().unwrap());
    let mut link_ids: Vec<LinkId> = Vec::new();
    for (f, t) in &net.links {
        link_ids.push(b.link_with(
            nodes[*f],
            nodes[*t],
            100_000_000,
            SimDuration::from_micros(300),
            64,
            FaultConfig {
                duplicate_prob: f64::from(net.dup_prob) / 100.0,
                duplicate_ttl_skew: 2,
                drop_prob: f64::from(net.drop_prob) / 100.0,
            },
        ));
    }
    let topo = b.build();
    let mut engine = Engine::new(
        topo,
        SimConfig {
            seed: net.seed,
            generate_time_exceeded: net.seed.is_multiple_of(2),
            icmp_min_interval: SimDuration::from_micros(100),
            record_deliveries: false,
            max_events: 5_000_000,
        },
    );
    // Arbitrary (potentially looping) routes for the target prefix.
    let prefix: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
    let back: Ipv4Prefix = "198.51.100.0/24".parse().unwrap();
    for (i, node) in nodes.iter().enumerate() {
        let out_links: Vec<LinkId> = link_ids
            .iter()
            .zip(&net.links)
            .filter(|(_, (f, _))| *f == i)
            .map(|(l, _)| *l)
            .collect();
        let code = net.route_codes[i];
        let route = match code % 4 {
            0 => None,
            1 => Some(Route::Local),
            2 => Some(Route::Blackhole),
            _ => {
                if out_links.is_empty() {
                    None
                } else {
                    Some(Route::Link(
                        out_links[usize::from(code / 4) % out_links.len()],
                    ))
                }
            }
        };
        if let Some(r) = route {
            engine.install_route(*node, prefix, r);
            engine.install_route(*node, back, r);
        }
    }
    // Inject the traffic.
    for (k, (node, host, ttl, ident)) in net.packets.iter().enumerate() {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(198, 51, 100, 7),
            Ipv4Addr::new(203, 0, 113, *host),
            4000,
            80,
            TcpFlags::ACK,
            vec![0u8; 40],
        );
        p.ip.ttl = *ttl;
        p.ip.ident = *ident;
        p.fill_checksums();
        engine.schedule_inject(SimTime(k as u64 * 200_000), nodes[*node], p);
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: injected + generated == delivered + dropped, for any
    /// routing state — loops expire via TTL, blackholes drop, dead ends
    /// drop, faults drop, duplicates are accounted.
    #[test]
    fn packets_always_conserved(net in arb_net()) {
        let mut engine = build_engine(&net);
        let report = engine.run();
        prop_assert!(!report.truncated, "runaway event loop");
        prop_assert!(
            report.is_conserved(),
            "injected={} icmp={} dups={} delivered={} drops={}",
            report.injected,
            report.icmp_generated,
            report.duplicates_generated,
            report.delivered,
            report.total_drops()
        );
        prop_assert_eq!(report.injected as usize, net.packets.len());
    }

    /// Determinism: the same net twice gives byte-identical outcomes.
    #[test]
    fn runs_are_deterministic(net in arb_net()) {
        let r1 = build_engine(&net).run();
        let r2 = build_engine(&net).run();
        prop_assert_eq!(r1.delivered, r2.delivered);
        prop_assert_eq!(r1.total_drops(), r2.total_drops());
        prop_assert_eq!(r1.events_processed, r2.events_processed);
        prop_assert_eq!(r1.end_time, r2.end_time);
        prop_assert_eq!(r1.loop_events.len(), r2.loop_events.len());
    }

    /// TTL bounds work: every looping packet eventually dies, and no
    /// packet is forwarded more hops than its initial TTL.
    #[test]
    fn loops_always_terminate(net in arb_net()) {
        let mut engine = build_engine(&net);
        let report = engine.run();
        // If ground truth saw loops, TTL expiry must have killed packets
        // (or a queue/blackhole/fault got them first); either way the
        // run ended (checked via !truncated) and conservation held.
        if !report.loop_events.is_empty() {
            let killed = report.drop_count(DropCause::TtlExpired)
                + report.drop_count(DropCause::QueueFull)
                + report.drop_count(DropCause::Fault)
                + report.drop_count(DropCause::Blackhole);
            prop_assert!(killed > 0, "loops with no kills: {report:?}");
        }
        prop_assert!(!report.truncated);
    }
}
