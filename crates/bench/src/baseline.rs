//! B1 — the traceroute baseline (§III).
//!
//! The paper argues that end-to-end traceroute probing is a poor transient
//! loop detector. This experiment measures that claim: a network with a
//! precisely-controlled loop window of duration D carries both background
//! traffic (for the passive trace detector) and a periodic traceroute
//! prober; we report, per D, whether each method detects the loop.
//!
//! A traceroute only witnesses a loop if an entire probe run overlaps the
//! window, so sub-interval loops are invisible; the passive detector needs
//! only a handful of packets to be caught, so it sees down to
//! few-millisecond windows.

use loopscope::{Detector, DetectorConfig, TraceRecord};
use net_types::{Ipv4Prefix, Packet, UdpHeader};
use routing::{Prober, ProberConfig};
use simnet::{Engine, Route, SimConfig, SimDuration, SimTime, TopologyBuilder};
use stats::table::Table;
use std::net::Ipv4Addr;

/// Outcome of one controlled-loop trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// The loop window duration.
    pub loop_ms: u64,
    /// Did the passive trace detector find it?
    pub passive_detected: bool,
    /// Did the traceroute prober find it?
    pub traceroute_detected: bool,
    /// Number of validated replica streams the passive detector produced.
    pub passive_streams: usize,
    /// Number of traceroute runs that showed the A-B-A loop signature.
    pub looped_runs: usize,
}

/// Runs one controlled trial: a loop lasting exactly `loop_ms` opens at
/// t = 5 s, with background traffic at `pkt_per_s` and a traceroute run
/// every `probe_interval`.
pub fn run_trial(loop_ms: u64, pkt_per_s: u64, probe_interval: SimDuration) -> TrialOutcome {
    let prefix: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
    let src_prefix: Ipv4Prefix = "100.64.0.0/12".parse().unwrap();
    let target = Ipv4Addr::new(203, 0, 113, 50);
    let probe_src = Ipv4Addr::new(100, 64, 0, 10);

    let mut b = TopologyBuilder::new();
    let src = b.node("src", Ipv4Addr::new(10, 98, 0, 1));
    let c1 = b.node("c1", Ipv4Addr::new(10, 98, 0, 2));
    let c2 = b.node("c2", Ipv4Addr::new(10, 98, 0, 3));
    let c3 = b.node("c3", Ipv4Addr::new(10, 98, 0, 4));
    let e = b.node("e", Ipv4Addr::new(10, 98, 0, 5));
    b.attach_prefix(src, src_prefix);
    b.attach_prefix(e, prefix);
    let bw = 622_000_000;
    let d = SimDuration::from_micros(400);
    let (l_src_c1, l_c1_src) = b.duplex(src, c1, bw, d);
    let (l_c1_c2, l_c2_c1) = b.duplex(c1, c2, bw, d);
    let (l_c1_c3, l_c3_c1) = b.duplex(c1, c3, bw, d);
    let (l_c2_e, l_e_c2) = b.duplex(c2, e, bw, d);
    let (l_c3_e, _l_e_c3) = b.duplex(c3, e, bw, d);
    let topo = b.build();

    let mut engine = Engine::new(
        topo,
        SimConfig {
            seed: loop_ms ^ 0x5a5a,
            generate_time_exceeded: true,
            icmp_min_interval: SimDuration::ZERO,
            record_deliveries: false,
            max_events: 500_000_000,
        },
    );
    // Forward routes to the prefix.
    engine.install_route(src, prefix, Route::Link(l_src_c1));
    engine.install_route(c1, prefix, Route::Link(l_c1_c2));
    engine.install_route(c2, prefix, Route::Link(l_c2_e));
    engine.install_route(c3, prefix, Route::Link(l_c3_e));
    // Return routes to probe sources.
    engine.install_route(c1, src_prefix, Route::Link(l_c1_src));
    engine.install_route(c2, src_prefix, Route::Link(l_c2_c1));
    engine.install_route(c3, src_prefix, Route::Link(l_c3_c1));
    engine.install_route(e, src_prefix, Route::Link(l_e_c2));

    // The controlled loop: at t=5 s, c2 flips back towards c1; at
    // t = 5 s + loop_ms, c1 repoints via c3 (heal).
    let t_open = SimTime::from_secs(5);
    let t_close = t_open + SimDuration::from_millis(loop_ms);
    let horizon = SimTime::from_secs(60);
    engine.schedule_fib_insert(t_open, c2, prefix, Route::Link(l_c2_c1));
    engine.schedule_fib_insert(t_close, c1, prefix, Route::Link(l_c1_c3));

    // Background traffic: constant-rate UDP to the target prefix.
    let gap = 1_000_000_000 / pkt_per_s.max(1);
    let mut t = 0u64;
    let mut ident = 1u16;
    while t < horizon.as_nanos() {
        let mut p = Packet::udp(
            Ipv4Addr::new(100, 64, 1, 1),
            target,
            UdpHeader::new(4000, 9),
            vec![0u8; 64],
        );
        p.ip.ident = ident;
        p.ip.ttl = 60;
        p.fill_checksums();
        ident = ident.wrapping_add(1);
        engine.schedule_inject(SimTime(t), src, p);
        t += gap;
    }

    // The prober.
    let prober = Prober::new(ProberConfig {
        vantage: src,
        src: probe_src,
        target,
        max_ttl: 10,
        inter_probe: SimDuration::from_millis(50),
        run_interval: probe_interval,
    });
    prober.schedule(&mut engine, SimTime::ZERO, horizon);

    // Taps: monitored core link for the passive detector, return link for
    // probe responses.
    let tap_core = engine.add_tap(l_c1_c2);
    let tap_back = engine.add_tap(l_c1_src);
    engine.run();
    let taps = engine.take_taps();

    // Passive detection.
    let records: Vec<TraceRecord> = taps[tap_core]
        .records
        .iter()
        .map(|r| TraceRecord::from_packet(r.time.as_nanos(), &r.packet))
        .collect();
    let detection = Detector::new(DetectorConfig::default()).run(&records);

    // Traceroute detection.
    let runs = prober.analyze(&taps[tap_back].records);
    let looped_runs = runs.iter().filter(|r| r.loop_detected()).count();

    TrialOutcome {
        loop_ms,
        passive_detected: !detection.streams.is_empty(),
        traceroute_detected: looped_runs > 0,
        passive_streams: detection.streams.len(),
        looped_runs,
    }
}

/// The standard B1 sweep: loop windows from 50 ms to 20 s, 200 pkt/s of
/// background traffic, one traceroute run every 10 s.
pub fn sweep() -> Vec<TrialOutcome> {
    [50u64, 200, 1_000, 5_000, 20_000]
        .iter()
        .map(|&ms| run_trial(ms, 200, SimDuration::from_secs(10)))
        .collect()
}

/// Renders the B1 table.
pub fn report() -> String {
    let mut t = Table::new(&[
        "Loop duration",
        "Passive (trace)",
        "Traceroute",
        "Streams",
        "Looped runs",
    ])
    .with_title("B1 — PASSIVE TRACE DETECTOR vs TRACEROUTE PROBING (§III)");
    for o in sweep() {
        t.row_owned(vec![
            format!("{} ms", o.loop_ms),
            if o.passive_detected {
                "detected"
            } else {
                "missed"
            }
            .into(),
            if o.traceroute_detected {
                "detected"
            } else {
                "missed"
            }
            .into(),
            o.passive_streams.to_string(),
            o.looped_runs.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_sees_short_loops_traceroute_does_not() {
        let short = run_trial(100, 400, SimDuration::from_secs(10));
        assert!(
            short.passive_detected,
            "passive must catch a 100 ms loop: {short:?}"
        );
        assert!(
            !short.traceroute_detected,
            "a 10 s-interval traceroute cannot catch a 100 ms loop: {short:?}"
        );
    }

    #[test]
    fn both_see_long_loops() {
        let long = run_trial(20_000, 200, SimDuration::from_secs(5));
        assert!(long.passive_detected, "{long:?}");
        assert!(long.traceroute_detected, "{long:?}");
    }
}
