//! Data collection: run the four backbones (in parallel) and detect.

use loopscope::pipeline::{run_pipeline, SerialEngine, SliceSource};
use loopscope::{DetectorConfig, PipelineResult};
use routing_loops::backbone::{paper_backbones, run_backbone, BackboneRun, BackboneSpec};

/// One backbone's trace, ground truth, and detection output.
pub struct BackboneData {
    /// The simulated trace and control-plane ground truth.
    pub run: BackboneRun,
    /// Pipeline output with paper-default configuration (serial engine).
    pub detection: PipelineResult,
}

impl BackboneData {
    /// Name shorthand.
    pub fn name(&self) -> &str {
        &self.run.spec.name
    }
}

/// All four backbones.
pub struct ExperimentData {
    /// Per-backbone data, Backbone 1 through 4.
    pub backbones: Vec<BackboneData>,
    /// The scale factor used.
    pub scale: f64,
}

fn build_one(spec: &BackboneSpec) -> BackboneData {
    let run = run_backbone(spec);
    let mut source = SliceSource::new(&run.records);
    let detection = run_pipeline(
        &mut source,
        &mut SerialEngine::new(DetectorConfig::default()),
        &mut [],
    )
    .expect("in-memory pipeline cannot fail");
    BackboneData { run, detection }
}

/// Runs all four backbones in parallel and detects on each trace.
///
/// `scale` scales the trace durations: `1.0` is the full repro run (about
/// five simulated minutes per backbone); integration tests use `0.1`.
pub fn collect(scale: f64) -> ExperimentData {
    let specs = paper_backbones(scale);
    let backbones = std::thread::scope(|s| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| s.spawn(move || build_one(spec)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("backbone worker panicked"))
            .collect::<Vec<_>>()
    });
    ExperimentData { backbones, scale }
}

/// Runs a single backbone by index (0-based), for cheap focused benches.
pub fn collect_one(index: usize, scale: f64) -> BackboneData {
    let specs = paper_backbones(scale);
    build_one(&specs[index])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_small_scale_works() {
        let data = collect(0.08);
        assert_eq!(data.backbones.len(), 4);
        for b in &data.backbones {
            assert!(b.run.report.is_conserved(), "{} conservation", b.name());
            assert!(!b.run.records.is_empty(), "{} empty trace", b.name());
        }
        // At least one backbone must show detected loops even at tiny scale.
        assert!(
            data.backbones
                .iter()
                .any(|b| !b.detection.streams.is_empty()),
            "no loops detected anywhere"
        );
    }
}
