//! Regenerates every table and figure of the paper from the synthetic
//! backbones.
//!
//! ```text
//! cargo run -p bench --release --bin repro            # everything
//! cargo run -p bench --release --bin repro -- --fig2  # one artifact
//! cargo run -p bench --release --bin repro -- --scale 0.5
//! ```

use bench::experiments;

/// Prints the per-stage timing table accumulated by the telemetry layer
/// over everything this invocation ran (stderr, like the other progress
/// output, so piped artifact text stays clean).
fn print_stage_timings() {
    let snap = telemetry::global().snapshot();
    if snap.timers.is_empty() {
        return;
    }
    eprintln!();
    eprintln!("per-stage timing (accumulated over all runs)");
    eprintln!(
        "{:<16} {:>8} {:>12} {:>12} {:>12}",
        "stage", "calls", "total ms", "mean ms", "max ms"
    );
    for (name, t) in &snap.timers {
        let mean_ms = if t.calls > 0 {
            t.total_ns as f64 / t.calls as f64 / 1e6
        } else {
            0.0
        };
        eprintln!(
            "{:<16} {:>8} {:>12.3} {:>12.3} {:>12.3}",
            name,
            t.calls,
            t.total_ns as f64 / 1e6,
            mean_ms,
            t.max_ns as f64 / 1e6,
        );
    }
    // One summary line for the level-0 candidate pre-filter, so repro runs
    // show how much of replica.detect the fingerprint lane absorbed.
    let pf = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let hits = pf("replica.prefilter_hits");
    let misses = pf("replica.prefilter_misses");
    if hits + misses > 0 {
        eprintln!(
            "prefilter: {} probes ({} hits, {} misses), {} promotions, \
             {} evictions, {} collisions",
            hits + misses,
            hits,
            misses,
            pf("replica.prefilter_promotions"),
            pf("replica.prefilter_evictions"),
            pf("replica.prefilter_collisions"),
        );
    }
}

const USAGE: &str = "\
repro — regenerate the paper's tables and figures

USAGE: repro [--scale F] [ARTIFACT...]

ARTIFACTS (default: all)
  --table1 --table2 --fig2 --fig3 --fig4 --fig5 --fig6 --fig7 --fig8 --fig9
  --loss --escape --reorder --ablate-gap --ablate-validate --ablate-key
  --attribution --persistent --stability --utilization --baseline

OPTIONS
  --scale F   trace duration scale factor (default 1.0 ≈ 5 simulated
              minutes per backbone; smaller is faster)
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            "--scale" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--scale needs a value");
                    std::process::exit(2);
                });
                scale = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad scale {v:?}");
                    std::process::exit(2);
                });
            }
            flag if flag.starts_with("--") => wanted.push(flag[2..].to_string()),
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    // The baseline experiment needs no backbone data; handle the
    // baseline-only invocation without paying for collection.
    if wanted.iter().all(|w| w == "baseline") && !wanted.is_empty() {
        print!("{}", bench::baseline::report());
        return;
    }

    eprintln!("building 4 synthetic backbones (scale {scale}) …");
    let t0 = std::time::Instant::now();
    let data = bench::collect(scale);
    eprintln!("collection took {:.1}s", t0.elapsed().as_secs_f64());

    type Gen = fn(&bench::ExperimentData) -> String;
    let artifacts: &[(&str, Gen)] = &[
        ("table1", experiments::table1),
        ("table2", experiments::table2),
        ("fig2", experiments::fig2),
        ("fig3", experiments::fig3),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9", experiments::fig9),
        ("loss", experiments::loss),
        ("escape", experiments::escape),
        ("reorder", experiments::reorder),
        ("ablate-gap", experiments::ablate_gap),
        ("ablate-validate", experiments::ablate_validate),
        ("ablate-key", experiments::ablate_key),
        ("attribution", experiments::attribution_report),
    ];

    if wanted.is_empty() {
        print!("{}", experiments::all(&data));
        print_stage_timings();
        return;
    }
    for w in &wanted {
        if w == "baseline" {
            println!("{}", bench::baseline::report());
            continue;
        }
        if w == "persistent" {
            println!("{}", experiments::persistent(scale));
            continue;
        }
        if w == "stability" {
            println!("{}", experiments::stability(scale));
            continue;
        }
        if w == "utilization" {
            println!("{}", bench::utilization::report());
            continue;
        }
        match artifacts.iter().find(|(name, _)| name == w) {
            Some((_, f)) => println!("{}", f(&data)),
            None => {
                eprintln!("unknown artifact --{w}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    print_stage_timings();
}
