//! `validate_telemetry` — schema checker for the observability smoke step.
//!
//! ```text
//! validate_telemetry <metrics.jsonl> <trace.json>
//! validate_telemetry --events <events.jsonl>
//! ```
//!
//! The two-argument form validates the artifacts `loopdetect
//! --metrics-interval/--trace` produce: every JSONL line must be a
//! well-formed object carrying the sampler's schema
//! (`seq`/`unix_ms`/`elapsed_ms`/`counters`/`timers`, with `seq` counting
//! up from 0 and at least two snapshots present), and the trace must be a
//! well-formed Chrome `trace_event` document with `traceEvents`, complete
//! (`"ph":"X"`) spans, and thread-name metadata.
//!
//! `--events` validates a `loopmond` unified loop-event stream: every
//! line must be well-formed JSON attributed to a link (`"link"` first),
//! with `event` either `stream` (carrying `replicas`/`ttl_delta`) or
//! `loop` (carrying `class`/`duration_s`), and at least one event of each
//! kind present. Exit 0 means pass; any violation is printed and exits 1.
//! Used by `scripts/check.sh`; standalone-useful for eyeballing captures.

use std::process::exit;

fn fail(msg: String) -> ! {
    eprintln!("validate_telemetry: FAIL: {msg}");
    exit(1)
}

fn check_metrics(path: &str) -> usize {
    let body =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let samples: Vec<&str> = body.lines().filter(|l| l.starts_with('{')).collect();
    if samples.len() < 2 {
        fail(format!(
            "{path}: want at least 2 snapshots (first + final), got {}",
            samples.len()
        ));
    }
    for (i, line) in samples.iter().enumerate() {
        telemetry::json::validate(line)
            .unwrap_or_else(|e| fail(format!("{path} line {}: bad JSON: {e}", i + 1)));
        if !line.contains(&format!("\"seq\":{i}")) {
            fail(format!("{path} line {}: expected \"seq\":{i}", i + 1));
        }
        for key in [
            "\"unix_ms\"",
            "\"elapsed_ms\"",
            "\"interval_ms\"",
            "\"counters\"",
            "\"gauges\"",
            "\"timers\"",
        ] {
            if !line.contains(key) {
                fail(format!("{path} line {}: missing {key}", i + 1));
            }
        }
    }
    samples.len()
}

fn check_trace(path: &str) {
    let doc =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    telemetry::json::validate(&doc).unwrap_or_else(|e| fail(format!("{path}: bad JSON: {e}")));
    for (key, why) in [
        ("\"traceEvents\"", "not a Chrome trace_event document"),
        ("\"ph\":\"X\"", "no complete events — nothing was traced"),
        ("\"thread_name\"", "no thread-name metadata"),
    ] {
        if !doc.contains(key) {
            fail(format!("{path}: missing {key} ({why})"));
        }
    }
}

fn check_events(path: &str) -> (usize, usize) {
    let body =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let (mut streams, mut loops) = (0usize, 0usize);
    for (i, line) in body.lines().enumerate() {
        let n = i + 1;
        telemetry::json::validate(line)
            .unwrap_or_else(|e| fail(format!("{path} line {n}: bad JSON: {e}")));
        if !line.starts_with("{\"link\":\"") {
            fail(format!("{path} line {n}: not link-attributed: {line}"));
        }
        let required: &[&str] = if line.contains("\"event\":\"stream\"") {
            streams += 1;
            &[
                "\"dst\"",
                "\"replicas\"",
                "\"ttl_delta\"",
                "\"duration_ms\"",
            ]
        } else if line.contains("\"event\":\"loop\"") {
            loops += 1;
            &["\"prefix\"", "\"streams\"", "\"duration_s\"", "\"class\""]
        } else {
            fail(format!("{path} line {n}: unknown event kind: {line}"));
        };
        for key in required {
            if !line.contains(key) {
                fail(format!("{path} line {n}: missing {key}"));
            }
        }
    }
    if streams == 0 || loops == 0 {
        fail(format!(
            "{path}: want both event kinds, got {streams} stream / {loops} loop events"
        ));
    }
    (streams, loops)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag, events] if flag == "--events" => {
            let (streams, loops) = check_events(events);
            println!("validate_telemetry: OK ({streams} stream + {loops} loop events)");
        }
        [metrics, trace] => {
            let n = check_metrics(metrics);
            check_trace(trace);
            println!("validate_telemetry: OK ({n} snapshots, trace well-formed)");
        }
        _ => {
            eprintln!(
                "usage: validate_telemetry <metrics.jsonl> <trace.json>\n\
                 \x20      validate_telemetry --events <events.jsonl>"
            );
            exit(2);
        }
    }
}
