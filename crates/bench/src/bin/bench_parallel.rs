//! `bench_parallel` — serial vs block-parallel detector throughput,
//! written to a `BENCH_parallel.json` artifact.
//!
//! ```text
//! cargo run -p bench --release --bin bench_parallel
//! cargo run -p bench --release --bin bench_parallel -- --scale 0.05 --repeat 1
//! cargo run -p bench --release --bin bench_parallel -- --threads 2,4,8,16
//! cargo run -p bench --release --bin bench_parallel -- --engine ring   # ablation
//! ```
//!
//! Exit status is nonzero when any parallel run's output diverges from
//! serial, when any run's stage breakdown comes back all zeros, or when
//! any per-worker row records no time at all (stage instrumentation
//! going dark) — the determinism guard CI relies on.
//! `--metrics-interval <ms>` streams live registry snapshots as JSONL on
//! stderr while the bench runs, and `--trace <path>` records a Chrome
//! `trace_event` JSON of the timed runs; both perturb timings, so a loud
//! warning fires when either is combined with `--gate`. With `--gate <baseline>`,
//! throughput floors are enforced too: serial records/s must stay within
//! 10% of the committed baseline (like-for-like on core count), on
//! machines with at least 4 cores the per-core-count speedup floors bind
//! (≥1.6× at 2 threads, ≥2.5× at 4), the columnar (`.ltc`) ingest
//! rate must stay at least 2.5× the pcap ingest rate, and the mapped
//! (mmap) `.ltc` decode must stay at least 1.15× the buffered decode on
//! the same warm-cache file — both within-run ratios that bind on every
//! machine. The scaling floors are skipped
//! (loudly) on smaller machines, where wall-clock parallel speedup is
//! physically impossible. `--summary <path>` writes a markdown delta
//! table (fresh vs baseline) suitable for `$GITHUB_STEP_SUMMARY`.

use bench::parallel::{self, BenchEngine};
use std::io::Write;
use std::process::exit;

const USAGE: &str = "\
bench_parallel — serial vs block-parallel detector throughput (BENCH_parallel.json)

USAGE: bench_parallel [OPTIONS]

OPTIONS
  --scale <F>             bench trace scale factor (default 0.4)
  --threads <list>        comma-separated worker counts (default 1,2,4,8)
  --repeat <N>            timing repeats, best-of (default 3)
  --engine <E>            parallel engine: block (default) or ring (ablation)
  --out <path>            artifact path (default BENCH_parallel.json)
  --gate <path>           baseline BENCH_parallel.json to enforce floors against
  --summary <path>        write a markdown delta summary (for $GITHUB_STEP_SUMMARY)
  --metrics-interval <ms> stream telemetry snapshots as JSONL on stderr
  --trace <path>          write a Chrome trace_event JSON of the timed runs
  -h, --help              this text
";

/// Minimum acceptable `serial records/s ÷ baseline records/s` under
/// `--gate` — i.e. at most a 10% serial-throughput regression.
const GATE_SERIAL_FLOOR: f64 = 0.9;

/// Per-core-count speedup floors under `--gate`, enforced only when the
/// machine has at least [`GATE_MIN_CORES`] cores: `(threads, min speedup)`.
const GATE_SPEEDUP_FLOORS: [(usize, f64); 2] = [(2, 1.6), (4, 2.5)];

/// Cores needed before the speedup floors are meaningful: with fewer, the
/// OS time-slices the workers onto the same silicon and thread handoff is
/// pure overhead.
const GATE_MIN_CORES: usize = 4;

/// Minimum `columnar ingest records/s ÷ pcap ingest records/s` under
/// `--gate`. Unlike the other floors this ratio is measured within one
/// run on one machine (same trace, same silicon, both single-threaded),
/// so it is machine-independent and binds everywhere — no core-count or
/// baseline-provenance skip applies.
const GATE_COLUMNAR_INGEST_FLOOR: f64 = 2.5;

/// Minimum `mapped .ltc decode records/s ÷ buffered .ltc decode records/s`
/// under `--gate`. Measured within one run against one warm-cache temp
/// file, both arms single-threaded — machine-independent, binds
/// everywhere, no skip path.
const GATE_MMAP_INGEST_FLOOR: f64 = 1.15;

/// Pulls `"serial": {... "records_per_s": <x> ...}` out of a baseline
/// artifact (hand-rolled; the workspace has no serde).
fn extract_serial_rps(json: &str) -> Option<f64> {
    let serial = json.find("\"serial\":")?;
    let rest = &json[serial..];
    let key = "\"records_per_s\":";
    let at = rest.find(key)?;
    let after = &rest[at + key.len()..];
    let end = after.find([',', '}'])?;
    after[..end].trim().parse().ok()
}

/// Pulls the top-level `"cores": <n>` out of a baseline artifact. Absent
/// in artifacts written before the field existed.
fn extract_cores(json: &str) -> Option<usize> {
    let key = "\"cores\":";
    let at = json.find(key)?;
    let after = &json[at + key.len()..];
    let end = after.find([',', '}'])?;
    after[..end].trim().parse().ok()
}

/// Pulls `"ingest_columnar": {... "vs_pcap": <x>}` out of a baseline
/// artifact. Absent in artifacts written before the columnar format.
fn extract_columnar_vs_pcap(json: &str) -> Option<f64> {
    let at = json.find("\"ingest_columnar\":")?;
    let rest = &json[at..];
    let key = "\"vs_pcap\":";
    let k = rest.find(key)?;
    let after = &rest[k + key.len()..];
    let end = after.find([',', '}'])?;
    after[..end].trim().parse().ok()
}

/// Pulls `"ingest_mmap": {... "vs_buffered": <x>}` out of a baseline
/// artifact. Absent in artifacts written before the mmap read path.
fn extract_mmap_vs_buffered(json: &str) -> Option<f64> {
    let at = json.find("\"ingest_mmap\":")?;
    let rest = &json[at..];
    let key = "\"vs_buffered\":";
    let k = rest.find(key)?;
    let after = &rest[k + key.len()..];
    let end = after.find([',', '}'])?;
    after[..end].trim().parse().ok()
}

/// Pulls every `(threads, speedup)` pair out of a baseline artifact's
/// `"parallel"` rows, in document order.
fn extract_speedups(json: &str) -> Vec<(usize, f64)> {
    let Some(start) = json.find("\"parallel\":") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut rest = &json[start..];
    while let Some(at) = rest.find("\"threads\":") {
        rest = &rest[at + "\"threads\":".len()..];
        let Some(end) = rest.find([',', '}']) else {
            break;
        };
        let Ok(threads) = rest[..end].trim().parse::<usize>() else {
            continue;
        };
        let Some(sp_at) = rest.find("\"speedup\":") else {
            break;
        };
        let sp_rest = &rest[sp_at + "\"speedup\":".len()..];
        let Some(sp_end) = sp_rest.find([',', '}']) else {
            break;
        };
        if let Ok(speedup) = sp_rest[..sp_end].trim().parse::<f64>() {
            out.push((threads, speedup));
        }
        rest = sp_rest;
    }
    out
}

/// Applies the throughput floors against a baseline document; returns the
/// list of violations (empty = pass).
///
/// The serial floor is *like-for-like*: it only binds when the baseline
/// was measured on a machine with the same core count (absolute records/s
/// from different silicon are not comparable). The speedup floors are
/// machine-relative (parallel vs serial on the SAME silicon) and bind
/// whenever this machine has enough cores for wall-clock speedup to
/// exist at all. Skips are loud, never silent.
fn gate_failures(bench: &parallel::ParallelBench, baseline_json: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let baseline_cores = extract_cores(baseline_json);
    match extract_serial_rps(baseline_json) {
        Some(base_rps) if base_rps > 0.0 => match baseline_cores {
            Some(bc) if bc == bench.cores => {
                let floor = base_rps * GATE_SERIAL_FLOOR;
                if bench.serial_records_per_s < floor {
                    failures.push(format!(
                        "serial throughput regressed: {:.0} records/s < {:.0} \
                         ({}% of baseline {:.0})",
                        bench.serial_records_per_s,
                        floor,
                        (GATE_SERIAL_FLOOR * 100.0) as u32,
                        base_rps
                    ));
                }
            }
            Some(bc) => eprintln!(
                "gate: SKIPPING the serial floor — baseline was measured on \
                 {bc} core(s), this machine has {}; absolute records/s are \
                 not comparable across machines (re-baseline per \
                 EXPERIMENTS.md)",
                bench.cores
            ),
            None => eprintln!(
                "gate: SKIPPING the serial floor — baseline predates the \
                 \"cores\" field, so like-for-like comparison is impossible \
                 (re-baseline per EXPERIMENTS.md)"
            ),
        },
        _ => failures.push("baseline has no parseable serial records_per_s".to_string()),
    }
    // Within-run ratios: no baseline, no skip.
    if bench.columnar_vs_pcap < GATE_COLUMNAR_INGEST_FLOOR {
        failures.push(format!(
            "columnar ingest only {:.2}x the pcap ingest rate, below the \
             {GATE_COLUMNAR_INGEST_FLOOR}x floor ({:.0} vs {:.0} records/s)",
            bench.columnar_vs_pcap, bench.columnar_ingest_records_per_s, bench.ingest_records_per_s
        ));
    }
    if bench.mmap_vs_buffered < GATE_MMAP_INGEST_FLOOR {
        failures.push(format!(
            "mapped .ltc ingest only {:.2}x the buffered rate, below the \
             {GATE_MMAP_INGEST_FLOOR}x floor ({:.0} vs {:.0} records/s)",
            bench.mmap_vs_buffered,
            bench.mmap_ingest_records_per_s,
            bench.buffered_ingest_records_per_s
        ));
    }
    if bench.cores < GATE_MIN_CORES {
        eprintln!(
            "gate: SKIPPING the per-core-count speedup floors — only {} core(s) \
             available (< {GATE_MIN_CORES}), wall-clock parallel speedup is not \
             physically possible here; run on a multi-core machine to enforce \
             scaling",
            bench.cores
        );
        return failures;
    }
    for (threads, floor) in GATE_SPEEDUP_FLOORS {
        match bench.samples.iter().find(|s| s.threads == threads) {
            Some(s) => {
                if s.speedup < floor {
                    failures.push(format!(
                        "{threads}-thread speedup {:.3}x below the {floor}x \
                         floor on a {}-core machine",
                        s.speedup, bench.cores
                    ));
                }
            }
            None => eprintln!(
                "gate: SKIPPING the {threads}-thread speedup floor — no \
                 {threads}-thread sample in this run"
            ),
        }
    }
    failures
}

/// Renders the markdown delta table (fresh vs optional baseline) for the
/// CI step summary.
fn render_summary(bench: &parallel::ParallelBench, baseline_json: Option<&str>) -> String {
    let base_rps = baseline_json.and_then(extract_serial_rps);
    let base_cores = baseline_json.and_then(extract_cores);
    let base_speedups = baseline_json.map(extract_speedups).unwrap_or_default();
    let fmt_delta = |fresh: f64, base: Option<f64>| match base {
        Some(b) if b > 0.0 => format!("{:+.1}%", (fresh / b - 1.0) * 100.0),
        _ => "—".to_string(),
    };
    let mut out = String::new();
    out.push_str("## bench_parallel\n\n");
    out.push_str(&format!(
        "engine `{}` · {} records · {} cores · `{}` · runner `{}`\n\n",
        bench.engine, bench.records, bench.cores, bench.rustc, bench.runner
    ));
    if let Some(bc) = base_cores {
        if bc != bench.cores {
            out.push_str(&format!(
                "> baseline measured on {bc} core(s); absolute throughput \
                 deltas are not like-for-like\n\n"
            ));
        }
    }
    out.push_str("| metric | baseline | fresh | delta |\n");
    out.push_str("|---|---|---|---|\n");
    out.push_str(&format!(
        "| serial records/s | {} | {:.0} | {} |\n",
        base_rps.map_or("—".to_string(), |r| format!("{r:.0}")),
        bench.serial_records_per_s,
        fmt_delta(bench.serial_records_per_s, base_rps)
    ));
    out.push_str(&format!(
        "| ingest records/s | — | {:.0} | — |\n",
        bench.ingest_records_per_s
    ));
    let base_columnar = baseline_json.and_then(extract_columnar_vs_pcap);
    out.push_str(&format!(
        "| columnar ingest records/s | — | {:.0} | — |\n",
        bench.columnar_ingest_records_per_s
    ));
    out.push_str(&format!(
        "| columnar vs pcap | {} | {:.2}x | {} |\n",
        base_columnar.map_or("—".to_string(), |r| format!("{r:.2}x")),
        bench.columnar_vs_pcap,
        fmt_delta(bench.columnar_vs_pcap, base_columnar)
    ));
    let base_mmap = baseline_json.and_then(extract_mmap_vs_buffered);
    out.push_str(&format!(
        "| mmap ingest records/s | — | {:.0} | — |\n",
        bench.mmap_ingest_records_per_s
    ));
    out.push_str(&format!(
        "| mmap vs buffered | {} | {:.2}x | {} |\n",
        base_mmap.map_or("—".to_string(), |r| format!("{r:.2}x")),
        bench.mmap_vs_buffered,
        fmt_delta(bench.mmap_vs_buffered, base_mmap)
    ));
    for s in &bench.samples {
        let base = base_speedups
            .iter()
            .find(|(t, _)| *t == s.threads)
            .map(|&(_, sp)| sp);
        out.push_str(&format!(
            "| {}-thread speedup | {} | {:.3}x | {} |\n",
            s.threads,
            base.map_or("—".to_string(), |b| format!("{b:.3}x")),
            s.speedup,
            fmt_delta(s.speedup, base)
        ));
    }
    out.push_str(&format!(
        "\nall outputs identical to serial: **{}**\n",
        bench.all_identical()
    ));
    out
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    exit(2)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.4f64;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut repeats = 3usize;
    let mut engine = BenchEngine::Block;
    let mut out_path = String::from("BENCH_parallel.json");
    let mut gate_path: Option<String> = None;
    let mut summary_path: Option<String> = None;
    let mut metrics_interval_ms: Option<u64> = None;
    let mut trace_path: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--scale" => {
                scale = it
                    .next()
                    .unwrap_or_else(|| die("--scale needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --scale"));
                if !scale.is_finite() || scale <= 0.0 {
                    die("--scale must be positive");
                }
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
                threads = v
                    .split(',')
                    .map(|t| match t.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => die("--threads wants positive integers, e.g. 1,2,4,8"),
                    })
                    .collect();
                if threads.is_empty() {
                    die("--threads list is empty");
                }
            }
            "--repeat" => {
                repeats = it
                    .next()
                    .unwrap_or_else(|| die("--repeat needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --repeat"));
                if repeats == 0 {
                    die("--repeat must be at least 1");
                }
            }
            "--engine" => {
                engine = match it
                    .next()
                    .unwrap_or_else(|| die("--engine needs a value"))
                    .as_str()
                {
                    "block" => BenchEngine::Block,
                    "ring" => BenchEngine::Ring,
                    other => die(&format!("unknown engine {other:?} (block or ring)")),
                };
            }
            "--out" => {
                out_path = it
                    .next()
                    .unwrap_or_else(|| die("--out needs a value"))
                    .clone();
            }
            "--gate" => {
                gate_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--gate needs a value"))
                        .clone(),
                );
            }
            "--summary" => {
                summary_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--summary needs a path"))
                        .clone(),
                );
            }
            "--metrics-interval" => {
                let ms: u64 = it
                    .next()
                    .unwrap_or_else(|| die("--metrics-interval needs milliseconds"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --metrics-interval"));
                if ms == 0 {
                    die("--metrics-interval must be at least 1 ms");
                }
                metrics_interval_ms = Some(ms);
            }
            "--trace" => {
                trace_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--trace needs a path"))
                        .clone(),
                );
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    // Read the baseline up front: `--out` may overwrite the same file.
    let baseline_json = gate_path.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("error: cannot read gate baseline {p}: {e}");
            exit(2);
        })
    });

    if gate_path.is_some() && (metrics_interval_ms.is_some() || trace_path.is_some()) {
        eprintln!(
            "warning: --gate with live observability enabled — sampler/trace \
             overhead perturbs the timed runs; floors are still enforced"
        );
    }
    if trace_path.is_some() {
        telemetry::trace::enable(telemetry::trace::DEFAULT_RING_CAPACITY);
    }
    let sampler = metrics_interval_ms.map(|ms| {
        telemetry::export::Sampler::spawn(
            telemetry::global(),
            std::time::Duration::from_millis(ms),
            Box::new(telemetry::export::JsonlConsumer::new(std::io::stderr())),
        )
    });

    eprintln!("bench_parallel: building the bench trace (scale {scale}) ...");
    let records = parallel::bench_trace(scale);
    eprintln!(
        "bench_parallel: {} records; timing serial + {:?} {} workers, best of {}",
        records.len(),
        threads,
        engine.name(),
        repeats
    );
    let bench = parallel::run_on_engine(&records, &threads, repeats, engine);

    if let Some(s) = sampler {
        if let Err(e) = s.stop() {
            eprintln!("error: metrics export failed: {e}");
            exit(1);
        }
    }
    if let Some(path) = &trace_path {
        telemetry::trace::disable();
        let write = || -> std::io::Result<()> {
            let f = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(f);
            telemetry::trace::write_chrome_trace(&mut w)?;
            w.flush()
        };
        if let Err(e) = write() {
            eprintln!("error: cannot write trace {path}: {e}");
            exit(1);
        }
        eprintln!("wrote trace {path}");
    }

    let json = bench.to_json();
    let mut f = std::fs::File::create(&out_path).unwrap_or_else(|e| {
        eprintln!("error: cannot create {out_path}: {e}");
        exit(1);
    });
    f.write_all(json.as_bytes()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        exit(1);
    });

    if let Some(path) = &summary_path {
        let summary = render_summary(&bench, baseline_json.as_deref());
        std::fs::write(path, summary).unwrap_or_else(|e| {
            eprintln!("error: cannot write summary {path}: {e}");
            exit(1);
        });
        eprintln!("wrote summary {path}");
    }

    eprintln!("engine: {}", bench.engine);
    eprintln!(
        "cores: {} ({} · {})",
        bench.cores, bench.rustc, bench.runner
    );
    eprintln!(
        "ingest: {:.1} records/s ({} records)",
        bench.ingest_records_per_s, bench.ingest_records
    );
    eprintln!(
        "ingest (columnar): {:.1} records/s ({:.2}x pcap)",
        bench.columnar_ingest_records_per_s, bench.columnar_vs_pcap
    );
    eprintln!(
        "ingest (mmap): {:.1} records/s ({:.2}x buffered {:.1})",
        bench.mmap_ingest_records_per_s,
        bench.mmap_vs_buffered,
        bench.buffered_ingest_records_per_s
    );
    eprintln!(
        "serial: {:.1} records/s ({:.2} ms)",
        bench.serial_records_per_s,
        bench.serial_best_ns as f64 / 1e6
    );
    for s in &bench.samples {
        eprintln!(
            "threads {:>2}: {:.1} records/s  speedup {:.2}x  identical: {}",
            s.threads, s.records_per_s, s.speedup, s.identical
        );
    }
    eprintln!("wrote {out_path}");

    if !bench.all_identical() {
        eprintln!("error: parallel output DIVERGED from serial — determinism bug");
        exit(1);
    }
    // An all-zero stage row — or a per-worker row that recorded no time at
    // all — means instrumentation went dark (historically the 1-thread
    // ring row, whose serial delegation never touched the `shard.*`
    // timers). That is a regression the same way divergent output is.
    for s in &bench.samples {
        if !s.stages.is_empty() && s.stages.iter().all(|&(_, ns)| ns == 0) {
            eprintln!(
                "error: {}-thread stage breakdown is all zeros — stage \
                 instrumentation regressed",
                s.threads
            );
            exit(1);
        }
        if s.any_worker_row_all_zero() {
            eprintln!(
                "error: {}-thread run has an all-zero per-worker row — worker \
                 instrumentation regressed: {:?}",
                s.threads, s.workers
            );
            exit(1);
        }
    }
    if let Some(baseline) = baseline_json {
        let failures = gate_failures(&bench, &baseline);
        if failures.is_empty() {
            eprintln!("gate: throughput floors passed");
        } else {
            for f in &failures {
                eprintln!("gate FAILURE: {f}");
            }
            exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bench result shaped like a real run at the given core count and
    /// serial throughput, with the given `(threads, speedup)` samples.
    fn fake_bench(
        cores: usize,
        serial_rps: f64,
        speedups: &[(usize, f64)],
    ) -> parallel::ParallelBench {
        parallel::ParallelBench {
            engine: "block",
            records: 1000,
            streams: 3,
            loops: 1,
            cores,
            rustc: "rustc 0.0.0-test".into(),
            runner: "test".into(),
            serial_best_ns: 1_000_000,
            serial_records_per_s: serial_rps,
            serial_stages: vec![],
            ingest_records: 1000,
            ingest_ns: 1_000_000,
            ingest_records_per_s: serial_rps,
            columnar_ingest_ns: 300_000,
            columnar_ingest_records_per_s: serial_rps * 3.0,
            columnar_vs_pcap: 3.0,
            mmap_ingest_records: 1000,
            buffered_ingest_ns: 250_000,
            buffered_ingest_records_per_s: serial_rps * 4.0,
            mmap_ingest_ns: 200_000,
            mmap_ingest_records_per_s: serial_rps * 5.0,
            mmap_vs_buffered: 1.25,
            samples: speedups
                .iter()
                .map(|&(threads, speedup)| parallel::ParallelSample {
                    threads,
                    best_ns: 1_000_000,
                    records_per_s: serial_rps * speedup,
                    speedup,
                    identical: true,
                    stages: vec![],
                    workers: vec![],
                })
                .collect(),
        }
    }

    fn baseline(cores: Option<usize>, rps: f64) -> String {
        let cores_field = cores.map_or(String::new(), |c| format!("  \"cores\": {c},\n"));
        format!(
            "{{\n{cores_field}  \"serial\": {{\"ns\": 1000, \
             \"records_per_s\": {rps:.1}}}\n}}\n"
        )
    }

    #[test]
    fn extract_cores_reads_the_artifact_field() {
        assert_eq!(extract_cores(&baseline(Some(8), 1.0)), Some(8));
        assert_eq!(extract_cores(&baseline(None, 1.0)), None);
    }

    #[test]
    fn extract_speedups_reads_the_parallel_rows() {
        let doc = fake_bench(4, 1000.0, &[(2, 1.8), (4, 2.9)]).to_json();
        assert_eq!(extract_speedups(&doc), vec![(2, 1.8), (4, 2.9)]);
        assert!(extract_speedups("{}").is_empty());
    }

    #[test]
    fn serial_floor_binds_only_like_for_like() {
        // Same core count + regression below 90% of baseline: failure.
        let bench = fake_bench(1, 800.0, &[]);
        let fails = gate_failures(&bench, &baseline(Some(1), 1000.0));
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("serial throughput regressed"));

        // Same core count, within the floor: pass.
        assert!(gate_failures(&fake_bench(1, 950.0, &[]), &baseline(Some(1), 1000.0)).is_empty());

        // Different core count: the serial floor must not bind, however
        // bad the absolute number looks.
        assert!(gate_failures(&bench, &baseline(Some(64), 1000.0)).is_empty());

        // Pre-`cores` baseline: likewise skipped, not failed.
        assert!(gate_failures(&bench, &baseline(None, 1000.0)).is_empty());
    }

    #[test]
    fn speedup_floors_bind_per_core_count() {
        // 4-core machine meeting both floors: pass.
        let good = fake_bench(4, 1000.0, &[(2, 1.7), (4, 2.6)]);
        assert!(gate_failures(&good, &baseline(Some(4), 1000.0)).is_empty());

        // 2-thread floor violated.
        let slow2 = fake_bench(4, 1000.0, &[(2, 1.4), (4, 2.6)]);
        let fails = gate_failures(&slow2, &baseline(Some(4), 1000.0));
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("2-thread speedup"));

        // Both floors violated: both reported.
        let slow = fake_bench(4, 1000.0, &[(2, 1.0), (4, 1.1)]);
        assert_eq!(gate_failures(&slow, &baseline(Some(4), 1000.0)).len(), 2);

        // 1-core machine: floors loudly skipped, never failed.
        let one_core = fake_bench(1, 1000.0, &[(2, 0.5), (4, 0.4)]);
        assert!(gate_failures(&one_core, &baseline(Some(1), 1000.0)).is_empty());
    }

    #[test]
    fn columnar_ingest_floor_is_within_run_and_never_skipped() {
        // Ratio below the floor: failure, even on a 1-core machine.
        let mut bench = fake_bench(1, 1000.0, &[]);
        bench.columnar_vs_pcap = 2.0;
        let fails = gate_failures(&bench, &baseline(Some(1), 1000.0));
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("columnar ingest"));
        // Binds even when the serial floor is skipped (unlike cores /
        // pre-`cores` baseline): the ratio is within-run.
        let fails = gate_failures(&bench, &baseline(None, 1000.0));
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("columnar ingest"));
        // At the floor: pass.
        bench.columnar_vs_pcap = 2.5;
        assert!(gate_failures(&bench, &baseline(Some(1), 1000.0)).is_empty());
    }

    #[test]
    fn extract_columnar_vs_pcap_reads_the_artifact_field() {
        let doc = fake_bench(4, 1000.0, &[]).to_json();
        assert_eq!(extract_columnar_vs_pcap(&doc), Some(3.0));
        assert_eq!(extract_columnar_vs_pcap("{}"), None);
    }

    #[test]
    fn extract_mmap_vs_buffered_reads_the_artifact_field() {
        let doc = fake_bench(4, 1000.0, &[]).to_json();
        assert_eq!(extract_mmap_vs_buffered(&doc), Some(1.25));
        assert_eq!(extract_mmap_vs_buffered("{}"), None);
    }

    #[test]
    fn mmap_ingest_floor_is_within_run_and_never_skipped() {
        // Ratio below the floor: failure, even on a 1-core machine and
        // even against a baseline the serial floor skips.
        let mut bench = fake_bench(1, 1000.0, &[]);
        bench.mmap_vs_buffered = 1.05;
        let fails = gate_failures(&bench, &baseline(Some(1), 1000.0));
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("mapped .ltc ingest"));
        let fails = gate_failures(&bench, &baseline(None, 1000.0));
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("mapped .ltc ingest"));
        // At the floor: pass.
        bench.mmap_vs_buffered = 1.15;
        assert!(gate_failures(&bench, &baseline(Some(1), 1000.0)).is_empty());
    }

    #[test]
    fn unparseable_baseline_is_a_failure_not_a_skip() {
        let fails = gate_failures(&fake_bench(1, 800.0, &[]), "{}");
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("no parseable serial records_per_s"));
    }

    #[test]
    fn summary_renders_deltas_against_the_baseline() {
        let base = fake_bench(4, 1000.0, &[(2, 1.8), (4, 2.9)]).to_json();
        let fresh = fake_bench(4, 1100.0, &[(2, 1.8), (4, 3.2)]);
        let md = render_summary(&fresh, Some(&base));
        assert!(
            md.contains("| serial records/s | 1000 | 1100 | +10.0% |"),
            "{md}"
        );
        assert!(
            md.contains("| 4-thread speedup | 2.900x | 3.200x |"),
            "{md}"
        );
        assert!(md.contains("identical to serial: **true**"), "{md}");
        // Without a baseline, the table renders with em-dash placeholders.
        let solo = render_summary(&fresh, None);
        assert!(
            solo.contains("| serial records/s | — | 1100 | — |"),
            "{solo}"
        );
    }
}
