//! `bench_parallel` — serial vs sharded-parallel detector throughput,
//! written to a `BENCH_parallel.json` artifact.
//!
//! ```text
//! cargo run -p bench --release --bin bench_parallel
//! cargo run -p bench --release --bin bench_parallel -- --scale 0.05 --repeat 1
//! cargo run -p bench --release --bin bench_parallel -- --threads 2,4,8,16
//! ```
//!
//! Exit status is nonzero when any parallel run's output diverges from
//! serial — the determinism guard CI relies on. Timing numbers are
//! reported but never gated.

use bench::parallel;
use std::io::Write;
use std::process::exit;

const USAGE: &str = "\
bench_parallel — serial vs sharded detector throughput (BENCH_parallel.json)

USAGE: bench_parallel [OPTIONS]

OPTIONS
  --scale <F>        bench trace scale factor (default 0.4)
  --threads <list>   comma-separated shard counts (default 1,2,4,8)
  --repeat <N>       timing repeats, best-of (default 3)
  --out <path>       artifact path (default BENCH_parallel.json)
  -h, --help         this text
";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    exit(2)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.4f64;
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    let mut repeats = 3usize;
    let mut out_path = String::from("BENCH_parallel.json");
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--scale" => {
                scale = it
                    .next()
                    .unwrap_or_else(|| die("--scale needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --scale"));
                if !scale.is_finite() || scale <= 0.0 {
                    die("--scale must be positive");
                }
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
                threads = v
                    .split(',')
                    .map(|t| match t.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => die("--threads wants positive integers, e.g. 1,2,4,8"),
                    })
                    .collect();
                if threads.is_empty() {
                    die("--threads list is empty");
                }
            }
            "--repeat" => {
                repeats = it
                    .next()
                    .unwrap_or_else(|| die("--repeat needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --repeat"));
                if repeats == 0 {
                    die("--repeat must be at least 1");
                }
            }
            "--out" => {
                out_path = it
                    .next()
                    .unwrap_or_else(|| die("--out needs a value"))
                    .clone();
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    eprintln!("bench_parallel: building the bench trace (scale {scale}) ...");
    let records = parallel::bench_trace(scale);
    eprintln!(
        "bench_parallel: {} records; timing serial + {:?} shards, best of {}",
        records.len(),
        threads,
        repeats
    );
    let bench = parallel::run_on(&records, &threads, repeats);

    let json = bench.to_json();
    let mut f = std::fs::File::create(&out_path).unwrap_or_else(|e| {
        eprintln!("error: cannot create {out_path}: {e}");
        exit(1);
    });
    f.write_all(json.as_bytes()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        exit(1);
    });

    eprintln!(
        "serial: {:.1} records/s ({:.2} ms)",
        bench.serial_records_per_s,
        bench.serial_best_ns as f64 / 1e6
    );
    for s in &bench.samples {
        eprintln!(
            "threads {:>2}: {:.1} records/s  speedup {:.2}x  identical: {}",
            s.threads, s.records_per_s, s.speedup, s.identical
        );
    }
    eprintln!("wrote {out_path}");

    if !bench.all_identical() {
        eprintln!("error: parallel output DIVERGED from serial — determinism bug");
        exit(1);
    }
}
