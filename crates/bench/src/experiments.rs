//! Regeneration of every table and figure (see DESIGN.md's experiment
//! index: T1, T2, F2–F9, S1, S2, A1, A2).

use crate::harness::{BackboneData, ExperimentData};
use loopscope::analysis;
use loopscope::merge::LoopKind;
use loopscope::traffic_class::CATEGORIES;
use loopscope::{Detector, DetectorConfig};
use simnet::DropCause;
use stats::table::{fmt_count, fmt_pct, Table};
use stats::{Cdf, TimeSeries};

fn mbps(bps: f64) -> String {
    format!("{:.1}", bps / 1e6)
}

/// T1 — Table I: per-trace length, average bandwidth, packets, looped
/// packets.
pub fn table1(data: &ExperimentData) -> String {
    let mut t = Table::new(&[
        "Trace",
        "Length (s)",
        "Avg BW (Mbps)",
        "Packets",
        "Looped Packets",
        "Looped Sightings",
    ])
    .with_title("TABLE I — DETAILS OF TRACES");
    for b in &data.backbones {
        let sum = analysis::trace_summary(&b.run.records, &b.detection.streams);
        t.row_owned(vec![
            b.name().to_string(),
            format!("{:.1}", sum.duration_ns as f64 / 1e9),
            mbps(sum.avg_bandwidth_bps),
            fmt_count(sum.total_packets),
            fmt_count(sum.looped_packets),
            fmt_count(sum.looped_sightings),
        ]);
    }
    t.render()
}

/// T2 — Table II: replica streams vs merged routing loops.
pub fn table2(data: &ExperimentData) -> String {
    let mut t = Table::new(&["Trace", "Replica Streams", "Routing Loops"])
        .with_title("TABLE II — NUMBER OF ROUTING LOOPS");
    for b in &data.backbones {
        t.row_owned(vec![
            b.name().to_string(),
            fmt_count(b.detection.streams.len() as u64),
            fmt_count(b.detection.loops.len() as u64),
        ]);
    }
    t.render()
}

/// F2 — Figure 2: TTL delta distribution per trace.
pub fn fig2(data: &ExperimentData) -> String {
    let mut t = Table::new(&[
        "TTL delta",
        "Backbone 1",
        "Backbone 2",
        "Backbone 3",
        "Backbone 4",
    ])
    .with_title("FIGURE 2 — TTL DELTA DISTRIBUTION (fraction of replica streams)");
    let hists: Vec<_> = data
        .backbones
        .iter()
        .map(|b| analysis::ttl_delta_distribution(&b.detection.streams))
        .collect();
    let max_delta = hists
        .iter()
        .flat_map(|h| h.iter().map(|(k, _)| k))
        .max()
        .unwrap_or(0);
    for d in 2..=max_delta.max(2) {
        let mut row = vec![d.to_string()];
        for h in &hists {
            row.push(format!("{:.3}", h.fraction(d)));
        }
        t.row_owned(row);
    }
    t.render()
}

fn cdf_series_table(title: &str, x_label: &str, cdfs: Vec<(String, Cdf)>, points: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (name, mut cdf) in cdfs {
        out.push_str(&format!(
            "  {name}: n={} median={} p90={}\n",
            cdf.len(),
            cdf.median().map_or("-".into(), |v| format!("{v:.2}")),
            cdf.quantile(0.9).map_or("-".into(), |v| format!("{v:.2}")),
        ));
        for (x, f) in cdf.series(points) {
            out.push_str(&format!("    {x_label}={x:<12.3} cdf={f:.3}\n"));
        }
    }
    out
}

/// F3 — Figure 3: CDF of the number of replicas per stream.
pub fn fig3(data: &ExperimentData) -> String {
    let cdfs = data
        .backbones
        .iter()
        .map(|b| {
            (
                b.name().to_string(),
                analysis::stream_size_cdf(&b.detection.streams),
            )
        })
        .collect();
    cdf_series_table("FIGURE 3 — CDF OF REPLICAS PER STREAM", "size", cdfs, 12)
}

/// F4 — Figure 4: CDF of mean inter-replica spacing (ms).
pub fn fig4(data: &ExperimentData) -> String {
    let cdfs = data
        .backbones
        .iter()
        .map(|b| {
            (
                b.name().to_string(),
                analysis::spacing_cdf_ms(&b.detection.streams),
            )
        })
        .collect();
    cdf_series_table(
        "FIGURE 4 — CDF OF INTER-REPLICA SPACING (ms)",
        "spacing_ms",
        cdfs,
        12,
    )
}

fn mix_table(title: &str, data: &ExperimentData, looped: bool) -> String {
    let mut header = vec!["Category"];
    let names: Vec<String> = data
        .backbones
        .iter()
        .map(|b| b.name().to_string())
        .collect();
    header.extend(names.iter().map(String::as_str));
    let mut t = Table::new(&header).with_title(title);
    let dists: Vec<_> = data
        .backbones
        .iter()
        .map(|b| {
            if looped {
                analysis::mix_looped(&b.detection.streams)
            } else {
                analysis::mix_all(&b.run.records)
            }
        })
        .collect();
    for cat in CATEGORIES {
        let mut row = vec![cat.to_string()];
        for d in &dists {
            row.push(fmt_pct(d.fraction(cat)));
        }
        t.row_owned(row);
    }
    t.render()
}

/// F5 — Figure 5: traffic-type distribution of all traffic.
pub fn fig5(data: &ExperimentData) -> String {
    mix_table(
        "FIGURE 5 — TRAFFIC TYPE DISTRIBUTION, ALL TRAFFIC",
        data,
        false,
    )
}

/// F6 — Figure 6: traffic-type distribution of looped traffic.
pub fn fig6(data: &ExperimentData) -> String {
    mix_table(
        "FIGURE 6 — TRAFFIC TYPE DISTRIBUTION, LOOPED TRAFFIC",
        data,
        true,
    )
}

/// F7 — Figure 7: destination scatter of replica streams over time.
pub fn fig7(data: &ExperimentData) -> String {
    let mut out = String::from("FIGURE 7 — DESTINATIONS OF REPLICA STREAMS OVER TIME\n");
    for b in &data.backbones {
        let scatter = analysis::dest_scatter(&b.detection.streams);
        let cc = analysis::class_c_share(&b.detection.streams);
        let diversity = analysis::dest_diversity_series(&b.detection.streams, 30_000_000_000);
        let peak_div = diversity.iter().map(|(_, n)| *n).max().unwrap_or(0);
        out.push_str(&format!(
            "  {}: {} streams across {} distinct /24s (peak {} per 30 s), class-C share {}\n",
            b.name(),
            scatter.len(),
            b.detection
                .streams
                .iter()
                .map(|s| s.dst_slash24())
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            peak_div,
            fmt_pct(cc)
        ));
        for (t, dst) in scatter.iter().take(25) {
            out.push_str(&format!("    t={t:<10.3}s dst={dst}\n"));
        }
        if scatter.len() > 25 {
            out.push_str(&format!("    … ({} more)\n", scatter.len() - 25));
        }
    }
    out
}

/// F8 — Figure 8: CDF of replica stream duration (ms).
pub fn fig8(data: &ExperimentData) -> String {
    let cdfs = data
        .backbones
        .iter()
        .map(|b| {
            (
                b.name().to_string(),
                analysis::stream_duration_cdf_ms(&b.detection.streams),
            )
        })
        .collect();
    cdf_series_table(
        "FIGURE 8 — CDF OF REPLICA STREAM DURATION (ms)",
        "duration_ms",
        cdfs,
        12,
    )
}

/// F9 — Figure 9: CDF of routing loop duration (s).
pub fn fig9(data: &ExperimentData) -> String {
    let mut out = String::from("FIGURE 9 — CDF OF ROUTING LOOP DURATION (s)\n");
    for b in &data.backbones {
        let mut cdf = analysis::loop_duration_cdf_s(&b.detection.loops);
        let under_10s = cdf.eval(10.0);
        out.push_str(&format!(
            "  {}: n={} median={} under-10s={}\n",
            b.name(),
            cdf.len(),
            cdf.median().map_or("-".into(), |v| format!("{v:.2}s")),
            fmt_pct(under_10s),
        ));
        for (x, f) in cdf.series(10) {
            out.push_str(&format!("    duration={x:<10.3}s cdf={f:.3}\n"));
        }
    }
    out
}

/// Loss bucket width: one paper-minute, shrunk for small-scale runs so
/// there are always several buckets.
fn loss_bucket_ns(b: &BackboneData) -> u64 {
    let dur = b.run.report.end_time.as_nanos().max(1);
    60_000_000_000u64.min((dur / 6).max(1_000_000_000))
}

/// S1 — §VI loss: loop-attributed share of per-bucket packet loss.
pub fn loss(data: &ExperimentData) -> String {
    let mut out =
        String::from("S1 — LOSS IMPACT (loop-attributed share of packet loss per bucket)\n");
    for b in &data.backbones {
        let bucket = loss_bucket_ns(b);
        let mut total = TimeSeries::new(bucket);
        let mut looped = TimeSeries::new(bucket);
        for d in &b.run.report.drop_records {
            total.add(d.time.as_nanos(), 1);
            if d.looped || d.cause == DropCause::TtlExpired {
                looped.add(d.time.as_nanos(), 1);
            }
        }
        let ratios = looped.ratio(&total);
        let peak = ratios.iter().filter_map(|(_, r)| *r).fold(0.0f64, f64::max);
        let overall = if total.total() > 0 {
            looped.total() as f64 / total.total() as f64
        } else {
            0.0
        };
        // Detector-side estimate, from the trace alone.
        let deaths = loopscope::impact::loop_death_timeseries(&b.detection.streams, bucket);
        // The paper's framing: loop losses are a large share of *losses*
        // in loss-y minutes ("up to 90% of packet loss per minute") yet a
        // tiny share of *traffic* ("losses due to routing loops remain
        // very small").
        let traffic_rate = looped.total() as f64 / b.run.records.len().max(1) as f64;
        out.push_str(&format!(
            "  {}: bucket={}s total_losses={} loop_losses={} ({} of traffic) overall_share_of_loss={} peak_bucket_share={} trace_estimated_deaths={}\n",
            b.name(),
            bucket / 1_000_000_000,
            total.total(),
            looped.total(),
            fmt_pct(traffic_rate),
            fmt_pct(overall),
            fmt_pct(peak),
            deaths.total(),
        ));
        for ((t, r), (_, loop_n)) in ratios.iter().zip(looped.iter()) {
            if let Some(r) = r {
                out.push_str(&format!(
                    "    t={:>5}s loss_share={} (loop drops {})\n",
                    t / 1_000_000_000,
                    fmt_pct(*r),
                    loop_n
                ));
            }
        }
    }
    out
}

/// S2 — §VI escape: fraction of looping packets that escape and the extra
/// delay they incur.
pub fn escape(data: &ExperimentData) -> String {
    let mut out = String::from("S2 — ESCAPE ANALYSIS (ground truth vs trace-side estimate)\n");
    for b in &data.backbones {
        let rep = &b.run.report;
        let escaped: Vec<_> = rep.deliveries.iter().filter(|d| d.looped).collect();
        let clean: Vec<_> = rep.deliveries.iter().filter(|d| !d.looped).collect();
        let died = rep
            .drop_records
            .iter()
            .filter(|d| d.looped && d.cause == DropCause::TtlExpired)
            .count();
        let total_looping = escaped.len() + died;
        let frac = if total_looping > 0 {
            escaped.len() as f64 / total_looping as f64
        } else {
            0.0
        };
        let mean_ms = |v: &[&simnet::DeliveryRecord]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().map(|d| d.delay().as_millis_f64()).sum::<f64>() / v.len() as f64
            }
        };
        let extra = mean_ms(&escaped) - mean_ms(&clean);
        let est = loopscope::impact::escape_estimate(&b.detection.streams);
        let mut delay_cdf = loopscope::impact::escape_extra_delay_cdf_ms(&b.detection.streams);
        out.push_str(&format!(
            "  {}: looping={} escaped={} ({}) died={} | extra delay: mean {:.1} ms (trace est. median {} ms) | trace escape upper bound {}\n",
            b.name(),
            total_looping,
            escaped.len(),
            fmt_pct(frac),
            died,
            extra,
            delay_cdf.median().map_or("-".into(), |v| format!("{v:.1}")),
            fmt_pct(est.escape_fraction_upper()),
        ));
    }
    out
}

/// A1 — merge-gap ablation: loop counts at 1/2/5-minute gaps.
pub fn ablate_gap(data: &ExperimentData) -> String {
    let mut t = Table::new(&["Trace", "1 min", "2 min", "5 min"])
        .with_title("A1 — MERGE-GAP ABLATION (routing loop count)");
    for b in &data.backbones {
        let mut row = vec![b.name().to_string()];
        for minutes in [1u64, 2, 5] {
            let cfg = DetectorConfig::default().with_merge_gap_minutes(minutes);
            let result = Detector::new(cfg).run(&b.run.records);
            row.push(result.loops.len().to_string());
        }
        t.row_owned(row);
    }
    t.render()
}

/// A2 — validation ablation: what steps 2's rules reject, and how many of
/// the rejects were link-layer duplicates (true negatives).
pub fn ablate_validate(data: &ExperimentData) -> String {
    let mut t = Table::new(&[
        "Trace",
        "Raw candidates",
        "Short-rejected",
        "Coval-rejected",
        "Validated",
        "No-validation streams",
        "Link dups injected",
    ])
    .with_title("A2 — VALIDATION ABLATION");
    for b in &data.backbones {
        let strict = &b.detection.stats;
        let lax = Detector::new(DetectorConfig::no_validation()).run(&b.run.records);
        t.row_owned(vec![
            b.name().to_string(),
            strict.raw_candidates.to_string(),
            strict.rejected_short.to_string(),
            strict.rejected_covalidation.to_string(),
            strict.validated_streams.to_string(),
            lax.streams.len().to_string(),
            b.run.report.duplicates_generated.to_string(),
        ]);
    }
    t.render()
}

/// Key ablation: candidate inflation when the transport checksum is
/// dropped from the replica key (the payload-identity proxy of §IV-A.1).
pub fn ablate_key(data: &ExperimentData) -> String {
    use loopscope::ReplicaKey;
    use std::collections::HashMap;
    let mut t = Table::new(&[
        "Trace",
        "Full-key groups",
        "No-checksum groups",
        "Inflation",
    ])
    .with_title("KEY ABLATION — multi-record key groups with and without the transport checksum");
    for b in &data.backbones {
        let mut full: HashMap<ReplicaKey, u32> = HashMap::new();
        let mut reduced: HashMap<ReplicaKey, u32> = HashMap::new();
        for r in &b.run.records {
            *full.entry(ReplicaKey::of(r)).or_insert(0) += 1;
            *reduced
                .entry(ReplicaKey::without_transport_checksum(r))
                .or_insert(0) += 1;
        }
        let full_groups = full.values().filter(|&&c| c >= 2).count();
        let red_groups = reduced.values().filter(|&&c| c >= 2).count();
        let inflation = if full_groups > 0 {
            format!("{:.2}x", red_groups as f64 / full_groups as f64)
        } else {
            format!("{red_groups} from 0")
        };
        t.row_owned(vec![
            b.name().to_string(),
            full_groups.to_string(),
            red_groups.to_string(),
            inflation,
        ]);
    }
    t.render()
}

/// P1 — persistent loops (the paper's future work, §I/§II): a scripted
/// static-route misconfiguration creates a loop no protocol heals; the
/// detector must find it, classify it as persistent, and the routing-data
/// correlation must attribute it to the misconfiguration.
pub fn persistent(scale: f64) -> String {
    use routing_loops::attribution::{attribute, cause_counts, LoopCause};
    use routing_loops::backbone::{paper_backbones, run_backbone};

    let mut spec = paper_backbones(scale).remove(2); // quiet Backbone 3
    spec.name = "Backbone 3 + misconfig".into();
    spec.igp_failures = 2;
    spec.misconfig_window = Some((0.25, 0.90));
    let run = run_backbone(&spec);
    let detection = Detector::new(DetectorConfig::default()).run(&run.records);

    let trace_end = run
        .records
        .last()
        .map(|r| r.timestamp_ns)
        .unwrap_or_default();
    // 60 s is beyond any transient convergence; for short demo traces the
    // threshold scales down with the trace so the classification remains
    // meaningful.
    let threshold = 60_000_000_000u64.min((trace_end as f64 * 0.3) as u64);
    let mut t = Table::new(&["Loop", "Prefix", "Duration", "Class", "Open-ended", "Cause"])
        .with_title("P1 — PERSISTENT LOOP DETECTION AND ATTRIBUTION");
    let attrs = attribute(
        &detection.loops,
        &run.compiled,
        simnet::SimDuration::from_secs(45),
    );
    let mut n_persistent = 0;
    let mut attributed_misconfig = 0;
    for (i, l) in detection.loops.iter().enumerate() {
        let kind = l.classify(threshold);
        if kind == LoopKind::Persistent {
            n_persistent += 1;
        }
        let cause = attrs[i].cause.map(|c| c.as_str()).unwrap_or("unattributed");
        if kind == LoopKind::Persistent && attrs[i].cause == Some(LoopCause::Misconfiguration) {
            attributed_misconfig += 1;
        }
        t.row_owned(vec![
            i.to_string(),
            l.prefix.to_string(),
            stats::table::fmt_duration_ns(l.duration_ns()),
            match kind {
                LoopKind::Transient => "transient".into(),
                LoopKind::Persistent => "PERSISTENT".into(),
            },
            l.is_open_ended(trace_end, 2_000_000_000).to_string(),
            cause.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "persistent loops: {n_persistent}; attributed to misconfiguration: {attributed_misconfig}\n",
    ));
    out.push_str("cause summary: ");
    for (label, count) in cause_counts(&attrs) {
        out.push_str(&format!("{label}={count} "));
    }
    out.push('\n');
    out
}

/// Attribution report for the standard backbones (the §VI future-work
/// correlation, run over the same data as the tables).
pub fn attribution_report(data: &ExperimentData) -> String {
    use routing_loops::attribution::{attribute, cause_counts};
    let mut t = Table::new(&["Trace", "Loops", "Attributed", "Causes"])
        .with_title("ATTRIBUTION — detected loops joined against the control-plane record");
    for b in &data.backbones {
        let attrs = attribute(
            &b.detection.loops,
            &b.run.compiled,
            simnet::SimDuration::from_secs(45),
        );
        let attributed = attrs.iter().filter(|a| a.cause.is_some()).count();
        let causes: Vec<String> = cause_counts(&attrs)
            .into_iter()
            .map(|(l, c)| format!("{l}:{c}"))
            .collect();
        t.row_owned(vec![
            b.name().to_string(),
            b.detection.loops.len().to_string(),
            attributed.to_string(),
            causes.join(" "),
        ]);
    }
    t.render()
}

/// S3 — §VI reordering: "those packets that escape a loop can be
/// delivered out-of-order". A delivery is *overtaken* when some
/// later-injected packet to the same destination arrived earlier; loop
/// escapees should be overtaken far more often than clean deliveries.
pub fn reorder(data: &ExperimentData) -> String {
    let mut t = Table::new(&[
        "Trace",
        "Clean deliveries",
        "Clean overtaken",
        "Escaped deliveries",
        "Escaped overtaken",
    ])
    .with_title("S3 — OUT-OF-ORDER DELIVERY (overtaken = a later-injected packet to the same destination arrived first)");
    for b in &data.backbones {
        use std::collections::HashMap;
        let mut by_dst: HashMap<std::net::Ipv4Addr, Vec<&simnet::DeliveryRecord>> = HashMap::new();
        for d in &b.run.report.deliveries {
            by_dst.entry(d.dst).or_default().push(d);
        }
        let mut clean = (0u64, 0u64); // (total, overtaken)
        let mut escaped = (0u64, 0u64);
        for group in by_dst.values_mut() {
            group.sort_by_key(|d| d.inject_time);
            // suffix-min of delivery times over inject order.
            let n = group.len();
            let mut suffix_min = vec![simnet::SimTime(u64::MAX); n + 1];
            for i in (0..n).rev() {
                suffix_min[i] = suffix_min[i + 1].min(group[i].deliver_time);
            }
            for (i, d) in group.iter().enumerate() {
                let overtaken = suffix_min[i + 1] < d.deliver_time;
                let slot = if d.looped { &mut escaped } else { &mut clean };
                slot.0 += 1;
                if overtaken {
                    slot.1 += 1;
                }
            }
        }
        let pct = |(total, ot): (u64, u64)| {
            if total == 0 {
                "-".to_string()
            } else {
                fmt_pct(ot as f64 / total as f64)
            }
        };
        t.row_owned(vec![
            b.name().to_string(),
            fmt_count(clean.0),
            pct(clean),
            fmt_count(escaped.0),
            pct(escaped),
        ]);
    }
    t.render()
}

/// R1 — robustness: are the reported distributions properties of the
/// *system* or artifacts of one seed? Two independently-seeded runs of the
/// same backbone are compared with the two-sample KS statistic on each
/// CDF-figure quantity. Small D (and non-tiny p) means the figure shape is
/// stable across randomness.
pub fn stability(scale: f64) -> String {
    use routing_loops::backbone::{paper_backbones, run_backbone};
    use stats::ks_two_sample;

    let base = paper_backbones(scale).remove(0);
    let mut runs = Vec::new();
    for (tag, seed) in [("seed A", base.seed), ("seed B", base.seed ^ 0xffff)] {
        let mut spec = base.clone();
        spec.seed = seed;
        spec.name = format!("{} ({tag})", base.name);
        let run = run_backbone(&spec);
        let det = Detector::new(DetectorConfig::default()).run(&run.records);
        runs.push(det);
    }
    let (a, b) = (&runs[0], &runs[1]);
    let mut t = Table::new(&["Quantity", "n(A)", "n(B)", "KS D", "p-value"])
        .with_title("R1 — CROSS-SEED STABILITY (two-sample KS on figure quantities)");
    let quantities: Vec<(&str, Cdf, Cdf)> = vec![
        (
            "Fig3 replicas/stream",
            analysis::stream_size_cdf(&a.streams),
            analysis::stream_size_cdf(&b.streams),
        ),
        (
            "Fig4 spacing (ms)",
            analysis::spacing_cdf_ms(&a.streams),
            analysis::spacing_cdf_ms(&b.streams),
        ),
        (
            "Fig8 stream duration (ms)",
            analysis::stream_duration_cdf_ms(&a.streams),
            analysis::stream_duration_cdf_ms(&b.streams),
        ),
        (
            "Fig9 loop duration (s)",
            analysis::loop_duration_cdf_s(&a.loops),
            analysis::loop_duration_cdf_s(&b.loops),
        ),
    ];
    for (name, ca, cb) in quantities {
        match ks_two_sample(&ca, &cb) {
            Some(r) => t.row_owned(vec![
                name.to_string(),
                r.n1.to_string(),
                r.n2.to_string(),
                format!("{:.3}", r.d),
                format!("{:.3}", r.p_value),
            ]),
            None => t.row_owned(vec![
                name.to_string(),
                ca.len().to_string(),
                cb.len().to_string(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t.render()
}

/// Everything, in paper order.
pub fn all(data: &ExperimentData) -> String {
    let sections = [
        table1(data),
        table2(data),
        fig2(data),
        fig3(data),
        fig4(data),
        fig5(data),
        fig6(data),
        fig7(data),
        fig8(data),
        fig9(data),
        loss(data),
        escape(data),
        reorder(data),
        ablate_gap(data),
        ablate_validate(data),
        ablate_key(data),
        attribution_report(data),
        persistent(data.scale),
        stability(data.scale),
        crate::utilization::report(),
        crate::baseline::report(),
    ];
    sections.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::collect;

    /// One tiny collection shared by all formatting smoke tests.
    fn data() -> ExperimentData {
        collect(0.05)
    }

    #[test]
    fn every_artifact_renders_with_expected_headers() {
        let d = data();
        let cases: Vec<(String, &str)> = vec![
            (table1(&d), "TABLE I"),
            (table2(&d), "TABLE II"),
            (fig2(&d), "FIGURE 2"),
            (fig3(&d), "FIGURE 3"),
            (fig4(&d), "FIGURE 4"),
            (fig5(&d), "FIGURE 5"),
            (fig6(&d), "FIGURE 6"),
            (fig7(&d), "FIGURE 7"),
            (fig8(&d), "FIGURE 8"),
            (fig9(&d), "FIGURE 9"),
            (loss(&d), "S1"),
            (escape(&d), "S2"),
            (reorder(&d), "S3"),
            (ablate_gap(&d), "A1"),
            (ablate_validate(&d), "A2"),
            (ablate_key(&d), "KEY ABLATION"),
            (attribution_report(&d), "ATTRIBUTION"),
        ];
        for (rendered, header) in cases {
            assert!(
                rendered.contains(header),
                "missing {header} in:\n{rendered}"
            );
            // Every table mentions every backbone.
            for b in &d.backbones {
                assert!(rendered.contains(b.name()), "{header} missing {}", b.name());
            }
        }
    }

    #[test]
    fn fig5_tcp_dominates_at_any_scale() {
        let d = data();
        let rendered = fig5(&d);
        // The TCP row is first; eyeball-free check: every backbone column
        // in the TCP row is above 80%.
        let tcp_row = rendered
            .lines()
            .find(|l| l.starts_with("TCP"))
            .expect("TCP row");
        let shares: Vec<f64> = tcp_row
            .split_whitespace()
            .skip(1)
            .map(|c| c.trim_end_matches('%').parse::<f64>().unwrap())
            .collect();
        assert_eq!(shares.len(), 4);
        assert!(shares.iter().all(|s| *s > 75.0), "{tcp_row}");
    }

    #[test]
    fn loss_bucket_adapts_to_short_traces() {
        let d = data();
        for b in &d.backbones {
            let bucket = loss_bucket_ns(b);
            assert!(bucket >= 1_000_000_000);
            assert!(bucket <= 60_000_000_000);
        }
    }
}
