//! S4 — §I collateral impact: "\[routing loops\] impact end-to-end
//! performance … through increased link utilization and corresponding
//! delay and jitter for packets that traverse the link but are not caught
//! in the loop."
//!
//! A controlled trial: two prefixes share a modest link; one gets caught
//! in a scripted loop, the other just passes through. Replicas of the
//! looping traffic occupy the shared link, so the *bystander* flow sees
//! longer queues exactly during the loop window.

use net_types::{Ipv4Prefix, Packet, TcpFlags, UdpHeader};
use simnet::{DeliveryRecord, Engine, Route, SimConfig, SimDuration, SimTime, TopologyBuilder};
use stats::Summary;
use std::net::Ipv4Addr;

/// Outcome of the shared-link trial.
#[derive(Debug, Clone, Copy)]
pub struct UtilizationOutcome {
    /// Mean bystander delay while the loop was live (ms).
    pub delay_inside_ms: f64,
    /// Mean bystander delay outside the window (ms).
    pub delay_outside_ms: f64,
    /// Bystander delay jitter (stddev, ms) inside the window.
    pub jitter_inside_ms: f64,
    /// Bystander delay jitter (stddev, ms) outside.
    pub jitter_outside_ms: f64,
    /// Bystander packets lost to queue overflow.
    pub bystander_queue_losses: u64,
}

/// Runs the trial: a `link_mbps` shared link, a loop window of
/// `loop_ms` on one prefix, and a steady bystander flow to another.
pub fn run_trial(link_mbps: u64, loop_ms: u64) -> UtilizationOutcome {
    let looped_prefix: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
    let clean_prefix: Ipv4Prefix = "198.51.100.0/24".parse().unwrap();

    let mut b = TopologyBuilder::new();
    let src = b.node("src", Ipv4Addr::new(10, 95, 0, 1));
    let c1 = b.node("c1", Ipv4Addr::new(10, 95, 0, 2));
    let c2 = b.node("c2", Ipv4Addr::new(10, 95, 0, 3));
    let e = b.node("e", Ipv4Addr::new(10, 95, 0, 4));
    b.attach_prefix(e, looped_prefix);
    b.attach_prefix(e, clean_prefix);
    let bw = link_mbps * 1_000_000;
    let d = SimDuration::from_millis(1);
    let (l_src_c1, _) = b.duplex(src, c1, 1_000_000_000, SimDuration::from_micros(200));
    let (l_c1_c2, l_c2_c1) = b.duplex(c1, c2, bw, d); // the shared link
    let (l_c2_e, _) = b.duplex(c2, e, 1_000_000_000, SimDuration::from_micros(200));
    let topo = b.build();

    let mut engine = Engine::new(
        topo,
        SimConfig {
            generate_time_exceeded: false,
            ..SimConfig::default()
        },
    );
    for p in [looped_prefix, clean_prefix] {
        engine.install_route(src, p, Route::Link(l_src_c1));
        engine.install_route(c1, p, Route::Link(l_c1_c2));
        engine.install_route(c2, p, Route::Link(l_c2_e));
    }
    // The loop: c2 points back for the looped prefix only, healing after
    // `loop_ms`.
    let t_open = SimTime::from_secs(4);
    let t_close = t_open + SimDuration::from_millis(loop_ms);
    engine.schedule_fib_insert(t_open, c2, looped_prefix, Route::Link(l_c2_c1));
    engine.schedule_fib_insert(t_close, c2, looped_prefix, Route::Link(l_c2_e));

    let horizon = SimTime::from_secs(12);
    // Victim traffic into the loop: sizeable packets at a rate that loads
    // the shared link once each is replicated ~30x.
    let mut t = 0u64;
    let mut ident = 0u16;
    while t < horizon.as_nanos() {
        let mut p = Packet::udp(
            Ipv4Addr::new(100, 64, 9, 9),
            Ipv4Addr::new(203, 0, 113, 7),
            UdpHeader::new(7000, 9),
            vec![0u8; 1000],
        );
        p.ip.ident = ident;
        p.ip.ttl = 64;
        p.fill_checksums();
        ident = ident.wrapping_add(1);
        engine.schedule_inject(SimTime(t), src, p);
        t += 2_000_000; // 500 pkt/s
    }
    // Bystander flow: small TCP packets, 1 kHz.
    let mut t = 0u64;
    let mut b_ident = 0u16;
    while t < horizon.as_nanos() {
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 64, 1, 1),
            Ipv4Addr::new(198, 51, 100, 7),
            7100,
            80,
            TcpFlags::ACK,
            vec![0u8; 100],
        );
        p.ip.ident = b_ident;
        p.ip.ttl = 64;
        p.fill_checksums();
        b_ident = b_ident.wrapping_add(1);
        engine.schedule_inject(SimTime(t), src, p);
        t += 1_000_000;
    }
    let report = engine.run();

    let mut inside = Summary::new();
    let mut outside = Summary::new();
    let in_window = |d: &DeliveryRecord| d.inject_time >= t_open && d.inject_time < t_close;
    for del in report
        .deliveries
        .iter()
        .filter(|d| clean_prefix.contains(d.dst) && !d.looped)
    {
        let ms = del.delay().as_millis_f64();
        if in_window(del) {
            inside.add(ms);
        } else {
            outside.add(ms);
        }
    }
    UtilizationOutcome {
        delay_inside_ms: inside.mean().unwrap_or(0.0),
        delay_outside_ms: outside.mean().unwrap_or(0.0),
        jitter_inside_ms: inside.stddev().unwrap_or(0.0),
        jitter_outside_ms: outside.stddev().unwrap_or(0.0),
        bystander_queue_losses: report
            .drop_records
            .iter()
            .filter(|r| clean_prefix.contains(r.dst) && r.cause == simnet::DropCause::QueueFull)
            .count() as u64,
    }
}

/// Renders the S4 report: the same trial at two link speeds.
pub fn report() -> String {
    let mut out = String::from(
        "S4 — COLLATERAL IMPACT ON NON-LOOPED TRAFFIC (§I: loops raise the shared\n\
         link's utilization, delaying and jittering bystander packets)\n",
    );
    for (mbps, loop_ms) in [(25u64, 2_000u64), (100, 2_000)] {
        let o = run_trial(mbps, loop_ms);
        out.push_str(&format!(
            "  {mbps:>4} Mbps shared link, {loop_ms} ms loop: bystander delay \
             {:.2} ms inside vs {:.2} ms outside (jitter {:.2} vs {:.2} ms), \
             {} bystander queue losses\n",
            o.delay_inside_ms,
            o.delay_outside_ms,
            o.jitter_inside_ms,
            o.jitter_outside_ms,
            o.bystander_queue_losses,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_inflates_bystander_delay_on_slow_link() {
        let o = run_trial(25, 2_000);
        assert!(
            o.delay_inside_ms > o.delay_outside_ms * 1.5,
            "inside {} ms must exceed outside {} ms",
            o.delay_inside_ms,
            o.delay_outside_ms
        );
        assert!(o.jitter_inside_ms > o.jitter_outside_ms);
    }

    #[test]
    fn fast_link_shrinks_the_effect() {
        let slow = run_trial(25, 2_000);
        let fast = run_trial(200, 2_000);
        let slow_blowup = slow.delay_inside_ms / slow.delay_outside_ms.max(1e-9);
        let fast_blowup = fast.delay_inside_ms / fast.delay_outside_ms.max(1e-9);
        assert!(
            slow_blowup > fast_blowup,
            "headroom must damp the effect: slow {slow_blowup:.2} vs fast {fast_blowup:.2}"
        );
    }
}
