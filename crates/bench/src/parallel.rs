//! Serial-vs-parallel throughput comparison for the sharded detector,
//! reported as the `BENCH_parallel.json` artifact.
//!
//! Measured on every run:
//!
//! 1. **Determinism** (hard): every parallel run's full output — streams,
//!    loops, and stage counters — must equal the serial run's. A
//!    divergence is a correctness bug, and the CI bench-smoke step fails
//!    on it regardless of timing. Both runs go through the unified
//!    `loopscope::pipeline` (slice fast path), so what is compared is
//!    exactly what every consumer sees.
//! 2. **Throughput**: records/second for serial and per thread count, the
//!    speedup over serial, and the pcap-ingest rate of the zero-alloc
//!    reader. `bench_parallel --gate <baseline.json>` turns these into CI
//!    floors (serial regression, parallel scaling) — the scaling floor is
//!    enforced only on machines with enough cores for wall-clock speedup
//!    to be physically possible.
//! 3. **Stage breakdown**: per-stage wall time extracted from the
//!    telemetry timers, for both the serial pipeline and each sharded
//!    run. Every row is scoped to its own instrumented run via snapshot
//!    deltas (no cross-row accumulation, no registry reset), and the
//!    1-thread row reports the serial stage names — one shard *is* the
//!    serial path. Worker-side shard stages overlap in time, so their
//!    totals are aggregate worker-seconds, not wall time.

use loopscope::pipeline::{run_pipeline, Engine, SerialEngine, ShardedEngine, SliceSource};
use loopscope::{DetectorConfig, PipelineResult, TraceRecord};
use routing_loops::backbone::{paper_backbones, run_backbone};
use std::time::Instant;

/// Serial pipeline stage timers, in pipeline order.
pub const SERIAL_STAGES: [&str; 3] = ["replica.detect", "validate", "merge"];

/// Sharded pipeline stage timers, in pipeline order. The dispatch and
/// result-merge stages run on the producer thread (wall time); the shard
/// stages aggregate across workers (worker-seconds).
pub const PARALLEL_STAGES: [&str; 5] = [
    "shard.dispatch",
    "shard.detect",
    "shard.validate",
    "shard.merge",
    "shard.merge_results",
];

/// One thread count's measurement.
#[derive(Debug, Clone)]
pub struct ParallelSample {
    /// Worker shard count.
    pub threads: usize,
    /// Best-of-repeats wall time in nanoseconds.
    pub best_ns: u64,
    /// Records per second at `best_ns`.
    pub records_per_s: f64,
    /// `serial_best_ns / best_ns`.
    pub speedup: f64,
    /// Whether the run's output equalled the serial output exactly.
    pub identical: bool,
    /// `(timer name, total ns)` per stage, from one instrumented run,
    /// scoped to that run alone (snapshot deltas — earlier thread counts
    /// contribute nothing). The 1-thread row reports the serial stage
    /// names, because one shard *is* the serial path.
    pub stages: Vec<(&'static str, u64)>,
}

/// The full comparison: one serial baseline, one sample per thread count,
/// plus the ingest rate of the pcap read path.
#[derive(Debug, Clone)]
pub struct ParallelBench {
    /// Trace size in records.
    pub records: u64,
    /// Validated streams found (same for every conforming run).
    pub streams: u64,
    /// Routing loops found.
    pub loops: u64,
    /// CPU cores available to this process — the context every speedup
    /// number must be read in.
    pub cores: usize,
    /// Serial best-of-repeats wall time in nanoseconds.
    pub serial_best_ns: u64,
    /// Serial records per second.
    pub serial_records_per_s: f64,
    /// Serial per-stage breakdown (`(timer name, total ns)`).
    pub serial_stages: Vec<(&'static str, u64)>,
    /// Records scanned by the pcap-ingest measurement.
    pub ingest_records: u64,
    /// Wall time of the pcap-ingest measurement in nanoseconds.
    pub ingest_ns: u64,
    /// Ingest throughput (pcap bytes → `TraceRecord`s) in records/second.
    pub ingest_records_per_s: f64,
    /// Per-thread-count samples.
    pub samples: Vec<ParallelSample>,
}

impl ParallelBench {
    /// True when every parallel run matched the serial output.
    pub fn all_identical(&self) -> bool {
        self.samples.iter().all(|s| s.identical)
    }

    /// Renders the artifact document (hand-serialised; the workspace has
    /// no serde).
    pub fn to_json(&self) -> String {
        let stages_json = |stages: &[(&'static str, u64)]| {
            let fields: Vec<String> = stages
                .iter()
                .map(|(name, ns)| format!("\"{name}\": {ns}"))
                .collect();
            format!("{{{}}}", fields.join(", "))
        };
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"parallel\",\n");
        out.push_str(&format!("  \"records\": {},\n", self.records));
        out.push_str(&format!("  \"streams\": {},\n", self.streams));
        out.push_str(&format!("  \"loops\": {},\n", self.loops));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!(
            "  \"ingest\": {{\"records\": {}, \"ns\": {}, \"records_per_s\": {:.1}}},\n",
            self.ingest_records, self.ingest_ns, self.ingest_records_per_s
        ));
        out.push_str(&format!(
            "  \"serial\": {{\"ns\": {}, \"records_per_s\": {:.1}}},\n",
            self.serial_best_ns, self.serial_records_per_s
        ));
        out.push_str(&format!(
            "  \"serial_stages\": {},\n",
            stages_json(&self.serial_stages)
        ));
        out.push_str(&format!("  \"all_identical\": {},\n", self.all_identical()));
        out.push_str("  \"parallel\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {}, \"ns\": {}, \"records_per_s\": {:.1}, \
                 \"speedup\": {:.3}, \"identical\": {}, \"stages\": {}}}{}\n",
                s.threads,
                s.best_ns,
                s.records_per_s,
                s.speedup,
                s.identical,
                stages_json(&s.stages),
                if i + 1 < self.samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn results_equal(a: &PipelineResult, b: &PipelineResult) -> bool {
    a.stats == b.stats && a.streams == b.streams && a.loops == b.loops
}

/// One pipeline run over in-memory records with the given engine.
fn detect(records: &[TraceRecord], engine: &mut dyn Engine) -> PipelineResult {
    let mut source = SliceSource::new(records);
    run_pipeline(&mut source, engine, &mut []).expect("in-memory pipeline cannot fail")
}

fn time_best<F: FnMut() -> PipelineResult>(repeats: usize, mut f: F) -> (u64, PipelineResult) {
    let mut best_ns = u64::MAX;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let r = f();
        best_ns = best_ns.min(t.elapsed().as_nanos() as u64);
        out = Some(r);
    }
    (best_ns, out.expect("at least one repeat"))
}

/// Runs `run` once and returns the listed stage timers' totals for *that
/// run alone*, as before/after snapshot deltas. Delta scoping (rather
/// than a registry reset) keeps each row independent of earlier runs in
/// the process *and* leaves the registry intact for anything else
/// observing it — a live `--metrics-interval` sampler keeps its
/// cumulative view. The instrumented run is separate from the timed
/// repeats so snapshotting never perturbs the wall-clock numbers.
fn measure_stages<F: FnMut()>(keys: &[&'static str], mut run: F) -> Vec<(&'static str, u64)> {
    let total = |snap: &telemetry::Snapshot, k: &str| snap.timers.get(k).map_or(0, |t| t.total_ns);
    let before = telemetry::global().snapshot();
    run();
    let after = telemetry::global().snapshot();
    keys.iter()
        .map(|&k| (k, total(&after, k).saturating_sub(total(&before, k))))
        .collect()
}

/// Builds the bench trace: the busiest paper backbone at `scale`.
pub fn bench_trace(scale: f64) -> Vec<TraceRecord> {
    let spec = paper_backbones(scale).remove(1);
    run_backbone(&spec).records
}

/// Measures the zero-alloc pcap ingest rate: synthesises an in-memory
/// 40-byte-snaplen trace of `n_records` packets, then times
/// `records_from_pcap` over it, best of `repeats` passes (a single pass
/// soaks up scheduler noise just like the detect timings would).
/// Returns `(records, ns, records_per_s)`.
pub fn bench_ingest(n_records: usize, repeats: usize) -> (u64, u64, f64) {
    use net_types::{Packet, TcpFlags};
    use pcaplib::{FileHeader, PcapWriter};
    use std::net::Ipv4Addr;

    // A small cycling set of distinct pre-emitted packets keeps file
    // construction (untimed) cheap without handing the reader one
    // endlessly repeated block.
    let variants: Vec<Vec<u8>> = (0..256u16)
        .map(|i| {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 64, (i >> 8) as u8, i as u8),
                Ipv4Addr::new(203, 0, 113, (i % 250) as u8 + 1),
                1024 + i,
                80,
                TcpFlags::ACK,
                &b"0123456789abcdef"[..],
            );
            p.ip.ident = i;
            p.fill_checksums();
            p.emit()
        })
        .collect();
    let sink = Vec::with_capacity(n_records * 56 + 24);
    let mut w = PcapWriter::new(sink, FileHeader::raw_ip(40)).expect("in-memory writer");
    for i in 0..n_records {
        w.write_bytes(i as u64 * 1_000, &variants[i % variants.len()])
            .expect("in-memory write");
    }
    let file = w.finish().expect("in-memory finish");

    let mut ns = u64::MAX;
    let mut records = Vec::new();
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let (recs, skipped) =
            routing_loops::convert::records_from_pcap(std::io::Cursor::new(&file[..]))
                .expect("synthetic trace must parse");
        ns = ns.min(t.elapsed().as_nanos() as u64);
        assert_eq!(skipped, 0, "synthetic packets must all parse");
        records = recs;
    }
    let rps = if ns == 0 {
        0.0
    } else {
        records.len() as f64 / (ns as f64 / 1e9)
    };
    (records.len() as u64, ns, rps)
}

/// Runs the comparison on `records` for each of `thread_counts`, timing
/// best-of-`repeats` and cross-checking every output against serial.
pub fn run_on(records: &[TraceRecord], thread_counts: &[usize], repeats: usize) -> ParallelBench {
    let cfg = DetectorConfig::default();
    let (serial_best_ns, serial) =
        time_best(repeats, || detect(records, &mut SerialEngine::new(cfg)));
    let serial_stages = measure_stages(&SERIAL_STAGES, || {
        detect(records, &mut SerialEngine::new(cfg));
    });
    let per_s = |ns: u64| {
        if ns == 0 {
            0.0
        } else {
            records.len() as f64 / (ns as f64 / 1e9)
        }
    };
    let samples = thread_counts
        .iter()
        .map(|&threads| {
            let (best_ns, result) = time_best(repeats, || {
                detect(records, &mut ShardedEngine::new(cfg, threads))
            });
            // `ShardedDetector` at one thread IS the serial path — it
            // never spawns workers or touches the `shard.*` timers, so
            // the 1-thread row reports the serial stage names (an
            // all-zero `shard.*` row here was the historical bug).
            let stage_keys: &[&'static str] = if threads == 1 {
                &SERIAL_STAGES
            } else {
                &PARALLEL_STAGES
            };
            let stages = measure_stages(stage_keys, || {
                detect(records, &mut ShardedEngine::new(cfg, threads));
            });
            ParallelSample {
                threads,
                best_ns,
                records_per_s: per_s(best_ns),
                speedup: serial_best_ns as f64 / best_ns.max(1) as f64,
                identical: results_equal(&serial, &result),
                stages,
            }
        })
        .collect();
    let (ingest_records, ingest_ns, ingest_records_per_s) =
        bench_ingest(records.len().max(1), repeats);
    ParallelBench {
        records: records.len() as u64,
        streams: serial.streams.len() as u64,
        loops: serial.loops.len() as u64,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_best_ns,
        serial_records_per_s: per_s(serial_best_ns),
        serial_stages,
        ingest_records,
        ingest_ns,
        ingest_records_per_s,
        samples,
    }
}

/// [`run_on`] over the standard bench trace.
pub fn run(scale: f64, thread_counts: &[usize], repeats: usize) -> ParallelBench {
    let records = bench_trace(scale);
    run_on(&records, thread_counts, repeats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that run detector workloads share the process-global
    /// telemetry registry; serialise them so stage deltas stay
    /// attributable to their own run.
    static WORKLOAD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn measure_stages_scopes_to_its_own_run() {
        // A synthetic stage timer with pre-existing state: the
        // measurement must report only what its own run recorded, not
        // the cumulative total and not earlier measurements.
        let timer = telemetry::global().timer("benchtest.scoped_stage");
        let keys: [&'static str; 1] = ["benchtest.scoped_stage"];
        timer.record(5_000);
        let first = measure_stages(&keys, || timer.record(1_000));
        assert_eq!(first, vec![("benchtest.scoped_stage", 1_000)]);
        let second = measure_stages(&keys, || timer.record(250));
        assert_eq!(second, vec![("benchtest.scoped_stage", 250)]);
        // An unrecorded key reports zero, not garbage.
        let empty = measure_stages(&["benchtest.never_recorded"], || {});
        assert_eq!(empty, vec![("benchtest.never_recorded", 0)]);
    }

    #[test]
    fn one_thread_row_reports_nonzero_serial_stages() {
        let _lock = WORKLOAD.lock().unwrap_or_else(|p| p.into_inner());
        let records = bench_trace(0.04);
        let bench = run_on(&records, &[1, 2], 1);
        let row = &bench.samples[0];
        assert_eq!(row.threads, 1);
        let names: Vec<&str> = row.stages.iter().map(|(k, _)| *k).collect();
        assert_eq!(names, SERIAL_STAGES, "1-thread row uses serial stage names");
        let total: u64 = row.stages.iter().map(|(_, ns)| ns).sum();
        assert!(
            total > 0,
            "threads=1 stage row must not be all-zero: {row:?}"
        );
        // The sharded rows use the shard stage names, also nonzero.
        let row2 = &bench.samples[1];
        let names2: Vec<&str> = row2.stages.iter().map(|(k, _)| *k).collect();
        assert_eq!(names2, PARALLEL_STAGES);
        let total2: u64 = row2.stages.iter().map(|(_, ns)| ns).sum();
        assert!(total2 > 0, "threads=2 stage row must not be all-zero");
    }

    #[test]
    fn tiny_bench_is_deterministic_and_serialisable() {
        let _lock = WORKLOAD.lock().unwrap_or_else(|p| p.into_inner());
        let bench = run(0.04, &[2, 4], 1);
        assert!(bench.records > 0);
        assert!(bench.all_identical(), "parallel diverged from serial");
        assert!(bench.cores >= 1);
        assert!(bench.ingest_records == bench.records);
        assert!(bench.ingest_records_per_s > 0.0);
        let serial_detect = bench
            .serial_stages
            .iter()
            .find(|(k, _)| *k == "replica.detect")
            .expect("serial breakdown present");
        assert!(serial_detect.1 > 0, "detect stage must record time");
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"parallel\""));
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"cores\": "));
        assert!(json.contains("\"ingest\": {\"records\": "));
        assert!(json.contains("\"serial_stages\": {\"replica.detect\": "));
        assert!(json.contains("\"shard.dispatch\": "));
    }
}
