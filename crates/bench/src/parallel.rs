//! Serial-vs-parallel throughput comparison for the sharded detector,
//! reported as the `BENCH_parallel.json` artifact.
//!
//! Two guarantees are measured on every run:
//!
//! 1. **Determinism** (hard): every parallel run's full output — streams,
//!    loops, per-record flags, and stage counters — must equal the serial
//!    run's. A divergence is a correctness bug, and the CI bench-smoke
//!    step fails on it regardless of timing.
//! 2. **Throughput** (informational): records/second per thread count and
//!    the speedup over serial. Timing is reported, never gated — CI
//!    machines are too noisy for a timing assertion to mean anything.

use loopscope::{DetectionResult, Detector, DetectorConfig, ShardedDetector, TraceRecord};
use routing_loops::backbone::{paper_backbones, run_backbone};
use std::time::Instant;

/// One thread count's measurement.
#[derive(Debug, Clone)]
pub struct ParallelSample {
    /// Worker shard count.
    pub threads: usize,
    /// Best-of-repeats wall time in nanoseconds.
    pub best_ns: u64,
    /// Records per second at `best_ns`.
    pub records_per_s: f64,
    /// `serial_best_ns / best_ns`.
    pub speedup: f64,
    /// Whether the run's output equalled the serial output exactly.
    pub identical: bool,
}

/// The full comparison: one serial baseline, one sample per thread count.
#[derive(Debug, Clone)]
pub struct ParallelBench {
    /// Trace size in records.
    pub records: u64,
    /// Validated streams found (same for every conforming run).
    pub streams: u64,
    /// Routing loops found.
    pub loops: u64,
    /// Serial best-of-repeats wall time in nanoseconds.
    pub serial_best_ns: u64,
    /// Serial records per second.
    pub serial_records_per_s: f64,
    /// Per-thread-count samples.
    pub samples: Vec<ParallelSample>,
}

impl ParallelBench {
    /// True when every parallel run matched the serial output.
    pub fn all_identical(&self) -> bool {
        self.samples.iter().all(|s| s.identical)
    }

    /// Renders the artifact document (hand-serialised; the workspace has
    /// no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"parallel\",\n");
        out.push_str(&format!("  \"records\": {},\n", self.records));
        out.push_str(&format!("  \"streams\": {},\n", self.streams));
        out.push_str(&format!("  \"loops\": {},\n", self.loops));
        out.push_str(&format!(
            "  \"serial\": {{\"ns\": {}, \"records_per_s\": {:.1}}},\n",
            self.serial_best_ns, self.serial_records_per_s
        ));
        out.push_str(&format!("  \"all_identical\": {},\n", self.all_identical()));
        out.push_str("  \"parallel\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {}, \"ns\": {}, \"records_per_s\": {:.1}, \
                 \"speedup\": {:.3}, \"identical\": {}}}{}\n",
                s.threads,
                s.best_ns,
                s.records_per_s,
                s.speedup,
                s.identical,
                if i + 1 < self.samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn results_equal(a: &DetectionResult, b: &DetectionResult) -> bool {
    a.stats == b.stats
        && a.streams == b.streams
        && a.loops == b.loops
        && a.looped_flags == b.looped_flags
}

fn time_best<F: FnMut() -> DetectionResult>(repeats: usize, mut f: F) -> (u64, DetectionResult) {
    let mut best_ns = u64::MAX;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let r = f();
        best_ns = best_ns.min(t.elapsed().as_nanos() as u64);
        out = Some(r);
    }
    (best_ns, out.expect("at least one repeat"))
}

/// Builds the bench trace: the busiest paper backbone at `scale`.
pub fn bench_trace(scale: f64) -> Vec<TraceRecord> {
    let spec = paper_backbones(scale).remove(1);
    run_backbone(&spec).records
}

/// Runs the comparison on `records` for each of `thread_counts`, timing
/// best-of-`repeats` and cross-checking every output against serial.
pub fn run_on(records: &[TraceRecord], thread_counts: &[usize], repeats: usize) -> ParallelBench {
    let cfg = DetectorConfig::default();
    let (serial_best_ns, serial) = time_best(repeats, || Detector::new(cfg).run(records));
    let per_s = |ns: u64| {
        if ns == 0 {
            0.0
        } else {
            records.len() as f64 / (ns as f64 / 1e9)
        }
    };
    let samples = thread_counts
        .iter()
        .map(|&threads| {
            let (best_ns, result) =
                time_best(repeats, || ShardedDetector::new(cfg, threads).run(records));
            ParallelSample {
                threads,
                best_ns,
                records_per_s: per_s(best_ns),
                speedup: serial_best_ns as f64 / best_ns.max(1) as f64,
                identical: results_equal(&serial, &result),
            }
        })
        .collect();
    ParallelBench {
        records: records.len() as u64,
        streams: serial.streams.len() as u64,
        loops: serial.loops.len() as u64,
        serial_best_ns,
        serial_records_per_s: per_s(serial_best_ns),
        samples,
    }
}

/// [`run_on`] over the standard bench trace.
pub fn run(scale: f64, thread_counts: &[usize], repeats: usize) -> ParallelBench {
    let records = bench_trace(scale);
    run_on(&records, thread_counts, repeats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_bench_is_deterministic_and_serialisable() {
        let bench = run(0.04, &[2, 4], 1);
        assert!(bench.records > 0);
        assert!(bench.all_identical(), "parallel diverged from serial");
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"parallel\""));
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"threads\": 4"));
    }
}
