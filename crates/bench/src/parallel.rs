//! Serial-vs-parallel throughput comparison for the block-parallel
//! detector, reported as the `BENCH_parallel.json` artifact.
//!
//! Measured on every run:
//!
//! 1. **Determinism** (hard): every parallel run's full output — streams,
//!    loops, and stage counters — must equal the serial run's. A
//!    divergence is a correctness bug, and the CI bench step fails on it
//!    regardless of timing. Both runs go through the unified
//!    `loopscope::pipeline` (slice fast path), so what is compared is
//!    exactly what every consumer sees.
//! 2. **Throughput**: records/second for serial and per thread count, the
//!    speedup over serial, and the pcap-ingest rate of the zero-alloc
//!    reader. `bench_parallel --gate <baseline.json>` turns these into CI
//!    floors (serial regression, per-core-count scaling) — the scaling
//!    floors are enforced only on machines with enough cores for
//!    wall-clock speedup to be physically possible.
//! 3. **Stage breakdown**: per-stage wall time extracted from the
//!    telemetry timers, for the serial pipeline and each parallel run.
//!    The block engine reports ONE uniform stage schema
//!    ([`BLOCK_STAGES`]) at every thread count — one worker runs the
//!    same machinery as eight, so there is no serial-name special case —
//!    plus a per-worker `scan/validate/merge/busy` row for each worker.
//!    Every row is scoped to its own instrumented run via snapshot
//!    deltas (no cross-row accumulation, no registry reset). Worker-side
//!    stages overlap in time, so their totals are aggregate
//!    worker-seconds, not wall time.
//!
//! The retired ring dispatcher stays measurable as an ablation
//! ([`BenchEngine::Ring`], `bench_parallel --engine ring`); its rows keep
//! the historical `shard.*` schema.
//!
//! The artifact records the machine context every number must be read in:
//! `cores`, the `rustc` version, and a `runner` label
//! (`$BENCH_RUNNER_LABEL`, "local" when unset) so a committed baseline
//! says where it came from.

use loopscope::block::block_metric;
use loopscope::pipeline::{
    run_pipeline, BlockEngine, Engine, SerialEngine, ShardedEngine, SliceSource,
};
use loopscope::{DetectorConfig, PipelineResult, TraceRecord};
use routing_loops::backbone::{paper_backbones, run_backbone};
use std::time::Instant;

/// Serial pipeline stage timers, in pipeline order.
pub const SERIAL_STAGES: [&str; 3] = ["replica.detect", "validate", "merge"];

/// Block-parallel stage timers, in pipeline order — the SAME schema at
/// every thread count (one worker runs the full block machinery). The
/// scan/validate/merge stages aggregate across workers (worker-seconds);
/// reconcile, index, and stitch run on the calling thread (wall time).
pub const BLOCK_STAGES: [&str; 6] = [
    "block.scan",
    "block.reconcile",
    "block.index",
    "block.validate",
    "block.merge",
    "block.stitch",
];

/// Per-worker timer fields reported for each block worker. `index` is the
/// worker's share of the step-2 prefix index, built inside the scan
/// worker so it overlaps the scan instead of serialising after it.
pub const WORKER_FIELDS: [&str; 5] = ["scan", "index", "validate", "merge", "busy"];

/// Ring-dispatcher stage timers (ablation), in pipeline order.
pub const PARALLEL_STAGES: [&str; 5] = [
    "shard.dispatch",
    "shard.detect",
    "shard.validate",
    "shard.merge",
    "shard.merge_results",
];

/// Which parallel engine the bench drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchEngine {
    /// Share-nothing block partitioning with boundary reconciliation
    /// (the default engine).
    Block,
    /// The retired central-dispatcher ring, kept as an ablation.
    Ring,
}

impl BenchEngine {
    /// Artifact label.
    pub fn name(self) -> &'static str {
        match self {
            BenchEngine::Block => "block",
            BenchEngine::Ring => "ring",
        }
    }
}

/// One thread count's measurement.
#[derive(Debug, Clone)]
pub struct ParallelSample {
    /// Worker count.
    pub threads: usize,
    /// Best-of-repeats wall time in nanoseconds.
    pub best_ns: u64,
    /// Records per second at `best_ns`.
    pub records_per_s: f64,
    /// `serial_best_ns / best_ns`.
    pub speedup: f64,
    /// Whether the run's output equalled the serial output exactly.
    pub identical: bool,
    /// `(timer name, total ns)` per stage, from one instrumented run,
    /// scoped to that run alone (snapshot deltas — earlier thread counts
    /// contribute nothing). Block runs use [`BLOCK_STAGES`] at every
    /// thread count; ring runs keep the historical serial-names-at-1
    /// special case (one ring shard IS the serial path).
    pub stages: Vec<(&'static str, u64)>,
    /// Per-worker `(field, total ns)` rows ([`WORKER_FIELDS`] order),
    /// one row per worker, same instrumented run. Empty for ring runs.
    pub workers: Vec<Vec<(&'static str, u64)>>,
}

impl ParallelSample {
    /// True when some worker row exists and records no time at all —
    /// that worker's instrumentation went dark (or it was never run).
    pub fn any_worker_row_all_zero(&self) -> bool {
        self.workers
            .iter()
            .any(|row| !row.is_empty() && row.iter().all(|&(_, ns)| ns == 0))
    }
}

/// The full comparison: one serial baseline, one sample per thread count,
/// plus the ingest rate of the pcap read path.
#[derive(Debug, Clone)]
pub struct ParallelBench {
    /// Engine label ("block" or "ring").
    pub engine: &'static str,
    /// Trace size in records.
    pub records: u64,
    /// Validated streams found (same for every conforming run).
    pub streams: u64,
    /// Routing loops found.
    pub loops: u64,
    /// CPU cores available to this process — the context every speedup
    /// number must be read in.
    pub cores: usize,
    /// `rustc --version` of the toolchain that built the bench.
    pub rustc: String,
    /// Runner label (`$BENCH_RUNNER_LABEL`, "local" when unset).
    pub runner: String,
    /// Serial best-of-repeats wall time in nanoseconds.
    pub serial_best_ns: u64,
    /// Serial records per second.
    pub serial_records_per_s: f64,
    /// Serial per-stage breakdown (`(timer name, total ns)`).
    pub serial_stages: Vec<(&'static str, u64)>,
    /// Records scanned by the ingest measurements (same trace both ways).
    pub ingest_records: u64,
    /// Wall time of the pcap-ingest measurement in nanoseconds.
    pub ingest_ns: u64,
    /// Ingest throughput (pcap bytes → `TraceRecord`s) in records/second.
    pub ingest_records_per_s: f64,
    /// Wall time of the columnar (`.ltc`) ingest measurement in
    /// nanoseconds, over the identical record set.
    pub columnar_ingest_ns: u64,
    /// Columnar ingest throughput in records/second.
    pub columnar_ingest_records_per_s: f64,
    /// `columnar_ingest_records_per_s / ingest_records_per_s` — the
    /// within-run, machine-independent ratio the CI gate floors.
    pub columnar_vs_pcap: f64,
    /// Records in the mmap-vs-buffered comparison corpus — the bench
    /// trace cycled up to an out-of-LLC floor, so this can exceed
    /// `ingest_records` on small `--scale` runs.
    pub mmap_ingest_records: u64,
    /// Wall time of the buffered real-file `.ltc` decode (the `--no-mmap`
    /// ablation arm) in nanoseconds, warm cache.
    pub buffered_ingest_ns: u64,
    /// Buffered real-file ingest throughput in records/second.
    pub buffered_ingest_records_per_s: f64,
    /// Wall time of the mapped (zero-copy) `.ltc` decode in nanoseconds,
    /// same file and cache state.
    pub mmap_ingest_ns: u64,
    /// Mapped ingest throughput in records/second.
    pub mmap_ingest_records_per_s: f64,
    /// `mmap_ingest_records_per_s / buffered_ingest_records_per_s` — the
    /// second within-run ratio the CI gate floors.
    pub mmap_vs_buffered: f64,
    /// Per-thread-count samples.
    pub samples: Vec<ParallelSample>,
}

/// Minimal JSON string escaping for the hand-rolled artifact writer.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl ParallelBench {
    /// True when every parallel run matched the serial output.
    pub fn all_identical(&self) -> bool {
        self.samples.iter().all(|s| s.identical)
    }

    /// Renders the artifact document (hand-serialised; the workspace has
    /// no serde).
    pub fn to_json(&self) -> String {
        let stages_json = |stages: &[(&'static str, u64)]| {
            let fields: Vec<String> = stages
                .iter()
                .map(|(name, ns)| format!("\"{name}\": {ns}"))
                .collect();
            format!("{{{}}}", fields.join(", "))
        };
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"parallel\",\n");
        out.push_str(&format!("  \"engine\": \"{}\",\n", self.engine));
        out.push_str(&format!("  \"records\": {},\n", self.records));
        out.push_str(&format!("  \"streams\": {},\n", self.streams));
        out.push_str(&format!("  \"loops\": {},\n", self.loops));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"rustc\": \"{}\",\n", json_escape(&self.rustc)));
        out.push_str(&format!(
            "  \"runner\": \"{}\",\n",
            json_escape(&self.runner)
        ));
        out.push_str(&format!(
            "  \"ingest\": {{\"records\": {}, \"ns\": {}, \"records_per_s\": {:.1}}},\n",
            self.ingest_records, self.ingest_ns, self.ingest_records_per_s
        ));
        out.push_str(&format!(
            "  \"ingest_columnar\": {{\"records\": {}, \"ns\": {}, \"records_per_s\": {:.1}, \"vs_pcap\": {:.3}}},\n",
            self.ingest_records,
            self.columnar_ingest_ns,
            self.columnar_ingest_records_per_s,
            self.columnar_vs_pcap
        ));
        out.push_str(&format!(
            "  \"ingest_mmap\": {{\"records\": {}, \"ns\": {}, \"records_per_s\": {:.1}, \"buffered_ns\": {}, \"buffered_records_per_s\": {:.1}, \"vs_buffered\": {:.3}}},\n",
            self.mmap_ingest_records,
            self.mmap_ingest_ns,
            self.mmap_ingest_records_per_s,
            self.buffered_ingest_ns,
            self.buffered_ingest_records_per_s,
            self.mmap_vs_buffered
        ));
        out.push_str(&format!(
            "  \"serial\": {{\"ns\": {}, \"records_per_s\": {:.1}}},\n",
            self.serial_best_ns, self.serial_records_per_s
        ));
        out.push_str(&format!(
            "  \"serial_stages\": {},\n",
            stages_json(&self.serial_stages)
        ));
        out.push_str(&format!("  \"all_identical\": {},\n", self.all_identical()));
        out.push_str("  \"parallel\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let workers: Vec<String> = s.workers.iter().map(|row| stages_json(row)).collect();
            out.push_str(&format!(
                "    {{\"threads\": {}, \"ns\": {}, \"records_per_s\": {:.1}, \
                 \"speedup\": {:.3}, \"identical\": {}, \"stages\": {}, \
                 \"workers\": [{}]}}{}\n",
                s.threads,
                s.best_ns,
                s.records_per_s,
                s.speedup,
                s.identical,
                stages_json(&s.stages),
                workers.join(", "),
                if i + 1 < self.samples.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The toolchain version recorded in the artifact: `$RUSTC_VERSION` when
/// set (CI exports it once), else `rustc --version`, else "unknown".
pub fn rustc_version() -> String {
    if let Ok(v) = std::env::var("RUSTC_VERSION") {
        let v = v.trim();
        if !v.is_empty() {
            return v.to_string();
        }
    }
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The runner label recorded in the artifact: `$BENCH_RUNNER_LABEL` when
/// set (CI exports the runner class), "local" otherwise.
pub fn runner_label() -> String {
    std::env::var("BENCH_RUNNER_LABEL")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "local".to_string())
}

fn results_equal(a: &PipelineResult, b: &PipelineResult) -> bool {
    a.stats == b.stats && a.streams == b.streams && a.loops == b.loops
}

/// One pipeline run over in-memory records with the given engine.
fn detect(records: &[TraceRecord], engine: &mut dyn Engine) -> PipelineResult {
    let mut source = SliceSource::new(records);
    run_pipeline(&mut source, engine, &mut []).expect("in-memory pipeline cannot fail")
}

fn time_best<F: FnMut() -> PipelineResult>(repeats: usize, mut f: F) -> (u64, PipelineResult) {
    let mut best_ns = u64::MAX;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let r = f();
        best_ns = best_ns.min(t.elapsed().as_nanos() as u64);
        out = Some(r);
    }
    (best_ns, out.expect("at least one repeat"))
}

/// Runs `run` once and returns the listed stage timers' totals for *that
/// run alone*, as before/after snapshot deltas. Delta scoping (rather
/// than a registry reset) keeps each row independent of earlier runs in
/// the process *and* leaves the registry intact for anything else
/// observing it — a live `--metrics-interval` sampler keeps its
/// cumulative view. The instrumented run is separate from the timed
/// repeats so snapshotting never perturbs the wall-clock numbers.
fn measure_stages<F: FnMut()>(keys: &[&'static str], mut run: F) -> Vec<(&'static str, u64)> {
    let total = |snap: &telemetry::Snapshot, k: &str| snap.timers.get(k).map_or(0, |t| t.total_ns);
    let before = telemetry::global().snapshot();
    run();
    let after = telemetry::global().snapshot();
    keys.iter()
        .map(|&k| (k, total(&after, k).saturating_sub(total(&before, k))))
        .collect()
}

/// Builds the bench trace: the busiest paper backbone at `scale`.
pub fn bench_trace(scale: f64) -> Vec<TraceRecord> {
    let spec = paper_backbones(scale).remove(1);
    run_backbone(&spec).records
}

/// The pcap-vs-columnar ingest comparison over one synthetic trace.
#[derive(Debug, Clone, Copy)]
pub struct IngestBench {
    /// Records decoded (identical for both paths, asserted).
    pub records: u64,
    /// Best-of-repeats pcap decode wall time in nanoseconds.
    pub pcap_ns: u64,
    /// Pcap decode throughput in records/second.
    pub pcap_records_per_s: f64,
    /// Best-of-repeats columnar (`.ltc`) decode wall time in nanoseconds.
    pub columnar_ns: u64,
    /// Columnar decode throughput in records/second.
    pub columnar_records_per_s: f64,
    /// `columnar_records_per_s / pcap_records_per_s`.
    pub columnar_vs_pcap: f64,
    /// Records in the mmap-vs-buffered comparison corpus (the record set
    /// cycled up to an out-of-LLC floor; ≥ `records`).
    pub mmap_corpus_records: u64,
    /// Best-of-repeats buffered whole-file `.ltc` decode wall time in
    /// nanoseconds — a real temp file on warm cache, the `--no-mmap`
    /// ablation arm.
    pub buffered_ns: u64,
    /// Buffered whole-file decode throughput in records/second.
    pub buffered_records_per_s: f64,
    /// Best-of-repeats mapped (zero-copy) whole-file `.ltc` decode wall
    /// time in nanoseconds, same file, same cache state.
    pub mmap_ns: u64,
    /// Mapped decode throughput in records/second.
    pub mmap_records_per_s: f64,
    /// `mmap_records_per_s / buffered_records_per_s` — the within-run,
    /// machine-independent ratio the CI gate floors.
    pub mmap_vs_buffered: f64,
}

/// Measures both ingest paths like-for-like: synthesises an in-memory
/// 40-byte-snaplen trace of `n_records` packets, times the zero-alloc
/// `records_from_pcap` over it, converts the decoded records to an
/// in-memory `.ltc` image, and times the serial columnar decode of the
/// same data — best of `repeats` passes each, single-threaded both ways,
/// with the decoded record vectors asserted equal. The resulting
/// `columnar_vs_pcap` ratio is within-run and machine-independent, which
/// is what lets the CI gate floor it everywhere.
pub fn bench_ingest(n_records: usize, repeats: usize) -> IngestBench {
    /// Floor on the mmap-vs-buffered comparison corpus: ~45 MB of `.ltc`,
    /// comfortably past any last-level cache on the machines this runs on.
    const MMAP_BENCH_MIN_RECORDS: usize = 800_000;
    use net_types::{Packet, TcpFlags};
    use pcaplib::{FileHeader, PcapWriter};
    use std::net::Ipv4Addr;

    // A small cycling set of distinct pre-emitted packets keeps file
    // construction (untimed) cheap without handing the reader one
    // endlessly repeated block.
    let variants: Vec<Vec<u8>> = (0..256u16)
        .map(|i| {
            let mut p = Packet::tcp_flags(
                Ipv4Addr::new(100, 64, (i >> 8) as u8, i as u8),
                Ipv4Addr::new(203, 0, 113, (i % 250) as u8 + 1),
                1024 + i,
                80,
                TcpFlags::ACK,
                &b"0123456789abcdef"[..],
            );
            p.ip.ident = i;
            p.fill_checksums();
            p.emit()
        })
        .collect();
    let sink = Vec::with_capacity(n_records * 56 + 24);
    let mut w = PcapWriter::new(sink, FileHeader::raw_ip(40)).expect("in-memory writer");
    for i in 0..n_records {
        w.write_bytes(i as u64 * 1_000, &variants[i % variants.len()])
            .expect("in-memory write");
    }
    let file = w.finish().expect("in-memory finish");

    // All ingest arms time at least four passes: the engine runs that
    // precede this in the full bench churn hundreds of MB of allocations,
    // and for roughly half a second afterwards this box serves big fresh
    // allocations (and mapped page faults) several times slow. Two
    // repeats can land entirely inside that window; best-of-4 cannot.
    let repeats = repeats.max(4);
    let mut pcap_ns = u64::MAX;
    let mut records = Vec::new();
    for _ in 0..repeats {
        let t = Instant::now();
        let (recs, skipped) =
            routing_loops::convert::records_from_pcap(std::io::Cursor::new(&file[..]))
                .expect("synthetic trace must parse");
        pcap_ns = pcap_ns.min(t.elapsed().as_nanos() as u64);
        assert_eq!(skipped, 0, "synthetic packets must all parse");
        records = recs;
    }

    // The conversion (untimed) is what `pcap2ltc` does; the timed part is
    // the repeated-scan payoff.
    let ltc = corpus::ltc_to_vec(&records, 0);
    let mut columnar_ns = u64::MAX;
    let mut columnar_records = Vec::new();
    for _ in 0..repeats {
        let t = Instant::now();
        let mut reader = corpus::LtcReader::new(std::io::Cursor::new(&ltc[..]), "bench.ltc")
            .expect("in-memory corpus must validate");
        let mut out = Vec::with_capacity(records.len());
        let mut batch = Vec::new();
        while reader
            .next_block_into(&mut batch)
            .expect("in-memory corpus must decode")
        {
            out.extend_from_slice(&batch);
        }
        columnar_ns = columnar_ns.min(t.elapsed().as_nanos() as u64);
        columnar_records = out;
    }
    assert_eq!(
        columnar_records, records,
        "columnar ingest must reproduce the pcap decode exactly"
    );

    // The mmap-vs-buffered comparison needs a real file — and a corpus
    // large enough to fall out of the last-level cache. A cache-resident
    // file makes the buffered path's extra copy nearly free (the kernel
    // pages it copies from are already hot), so tiny corpora measure LLC
    // bandwidth, not the read paths; the zero-copy payoff is for the
    // multi-day traces this format exists for. Cycle the record set up to
    // the floor before imaging it.
    let mut mm_records = records.clone();
    while mm_records.len() < MMAP_BENCH_MIN_RECORDS && !records.is_empty() {
        let take = (MMAP_BENCH_MIN_RECORDS - mm_records.len()).min(records.len());
        mm_records.extend_from_slice(&records[..take]);
    }
    let ltc_mm = corpus::ltc_to_vec(&mm_records, 0);
    // Write the corpus image to a temp path, take one untimed pass
    // through each arm (faulting the file into the page cache and
    // amortising lazy setup), then time the arms interleaved so neither
    // sees a colder cache than the other. At least four timed repeats:
    // right after a large allocation churn the kernel can serve one
    // mapped pass an order of magnitude slow (observed once per process,
    // ~500 ms on this box), and best-of-N must be able to step over that
    // outlier. Every repeat runs both decodes in full — no skip path.
    let path = std::env::temp_dir().join(format!("bench-ingest-{}.ltc", std::process::id()));
    std::fs::write(&path, &ltc_mm).expect("bench corpus write");
    let mut buffered_ns = u64::MAX;
    let mut mmap_ns = u64::MAX;
    let mut mmap_records = Vec::new();
    corpus::records_from_ltc(&path).expect("bench corpus read");
    corpus::records_from_ltc_mmap(&path).expect("bench corpus map");
    // Eight passes minimum with the arm order alternating: the two arms
    // race the same drifting machine, so a fixed order would hand
    // whichever arm runs second any systematic slowdown, and a larger
    // best-of pool is what keeps one noisy pass from deciding a CI gate.
    for pass in 0..repeats.max(8) {
        let mut time_buffered = || {
            let t = Instant::now();
            let (buffered_records, _) = corpus::records_from_ltc(&path).expect("bench corpus read");
            buffered_ns = buffered_ns.min(t.elapsed().as_nanos() as u64);
            assert_eq!(buffered_records.len(), mm_records.len());
        };
        let mut time_mmap = |out: &mut Vec<_>| {
            let t = Instant::now();
            let (recs, _) = corpus::records_from_ltc_mmap(&path).expect("bench corpus map");
            mmap_ns = mmap_ns.min(t.elapsed().as_nanos() as u64);
            *out = recs;
        };
        if pass % 2 == 0 {
            time_buffered();
            time_mmap(&mut mmap_records);
        } else {
            time_mmap(&mut mmap_records);
            time_buffered();
        }
    }
    std::fs::remove_file(&path).ok();
    assert_eq!(
        mmap_records, mm_records,
        "mapped ingest must reproduce the buffered decode exactly"
    );

    let rps = |count: usize, ns: u64| {
        if ns == 0 {
            0.0
        } else {
            count as f64 / (ns as f64 / 1e9)
        }
    };
    let pcap_records_per_s = rps(records.len(), pcap_ns);
    let columnar_records_per_s = rps(records.len(), columnar_ns);
    let buffered_records_per_s = rps(mm_records.len(), buffered_ns);
    let mmap_records_per_s = rps(mm_records.len(), mmap_ns);
    IngestBench {
        records: records.len() as u64,
        mmap_corpus_records: mm_records.len() as u64,
        pcap_ns,
        pcap_records_per_s,
        columnar_ns,
        columnar_records_per_s,
        columnar_vs_pcap: if pcap_records_per_s > 0.0 {
            columnar_records_per_s / pcap_records_per_s
        } else {
            0.0
        },
        buffered_ns,
        buffered_records_per_s,
        mmap_ns,
        mmap_records_per_s,
        mmap_vs_buffered: if buffered_records_per_s > 0.0 {
            mmap_records_per_s / buffered_records_per_s
        } else {
            0.0
        },
    }
}

fn make_engine(engine: BenchEngine, cfg: DetectorConfig, threads: usize) -> Box<dyn Engine> {
    match engine {
        BenchEngine::Block => Box::new(BlockEngine::new(cfg, threads)),
        BenchEngine::Ring => Box::new(ShardedEngine::new(cfg, threads)),
    }
}

/// Runs the comparison on `records` for each of `thread_counts` with the
/// chosen engine, timing best-of-`repeats` and cross-checking every
/// output against serial.
pub fn run_on_engine(
    records: &[TraceRecord],
    thread_counts: &[usize],
    repeats: usize,
    engine: BenchEngine,
) -> ParallelBench {
    let cfg = DetectorConfig::default();
    let (serial_best_ns, serial) =
        time_best(repeats, || detect(records, &mut SerialEngine::new(cfg)));
    let serial_stages = measure_stages(&SERIAL_STAGES, || {
        detect(records, &mut SerialEngine::new(cfg));
    });
    let per_s = |ns: u64| {
        if ns == 0 {
            0.0
        } else {
            records.len() as f64 / (ns as f64 / 1e9)
        }
    };
    let samples = thread_counts
        .iter()
        .map(|&threads| {
            let (best_ns, result) = time_best(repeats, || {
                detect(records, &mut *make_engine(engine, cfg, threads))
            });
            // One instrumented run yields both the stage row and the
            // per-worker rows (same snapshot delta).
            let (stages, workers) = match engine {
                BenchEngine::Block => {
                    // Uniform schema at EVERY thread count: one block
                    // worker runs the same scan/reconcile/index/
                    // validate/merge/stitch machinery as eight.
                    let mut keys: Vec<&'static str> = BLOCK_STAGES.to_vec();
                    for w in 0..threads {
                        for field in WORKER_FIELDS {
                            keys.push(block_metric(w, field));
                        }
                    }
                    let all = measure_stages(&keys, || {
                        detect(records, &mut *make_engine(engine, cfg, threads));
                    });
                    let stages = all[..BLOCK_STAGES.len()].to_vec();
                    let workers = all[BLOCK_STAGES.len()..]
                        .chunks(WORKER_FIELDS.len())
                        .enumerate()
                        .map(|(w, chunk)| {
                            chunk
                                .iter()
                                .zip(WORKER_FIELDS)
                                .map(|(&(_, ns), field)| (block_metric(w, field), ns))
                                .collect()
                        })
                        .collect();
                    (stages, workers)
                }
                BenchEngine::Ring => {
                    // The ring dispatcher at one thread IS the serial
                    // path — it never spawns workers or touches the
                    // `shard.*` timers, so its 1-thread row keeps the
                    // serial stage names (the historical special case).
                    let stage_keys: &[&'static str] = if threads == 1 {
                        &SERIAL_STAGES
                    } else {
                        &PARALLEL_STAGES
                    };
                    let stages = measure_stages(stage_keys, || {
                        detect(records, &mut *make_engine(engine, cfg, threads));
                    });
                    (stages, Vec::new())
                }
            };
            ParallelSample {
                threads,
                best_ns,
                records_per_s: per_s(best_ns),
                speedup: serial_best_ns as f64 / best_ns.max(1) as f64,
                identical: results_equal(&serial, &result),
                stages,
                workers,
            }
        })
        .collect();
    let ingest = bench_ingest(records.len().max(1), repeats);
    ParallelBench {
        engine: engine.name(),
        records: records.len() as u64,
        streams: serial.streams.len() as u64,
        loops: serial.loops.len() as u64,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rustc: rustc_version(),
        runner: runner_label(),
        serial_best_ns,
        serial_records_per_s: per_s(serial_best_ns),
        serial_stages,
        ingest_records: ingest.records,
        ingest_ns: ingest.pcap_ns,
        ingest_records_per_s: ingest.pcap_records_per_s,
        columnar_ingest_ns: ingest.columnar_ns,
        columnar_ingest_records_per_s: ingest.columnar_records_per_s,
        columnar_vs_pcap: ingest.columnar_vs_pcap,
        buffered_ingest_ns: ingest.buffered_ns,
        buffered_ingest_records_per_s: ingest.buffered_records_per_s,
        mmap_ingest_records: ingest.mmap_corpus_records,
        mmap_ingest_ns: ingest.mmap_ns,
        mmap_ingest_records_per_s: ingest.mmap_records_per_s,
        mmap_vs_buffered: ingest.mmap_vs_buffered,
        samples,
    }
}

/// [`run_on_engine`] with the default block engine.
pub fn run_on(records: &[TraceRecord], thread_counts: &[usize], repeats: usize) -> ParallelBench {
    run_on_engine(records, thread_counts, repeats, BenchEngine::Block)
}

/// [`run_on`] over the standard bench trace.
pub fn run(scale: f64, thread_counts: &[usize], repeats: usize) -> ParallelBench {
    let records = bench_trace(scale);
    run_on(&records, thread_counts, repeats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that run detector workloads share the process-global
    /// telemetry registry; serialise them so stage deltas stay
    /// attributable to their own run.
    static WORKLOAD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn measure_stages_scopes_to_its_own_run() {
        // A synthetic stage timer with pre-existing state: the
        // measurement must report only what its own run recorded, not
        // the cumulative total and not earlier measurements.
        let timer = telemetry::global().timer("benchtest.scoped_stage");
        let keys: [&'static str; 1] = ["benchtest.scoped_stage"];
        timer.record(5_000);
        let first = measure_stages(&keys, || timer.record(1_000));
        assert_eq!(first, vec![("benchtest.scoped_stage", 1_000)]);
        let second = measure_stages(&keys, || timer.record(250));
        assert_eq!(second, vec![("benchtest.scoped_stage", 250)]);
        // An unrecorded key reports zero, not garbage.
        let empty = measure_stages(&["benchtest.never_recorded"], || {});
        assert_eq!(empty, vec![("benchtest.never_recorded", 0)]);
    }

    #[test]
    fn stage_schema_is_uniform_at_every_thread_count() {
        let _lock = WORKLOAD.lock().unwrap_or_else(|p| p.into_inner());
        let records = bench_trace(0.04);
        let bench = run_on(&records, &[1, 2], 1);
        for row in &bench.samples {
            let names: Vec<&str> = row.stages.iter().map(|(k, _)| *k).collect();
            assert_eq!(
                names, BLOCK_STAGES,
                "threads={} must use the uniform block schema",
                row.threads
            );
            let total: u64 = row.stages.iter().map(|(_, ns)| ns).sum();
            assert!(
                total > 0,
                "threads={} stage row must not be all-zero: {row:?}",
                row.threads
            );
            // Exactly one per-worker row per worker, none dark.
            assert_eq!(row.workers.len(), row.threads);
            assert!(
                !row.any_worker_row_all_zero(),
                "threads={} has a dark worker row: {:?}",
                row.threads,
                row.workers
            );
        }
    }

    #[test]
    fn ring_ablation_keeps_the_shard_schema() {
        let _lock = WORKLOAD.lock().unwrap_or_else(|p| p.into_inner());
        let records = bench_trace(0.04);
        let bench = run_on_engine(&records, &[2], 1, BenchEngine::Ring);
        assert_eq!(bench.engine, "ring");
        let row = &bench.samples[0];
        let names: Vec<&str> = row.stages.iter().map(|(k, _)| *k).collect();
        assert_eq!(names, PARALLEL_STAGES);
        assert!(row.workers.is_empty(), "ring rows carry no worker rows");
        assert!(row.identical, "ring diverged from serial");
    }

    #[test]
    fn tiny_bench_is_deterministic_and_serialisable() {
        let _lock = WORKLOAD.lock().unwrap_or_else(|p| p.into_inner());
        let bench = run(0.04, &[2, 4], 1);
        assert!(bench.records > 0);
        assert!(bench.all_identical(), "parallel diverged from serial");
        assert!(bench.cores >= 1);
        assert!(bench.ingest_records == bench.records);
        assert!(bench.ingest_records_per_s > 0.0);
        assert!(bench.columnar_ingest_records_per_s > 0.0);
        assert!(bench.columnar_vs_pcap > 0.0);
        assert!(bench.buffered_ingest_records_per_s > 0.0);
        assert!(bench.mmap_ingest_records_per_s > 0.0);
        assert!(bench.mmap_vs_buffered > 0.0);
        assert!(!bench.rustc.is_empty());
        assert!(!bench.runner.is_empty());
        let serial_detect = bench
            .serial_stages
            .iter()
            .find(|(k, _)| *k == "replica.detect")
            .expect("serial breakdown present");
        assert!(serial_detect.1 > 0, "detect stage must record time");
        let json = bench.to_json();
        assert!(json.contains("\"bench\": \"parallel\""));
        assert!(json.contains("\"engine\": \"block\""));
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"cores\": "));
        assert!(json.contains("\"rustc\": \""));
        assert!(json.contains("\"runner\": \""));
        assert!(json.contains("\"ingest\": {\"records\": "));
        assert!(json.contains("\"ingest_columnar\": {\"records\": "));
        assert!(json.contains("\"vs_pcap\": "));
        assert!(json.contains("\"ingest_mmap\": {\"records\": "));
        assert!(json.contains("\"vs_buffered\": "));
        assert!(json.contains("\"serial_stages\": {\"replica.detect\": "));
        assert!(json.contains("\"block.scan\": "));
        assert!(json.contains("\"block.w0.index\": "));
        assert!(json.contains("\"block.w0.busy\": "));
    }
}
