//! The experiment harness: builds the four synthetic backbones, runs the
//! detector, and regenerates every table and figure of the paper.
//!
//! The `repro` binary (`cargo run -p bench --release --bin repro`) prints
//! the lot; the Criterion benches exercise per-artifact regeneration; the
//! per-experiment functions here are shared by both and by the integration
//! tests.

pub mod baseline;
pub mod experiments;
pub mod harness;
pub mod parallel;
pub mod utilization;

pub use harness::{collect, BackboneData, ExperimentData};
