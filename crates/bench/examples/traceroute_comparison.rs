//! The §III argument, live: run a controlled transient loop and watch the
//! passive trace detector catch what a traceroute prober misses.
//!
//! ```text
//! cargo run --release --example traceroute_comparison
//! ```

use routing_loops::simnet::SimDuration;

fn main() {
    println!("loop duration sweep: passive trace detection vs 10s-interval traceroute\n");
    println!(
        "{:>14}  {:>16}  {:>12}  {:>8}  {:>11}",
        "loop duration", "passive (trace)", "traceroute", "streams", "looped runs"
    );
    for loop_ms in [50u64, 200, 1_000, 5_000, 20_000] {
        let outcome = bench::baseline::run_trial(loop_ms, 200, SimDuration::from_secs(10));
        println!(
            "{:>11} ms  {:>16}  {:>12}  {:>8}  {:>11}",
            outcome.loop_ms,
            if outcome.passive_detected {
                "detected"
            } else {
                "missed"
            },
            if outcome.traceroute_detected {
                "detected"
            } else {
                "missed"
            },
            outcome.passive_streams,
            outcome.looped_runs,
        );
    }
    println!(
        "\nThe passive detector needs only a handful of packets caught in the loop;\n\
         the prober needs a whole traceroute run to overlap the loop window, so\n\
         sub-interval transient loops are structurally invisible to it (§III)."
    );
}
