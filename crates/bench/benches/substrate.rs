//! Substrate microbenchmarks: the packet engine, FIB, checksums, and pcap
//! I/O that everything above rests on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use net_types::{checksum, Ipv4Prefix, Packet, TcpFlags};
use pcaplib::{FileHeader, PcapReader, PcapWriter};
use simnet::{Engine, Fib, Route, SimConfig, SimDuration, SimTime, TopologyBuilder};
use std::io::Cursor;
use std::net::Ipv4Addr;

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_engine");
    group.sample_size(10);
    let n_packets = 20_000u64;
    group.throughput(Throughput::Elements(n_packets));
    group.bench_function("line_forwarding_20k", |b| {
        b.iter(|| {
            let mut bld = TopologyBuilder::new();
            let src = bld.node("src", Ipv4Addr::new(10, 0, 0, 1));
            let r1 = bld.node("r1", Ipv4Addr::new(10, 0, 0, 2));
            let r2 = bld.node("r2", Ipv4Addr::new(10, 0, 0, 3));
            let dst = bld.node("dst", Ipv4Addr::new(10, 0, 0, 4));
            bld.attach_prefix(dst, "203.0.113.0/24".parse().unwrap());
            let l0 = bld.link(src, r1, 10_000_000_000, SimDuration::from_micros(100));
            let l1 = bld.link(r1, r2, 10_000_000_000, SimDuration::from_micros(100));
            let l2 = bld.link(r2, dst, 10_000_000_000, SimDuration::from_micros(100));
            let topo = bld.build();
            let mut e = Engine::new(
                topo,
                SimConfig {
                    record_deliveries: false,
                    ..SimConfig::default()
                },
            );
            let p: Ipv4Prefix = "203.0.113.0/24".parse().unwrap();
            e.install_route(src, p, Route::Link(l0));
            e.install_route(r1, p, Route::Link(l1));
            e.install_route(r2, p, Route::Link(l2));
            let mut pkt = Packet::tcp_flags(
                Ipv4Addr::new(100, 64, 0, 1),
                Ipv4Addr::new(203, 0, 113, 77),
                4000,
                80,
                TcpFlags::ACK,
                vec![0u8; 100],
            );
            for i in 0..n_packets {
                pkt.ip.ident = i as u16;
                pkt.fill_checksums();
                e.schedule_inject(SimTime(i * 10_000), src, pkt.clone());
            }
            let report = e.run();
            assert_eq!(report.delivered, n_packets);
            report.events_processed
        });
    });
    group.finish();
}

fn bench_fib(c: &mut Criterion) {
    let mut fib = Fib::new();
    // A routing-table-like population: 10k prefixes of mixed length.
    for i in 0..10_000u32 {
        let addr = Ipv4Addr::from(i << 12);
        let len = 12 + (i % 16) as u8;
        fib.insert(
            Ipv4Prefix::new(addr, len).unwrap(),
            Route::Link(simnet::LinkId((i % 16) as usize)),
        );
    }
    let mut group = c.benchmark_group("fib");
    group.throughput(Throughput::Elements(1));
    group.bench_function("lpm_lookup_10k_prefixes", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = x.wrapping_add(0x9e37_79b9);
            fib.lookup(std::hint::black_box(Ipv4Addr::from(x)))
        });
    });
    group.finish();
}

fn bench_checksums(c: &mut Criterion) {
    let data = vec![0xa5u8; 1500];
    let mut group = c.benchmark_group("checksum");
    group.throughput(Throughput::Bytes(1500));
    group.bench_function("rfc1071_full_1500B", |b| {
        b.iter(|| checksum::checksum(std::hint::black_box(&data)));
    });
    group.bench_function("rfc1624_ttl_rewrite", |b| {
        let mut hc = 0x1234u16;
        b.iter(|| {
            hc = checksum::ttl_rewrite(std::hint::black_box(hc), 64, 63, 6);
            hc
        });
    });
    group.finish();
}

fn bench_pcap(c: &mut Criterion) {
    let pkt = Packet::tcp_flags(
        Ipv4Addr::new(100, 64, 0, 1),
        Ipv4Addr::new(203, 0, 113, 1),
        4000,
        80,
        TcpFlags::ACK,
        vec![0u8; 1000],
    );
    let bytes = pkt.emit();
    let n = 10_000u64;
    let mut group = c.benchmark_group("pcap");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n));
    group.bench_function("write_10k_records", |b| {
        b.iter(|| {
            let mut w = PcapWriter::new(Vec::new(), FileHeader::raw_ip(40)).unwrap();
            for i in 0..n {
                w.write_bytes(i * 1_000, &bytes).unwrap();
            }
            w.finish().unwrap().len()
        });
    });
    // Pre-build a file for the read bench.
    let mut w = PcapWriter::new(Vec::new(), FileHeader::raw_ip(40)).unwrap();
    for i in 0..n {
        w.write_bytes(i * 1_000, &bytes).unwrap();
    }
    let file = w.finish().unwrap();
    group.bench_function("read_10k_records", |b| {
        b.iter(|| {
            let mut r = PcapReader::new(Cursor::new(&file)).unwrap();
            r.read_all().unwrap().len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_fib,
    bench_checksums,
    bench_pcap
);
criterion_main!(benches);
