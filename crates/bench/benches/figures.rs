//! One bench per table/figure: regenerating each artifact from a cached
//! backbone run (T1, T2, F2–F9 and the §VI statistics).
//!
//! Collection (simulation + detection) happens once outside the measured
//! region; what is timed is the per-artifact analysis, which is what an
//! analyst iterating on a trace re-runs.

use bench::harness::collect_one;
use bench::BackboneData;
use criterion::{criterion_group, criterion_main, Criterion};
use loopscope::analysis;
use loopscope::impact;

fn data() -> BackboneData {
    // Backbone 1 at small scale: representative mix of loops and traffic.
    collect_one(0, 0.1)
}

fn bench_figures(c: &mut Criterion) {
    let b = data();
    let records = &b.run.records;
    let det = &b.detection;

    c.bench_function("table1_traces", |bch| {
        bch.iter(|| analysis::trace_summary(std::hint::black_box(records), &det.streams))
    });
    c.bench_function("table2_merge_counts", |bch| {
        bch.iter(|| (det.streams.len(), det.loops.len()))
    });
    c.bench_function("fig2_ttl_delta", |bch| {
        bch.iter(|| analysis::ttl_delta_distribution(std::hint::black_box(&det.streams)))
    });
    c.bench_function("fig3_stream_size", |bch| {
        bch.iter(|| analysis::stream_size_cdf(std::hint::black_box(&det.streams)))
    });
    c.bench_function("fig4_spacing", |bch| {
        bch.iter(|| analysis::spacing_cdf_ms(std::hint::black_box(&det.streams)))
    });
    c.bench_function("fig5_mix_all", |bch| {
        bch.iter(|| analysis::mix_all(std::hint::black_box(records)))
    });
    c.bench_function("fig6_mix_looped", |bch| {
        bch.iter(|| analysis::mix_looped(std::hint::black_box(&det.streams)))
    });
    c.bench_function("fig7_dest_scatter", |bch| {
        bch.iter(|| analysis::dest_scatter(std::hint::black_box(&det.streams)))
    });
    c.bench_function("fig8_stream_duration", |bch| {
        bch.iter(|| analysis::stream_duration_cdf_ms(std::hint::black_box(&det.streams)))
    });
    c.bench_function("fig9_loop_duration", |bch| {
        bch.iter(|| analysis::loop_duration_cdf_s(std::hint::black_box(&det.loops)))
    });
    c.bench_function("s1_loss_timeseries", |bch| {
        bch.iter(|| {
            impact::loop_death_timeseries(std::hint::black_box(&det.streams), impact::MINUTE_NS)
        })
    });
    c.bench_function("s2_escape_estimate", |bch| {
        bch.iter(|| impact::escape_estimate(std::hint::black_box(&det.streams)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
criterion_main!(benches);
