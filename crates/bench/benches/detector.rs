//! Core detector throughput: the three-step pipeline over traces of
//! increasing size, plus its building blocks (key extraction, prefix
//! indexing).
//!
//! The paper processed multi-hour OC-12 traces offline; these benches
//! establish that the implementation sustains millions of records per
//! second, i.e. that offline analysis of a day of backbone trace is
//! practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loopscope::validate::PrefixIndex;
use loopscope::{Detector, DetectorConfig, ReplicaKey, TraceRecord};
use net_types::{Packet, TcpFlags};
use std::net::Ipv4Addr;

/// Builds a synthetic trace of `n` records: mostly ordinary traffic with a
/// loop episode every ~5000 packets.
fn synthetic_trace(n: usize) -> Vec<TraceRecord> {
    let mut records = Vec::with_capacity(n + 64);
    let mut t = 0u64;
    let mut ident = 0u16;
    let mut i = 0usize;
    while i < n {
        // Ordinary packet.
        let dst = Ipv4Addr::new(20 + (i % 60) as u8, 1, (i % 251) as u8, 9);
        let mut p = Packet::tcp_flags(
            Ipv4Addr::new(100, 64, 1, 1),
            dst,
            40_000,
            80,
            TcpFlags::ACK,
            &b"pay"[..],
        );
        p.ip.ident = ident;
        p.ip.ttl = 57;
        p.fill_checksums();
        records.push(TraceRecord::from_packet(t, &p));
        ident = ident.wrapping_add(1);
        t += 50_000;
        i += 1;
        // Periodic loop episode: one packet circulating 20 times.
        if i.is_multiple_of(5_000) {
            let mut lp = Packet::tcp_flags(
                Ipv4Addr::new(100, 64, 2, 2),
                Ipv4Addr::new(203, 0, 113, (i / 5_000 % 200) as u8),
                41_000,
                80,
                TcpFlags::ACK,
                &b"loop"[..],
            );
            lp.ip.ident = ident;
            lp.ip.ttl = 60;
            lp.fill_checksums();
            ident = ident.wrapping_add(1);
            for k in 0..20 {
                if k > 0 {
                    lp.ip.decrement_ttl();
                    lp.ip.decrement_ttl();
                }
                records.push(TraceRecord::from_packet(t, &lp));
                t += 1_000_000;
                i += 1;
            }
        }
    }
    records
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_pipeline");
    for &n in &[10_000usize, 50_000, 200_000] {
        let trace = synthetic_trace(n);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, trace| {
            let det = Detector::new(DetectorConfig::default());
            b.iter(|| det.run(std::hint::black_box(trace)));
        });
    }
    group.finish();
}

fn bench_key_extraction(c: &mut Criterion) {
    let trace = synthetic_trace(10_000);
    c.bench_function("replica_key_extraction_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in &trace {
                let k = ReplicaKey::of(std::hint::black_box(r));
                acc = acc.wrapping_add(u64::from(k.ident));
            }
            acc
        });
    });
}

fn bench_prefix_index(c: &mut Criterion) {
    let trace = synthetic_trace(50_000);
    c.bench_function("prefix_index_build_50k", |b| {
        b.iter(|| PrefixIndex::build(std::hint::black_box(&trace)));
    });
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_key_extraction,
    bench_prefix_index
);
criterion_main!(benches);
