//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * A1 — merge gap (1 / 2 / 5 minutes): step 3 cost vs gap.
//! * A2 — validation on/off: what steps 2's rules cost.
//! * Key granularity — full replica key vs a key without the transport
//!   checksum (the §IV-A.1 payload proxy).
//! * Checksum-consistency verification on/off.

use bench::harness::collect_one;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use loopscope::{Detector, DetectorConfig, ReplicaKey};
use std::collections::HashMap;

fn bench_merge_gap(c: &mut Criterion) {
    let data = collect_one(0, 0.1);
    let mut group = c.benchmark_group("ablation_merge_gap");
    group.sample_size(10);
    for minutes in [1u64, 2, 5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(minutes),
            &minutes,
            |b, &minutes| {
                let det = Detector::new(DetectorConfig::default().with_merge_gap_minutes(minutes));
                b.iter(|| det.run(std::hint::black_box(&data.run.records)));
            },
        );
    }
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    let data = collect_one(0, 0.1);
    let mut group = c.benchmark_group("ablation_validate");
    group.sample_size(10);
    group.bench_function("with_validation", |b| {
        let det = Detector::new(DetectorConfig::default());
        b.iter(|| det.run(std::hint::black_box(&data.run.records)));
    });
    group.bench_function("no_validation", |b| {
        let det = Detector::new(DetectorConfig::no_validation());
        b.iter(|| det.run(std::hint::black_box(&data.run.records)));
    });
    group.bench_function("no_checksum_verify", |b| {
        let det = Detector::new(DetectorConfig {
            verify_checksum_consistency: false,
            ..DetectorConfig::default()
        });
        b.iter(|| det.run(std::hint::black_box(&data.run.records)));
    });
    group.finish();
}

fn bench_key_granularity(c: &mut Criterion) {
    let data = collect_one(0, 0.1);
    let records = &data.run.records;
    let mut group = c.benchmark_group("ablation_key");
    group.sample_size(10);
    group.bench_function("full_key_grouping", |b| {
        b.iter(|| {
            let mut map: HashMap<ReplicaKey, u32> = HashMap::new();
            for r in records {
                *map.entry(ReplicaKey::of(std::hint::black_box(r)))
                    .or_insert(0) += 1;
            }
            map.len()
        });
    });
    group.bench_function("no_checksum_key_grouping", |b| {
        b.iter(|| {
            let mut map: HashMap<ReplicaKey, u32> = HashMap::new();
            for r in records {
                *map.entry(ReplicaKey::without_transport_checksum(
                    std::hint::black_box(r),
                ))
                .or_insert(0) += 1;
            }
            map.len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_merge_gap,
    bench_validation,
    bench_key_granularity
);
criterion_main!(benches);
