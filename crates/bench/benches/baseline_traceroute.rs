//! B1 — the traceroute baseline, as a bench: the cost of one full
//! controlled-loop trial (simulate + probe + passive detect) per loop
//! duration, plus probe-analysis throughput.

use bench::baseline::run_trial;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::SimDuration;

fn bench_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_traceroute_trial");
    group.sample_size(10);
    for &loop_ms in &[100u64, 1_000, 5_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(loop_ms),
            &loop_ms,
            |b, &loop_ms| {
                b.iter(|| run_trial(loop_ms, 100, SimDuration::from_secs(10)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trials);
criterion_main!(benches);
