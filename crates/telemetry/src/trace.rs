//! Structured event tracing: per-thread lock-free ring buffers of
//! begin/end/instant/counter events, drained to Chrome `trace_event` JSON.
//!
//! Metrics (the registry) answer *how much*; traces answer *when and on
//! which thread*. Every [`crate::span`] call doubles as a trace span when
//! tracing is enabled, so the existing stage instrumentation — pipeline
//! stages, shard dispatch, per-worker detect/validate/merge — becomes a
//! per-thread timeline loadable in `chrome://tracing` or Perfetto with no
//! extra wiring. Subsystems add their own [`instant`] and [`counter`]
//! events (ring stalls, queue depths, prefilter promotions, loop-closed
//! markers) where a number alone would not explain a regression.
//!
//! # Design
//!
//! * **Zero-cost when disabled.** Every emission site starts with one
//!   relaxed atomic load ([`is_enabled`]) and returns. No allocation, no
//!   lock, no time query. A counting-allocator test in
//!   `tests/trace_zero_alloc.rs` holds this at zero allocations per event.
//! * **Per-thread rings, single writer.** The first event on a thread
//!   registers a fixed-capacity ring for it (the only allocation tracing
//!   ever performs); every later event is 6 relaxed/release stores into
//!   that ring. No cross-thread contention on the hot path.
//! * **Seqlock slots, overwrite-oldest.** Each slot is four `AtomicU64`
//!   words guarded by a per-slot sequence number; the drain side rereads
//!   the sequence after copying and discards torn slots, so draining is
//!   safe (and lossy only for in-flight events) even while writers run.
//!   When a ring wraps, the oldest events are overwritten — a full ring
//!   costs recent history, never blocks the traced thread.
//! * **Interned names.** Events carry a `u32` id into a global name
//!   table. Static [`TraceName`] handles resolve once; the string-keyed
//!   [`begin_raw`]/[`end_raw`] path (used by [`crate::span`]) takes a
//!   lock per event and is meant for stage-granularity spans only.
//!
//! # Output
//!
//! [`write_chrome_trace`] renders the merged rings as a Chrome
//! `trace_event` JSON document: begin/end pairs are folded into complete
//! (`"X"`) events per thread, instants become `"i"`, counters `"C"`, and
//! thread-name metadata rows label each worker. Timestamps are
//! microseconds since [`enable`] was called.

use crate::json::JsonWriter;
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity in events (32 bytes per slot).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// What kind of moment an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span opened on this thread.
    Begin,
    /// The most recent span of this name on this thread closed.
    End,
    /// A point event.
    Instant,
    /// A sampled value (`arg` carries it), rendered as a counter track.
    Counter,
}

impl Phase {
    fn from_bits(b: u64) -> Phase {
        match b & 0b11 {
            0 => Phase::Begin,
            1 => Phase::End,
            2 => Phase::Instant,
            _ => Phase::Counter,
        }
    }

    fn bits(self) -> u64 {
        match self {
            Phase::Begin => 0,
            Phase::End => 1,
            Phase::Instant => 2,
            Phase::Counter => 3,
        }
    }
}

/// Master switch. Relaxed is enough: a thread that misses the flip by a
/// few events loses those events, nothing else.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Ring capacity applied to threads that register after [`enable`].
static CAPACITY: AtomicU64 = AtomicU64::new(DEFAULT_RING_CAPACITY as u64);

/// Timestamps are measured from this process-lifetime epoch (set once, on
/// the first [`enable`]), so re-enabling in tests keeps time monotone.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Events at or after this epoch-relative nanosecond belong to the
/// current enable window; [`collect`] filters out older ones.
static WINDOW_START_NS: AtomicU64 = AtomicU64::new(0);

/// Next thread id handed to a registering ring (0 is reserved so Chrome
/// tid 0 never collides with a real ring).
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// All registered per-thread rings. Locked only at registration (once per
/// thread) and drain time, never on the event hot path.
static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

/// The global name table: id → name, plus the reverse map for interning.
static NAMES: Mutex<NameTable> = Mutex::new(NameTable {
    by_id: Vec::new(),
    by_name: BTreeMap::new(),
});

struct NameTable {
    by_id: Vec<&'static str>,
    by_name: BTreeMap<&'static str, u32>,
}

/// Interns `name`, returning its stable event id.
pub fn intern(name: &'static str) -> u32 {
    let mut t = NAMES.lock().expect("trace name table poisoned");
    if let Some(&id) = t.by_name.get(name) {
        return id;
    }
    let id = t.by_id.len() as u32;
    t.by_id.push(name);
    t.by_name.insert(name, id);
    id
}

fn name_of(id: u32) -> &'static str {
    NAMES
        .lock()
        .expect("trace name table poisoned")
        .by_id
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

/// A named trace-event handle: interns its name on first use, then every
/// event through it is lock-free. Declare as `static` next to the code it
/// instruments (instance fields work too — see the shard rings).
pub struct TraceName {
    name: &'static str,
    id: OnceLock<u32>,
}

impl TraceName {
    /// Declares a handle (const, so it can live in a `static`).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            id: OnceLock::new(),
        }
    }

    /// The interned event id (resolves on first call).
    pub fn id(&self) -> u32 {
        *self.id.get_or_init(|| intern(self.name))
    }
}

/// Seq value while a writer is mid-slot.
const SEQ_WRITING: u64 = u64::MAX;

/// One ring slot: a seqlock over `(ts, meta, arg)`. `seq` holds
/// `write_index + 1` once the slot is consistent.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    meta: AtomicU64,
    arg: AtomicU64,
}

/// One thread's event ring. Written only by the owning thread; drained by
/// anyone via the seqlock protocol.
struct ThreadRing {
    slots: Box<[Slot]>,
    /// Total events ever written (monotone; slot = head % capacity).
    head: AtomicU64,
    tid: u32,
    thread_name: String,
}

impl ThreadRing {
    fn new(capacity: usize, tid: u32, thread_name: String) -> Self {
        let slots = (0..capacity.max(16))
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ts: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                arg: AtomicU64::new(0),
            })
            .collect();
        Self {
            slots,
            head: AtomicU64::new(0),
            tid,
            thread_name,
        }
    }

    /// Single-writer append: mark the slot in-flight, store the payload,
    /// publish the new sequence.
    fn record(&self, ts_ns: u64, name_id: u32, phase: Phase, arg: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        slot.seq.store(SEQ_WRITING, Ordering::Release);
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.meta
            .store((u64::from(name_id) << 2) | phase.bits(), Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.seq.store(h + 1, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copies out every consistent event still resident, oldest first.
    fn drain(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        for i in head.saturating_sub(cap)..head {
            let slot = &self.slots[(i % cap) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != i + 1 {
                continue; // overwritten by a newer event, or in-flight
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != i + 1 {
                continue; // torn: the writer lapped us mid-copy
            }
            out.push(TraceEvent {
                ts_ns: ts,
                tid: self.tid,
                name_id: (meta >> 2) as u32,
                phase: Phase::from_bits(meta),
                arg,
            });
        }
    }
}

thread_local! {
    /// This thread's ring, registered on its first event.
    static LOCAL_RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
}

fn register_ring() -> Arc<ThreadRing> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = std::thread::current()
        .name()
        .map_or_else(|| format!("thread-{tid}"), str::to_string);
    let ring = Arc::new(ThreadRing::new(
        CAPACITY.load(Ordering::Relaxed) as usize,
        tid,
        name,
    ));
    RINGS
        .lock()
        .expect("trace ring registry poisoned")
        .push(Arc::clone(&ring));
    ring
}

/// Turns tracing on with the given per-thread ring capacity (in events).
/// Threads that already registered keep their rings; events from before
/// this call are excluded from [`collect`].
pub fn enable(ring_capacity: usize) {
    CAPACITY.store(ring_capacity.max(16) as u64, Ordering::Relaxed);
    WINDOW_START_NS.store(now_ns(), Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Already-buffered events stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether events are currently being recorded. One relaxed load — this
/// is the entire cost of every instrumentation site while disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn emit(name_id: u32, phase: Phase, arg: u64) {
    let ts = now_ns();
    LOCAL_RING.with(|cell| {
        cell.get_or_init(register_ring)
            .record(ts, name_id, phase, arg);
    });
}

/// Marks a point event.
#[inline]
pub fn instant(name: &TraceName) {
    if is_enabled() {
        emit(name.id(), Phase::Instant, 0);
    }
}

/// Samples a counter value (rendered as a counter track).
#[inline]
pub fn counter(name: &TraceName, value: u64) {
    if is_enabled() {
        emit(name.id(), Phase::Counter, value);
    }
}

/// Opens a span on this thread. Prefer [`span`] (RAII) at call sites.
#[inline]
pub fn begin(name: &TraceName) {
    if is_enabled() {
        emit(name.id(), Phase::Begin, 0);
    }
}

/// Closes the most recent span of this name on this thread.
#[inline]
pub fn end(name: &TraceName) {
    if is_enabled() {
        emit(name.id(), Phase::End, 0);
    }
}

/// [`begin`] for a name without a [`TraceName`] handle: interns per call
/// (one lock). For stage-granularity spans — [`crate::span`] uses this —
/// not per-record paths.
#[inline]
pub fn begin_raw(name: &'static str) {
    if is_enabled() {
        emit(intern(name), Phase::Begin, 0);
    }
}

/// [`end_raw`](end) counterpart of [`begin_raw`].
#[inline]
pub fn end_raw(name: &'static str) {
    if is_enabled() {
        emit(intern(name), Phase::End, 0);
    }
}

/// RAII trace span: begin on creation, end on drop. A disabled guard does
/// nothing at all.
#[must_use = "a trace span only brackets while it is alive"]
pub struct TraceSpan {
    id: Option<u32>,
}

/// Opens an RAII [`TraceSpan`].
#[inline]
pub fn span(name: &TraceName) -> TraceSpan {
    if is_enabled() {
        let id = name.id();
        emit(id, Phase::Begin, 0);
        TraceSpan { id: Some(id) }
    } else {
        TraceSpan { id: None }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            // The window may have closed mid-span; emit the end anyway so
            // drains that already saw the begin can pair it.
            emit(id, Phase::End, 0);
        }
    }
}

/// One drained event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Ring (thread) id.
    pub tid: u32,
    /// Interned name id (resolve with the name table via [`collect`]'s
    /// output — [`write_chrome_trace`] does this for you).
    pub name_id: u32,
    /// Event kind.
    pub phase: Phase,
    /// Counter value (0 for non-counter events).
    pub arg: u64,
}

/// Drains every ring into one timestamp-ordered event list, restricted to
/// the current enable window. Non-destructive: rings keep their contents.
pub fn collect() -> Vec<TraceEvent> {
    let window = WINDOW_START_NS.load(Ordering::Relaxed);
    let rings: Vec<Arc<ThreadRing>> = RINGS.lock().expect("trace ring registry poisoned").clone();
    let mut out = Vec::new();
    for ring in &rings {
        ring.drain(&mut out);
    }
    out.retain(|e| e.ts_ns >= window);
    out.sort_by_key(|e| (e.ts_ns, e.tid));
    out
}

/// Thread names by tid, for labelling drained events.
fn thread_names() -> Vec<(u32, String)> {
    RINGS
        .lock()
        .expect("trace ring registry poisoned")
        .iter()
        .map(|r| (r.tid, r.thread_name.clone()))
        .collect()
}

/// Writes the drained trace as a Chrome `trace_event` JSON document
/// (loadable in `chrome://tracing` and Perfetto).
///
/// Begin/end pairs are folded into complete (`"X"`) events per thread —
/// robust against rings that overwrote one half of a pair: an unmatched
/// end is dropped, an unmatched begin is closed at the last seen
/// timestamp. Instants render as `"i"` (thread scope), counters as `"C"`.
pub fn write_chrome_trace<W: Write>(w: &mut W) -> std::io::Result<()> {
    let events = collect();
    let last_ts = events.last().map_or(0, |e| e.ts_ns);
    let mut j = JsonWriter::new();
    j.begin_object();
    j.key("displayTimeUnit");
    j.string("ms");
    j.key("traceEvents");
    j.begin_array();

    let us = |ns: u64| ns as f64 / 1e3;
    let event_obj = |j: &mut JsonWriter, name: &str, ph: &str, ts_us: f64, tid: u32| {
        j.begin_object();
        j.key("name");
        j.string(name);
        j.key("ph");
        j.string(ph);
        j.key("ts");
        j.f64_3(ts_us);
        j.key("pid");
        j.u64(1);
        j.key("tid");
        j.u64(u64::from(tid));
    };

    for (tid, name) in thread_names() {
        event_obj(&mut j, "thread_name", "M", 0.0, tid);
        j.key("args");
        j.begin_object();
        j.key("name");
        j.string(&name);
        j.end_object();
        j.end_object();
    }

    // Per-thread stacks pair Begin with the matching End.
    let mut stacks: BTreeMap<u32, Vec<(u32, u64)>> = BTreeMap::new();
    for e in &events {
        let name = name_of(e.name_id);
        match e.phase {
            Phase::Begin => stacks.entry(e.tid).or_default().push((e.name_id, e.ts_ns)),
            Phase::End => {
                let stack = stacks.entry(e.tid).or_default();
                // Unwind to the matching begin; abandoned inner begins
                // (their ends were overwritten) close where the outer does.
                if let Some(pos) = stack.iter().rposition(|&(id, _)| id == e.name_id) {
                    let (_, begin_ts) = stack[pos];
                    stack.truncate(pos);
                    event_obj(&mut j, name, "X", us(begin_ts), e.tid);
                    j.key("dur");
                    j.f64_3(us(e.ts_ns.saturating_sub(begin_ts)));
                    j.end_object();
                }
            }
            Phase::Instant => {
                event_obj(&mut j, name, "i", us(e.ts_ns), e.tid);
                j.key("s");
                j.string("t");
                j.end_object();
            }
            Phase::Counter => {
                event_obj(&mut j, name, "C", us(e.ts_ns), e.tid);
                j.key("args");
                j.begin_object();
                j.key("value");
                j.u64(e.arg);
                j.end_object();
                j.end_object();
            }
        }
    }
    // Begins whose end never arrived: close them at the trace edge.
    for (tid, stack) in stacks {
        for (name_id, begin_ts) in stack.into_iter().rev() {
            event_obj(&mut j, name_of(name_id), "X", us(begin_ts), tid);
            j.key("dur");
            j.f64_3(us(last_ts.saturating_sub(begin_ts)));
            j.end_object();
        }
    }

    j.end_array();
    j.end_object();
    w.write_all(j.finish().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace state is process-global; serialise the tests that toggle it.
    static TRACE_TESTS: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TRACE_TESTS.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = lock();
        disable();
        static N: TraceName = TraceName::new("test.disabled");
        let before = collect().len();
        for _ in 0..100 {
            instant(&N);
            let _s = span(&N);
        }
        assert_eq!(collect().len(), before);
    }

    #[test]
    fn begin_end_pairs_fold_into_complete_events() {
        let _g = lock();
        enable(1024);
        static OUTER: TraceName = TraceName::new("test.outer");
        static INNER: TraceName = TraceName::new("test.inner");
        {
            let _o = span(&OUTER);
            let _i = span(&INNER);
        }
        instant(&OUTER);
        disable();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        crate::json::validate(&json).expect("chrome trace must be valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"test.outer\""));
        assert!(json.contains("\"test.inner\""));
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
    }

    #[test]
    fn counters_carry_their_value() {
        let _g = lock();
        enable(1024);
        static Q: TraceName = TraceName::new("test.queue_depth");
        counter(&Q, 7);
        counter(&Q, 3);
        let events: Vec<TraceEvent> = collect()
            .into_iter()
            .filter(|e| e.name_id == Q.id() && e.phase == Phase::Counter)
            .collect();
        disable();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].arg, 7);
        assert_eq!(events[1].arg, 3);
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf).unwrap();
        let json = String::from_utf8(buf).unwrap();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"value\":7"));
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_newest() {
        let ring = ThreadRing::new(16, 999, "wrap-test".into());
        for i in 0..40u64 {
            ring.record(i, i as u32, Phase::Instant, 0);
        }
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert_eq!(out.len(), 16, "capacity bounds retained history");
        let ts: Vec<u64> = out.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, (24..40).collect::<Vec<u64>>(), "newest survive");
    }

    #[test]
    fn events_from_worker_threads_carry_distinct_tids() {
        let _g = lock();
        enable(1024);
        static W: TraceName = TraceName::new("test.worker_mark");
        instant(&W);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| instant(&W));
            }
        });
        let tids: std::collections::BTreeSet<u32> = collect()
            .into_iter()
            .filter(|e| e.name_id == W.id())
            .map(|e| e.tid)
            .collect();
        disable();
        assert!(tids.len() >= 3, "main + 2 workers, got {tids:?}");
    }

    #[test]
    fn interning_is_stable_and_shared() {
        static A: TraceName = TraceName::new("test.intern_a");
        assert_eq!(A.id(), A.id());
        assert_eq!(intern("test.intern_a"), A.id());
        assert_ne!(intern("test.intern_b"), A.id());
    }
}
