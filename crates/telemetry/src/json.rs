//! A minimal hand-rolled JSON writer for metric snapshots.
//!
//! Emits compact (no-whitespace) JSON with correctly escaped strings. The
//! writer tracks nesting so callers never manage commas; keys and values
//! are emitted in call order.

/// Incremental JSON document builder.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    // Whether the current container already holds an element (comma needed).
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_element(&mut self) {
        if let Some(has_elem) = self.stack.last_mut() {
            if *has_elem {
                self.out.push(',');
            }
            *has_elem = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_element();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_element();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Emits an object key; the next emitted value belongs to it.
    pub fn key(&mut self, k: &str) {
        self.before_element();
        self.write_string(k);
        self.out.push(':');
        // The value that follows must not emit a comma of its own.
        if let Some(has_elem) = self.stack.last_mut() {
            *has_elem = false;
        }
    }

    /// Emits an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.before_element();
        self.out.push_str(&v.to_string());
    }

    /// Emits a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.before_element();
        self.out.push_str(&v.to_string());
    }

    /// Emits a string value.
    pub fn string(&mut self, s: &str) {
        self.before_element();
        self.write_string(s);
    }

    /// Emits a float with exactly three decimal places (never exponent
    /// notation) — the shape Chrome trace viewers expect for `ts`/`dur`.
    pub fn f64_3(&mut self, v: f64) {
        self.before_element();
        self.out.push_str(&format!("{v:.3}"));
    }

    fn write_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Consumes the writer and returns the document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Checks that `input` is exactly one syntactically valid JSON value.
///
/// A deliberately small recursive-descent validator (no value tree is
/// built) so tests and the CI smoke step can verify exporter output
/// without external tooling. Rejects trailing garbage; nesting is capped
/// to keep adversarial inputs from overflowing the stack.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or("truncated \\u escape")?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(format!("bad \\u digit at byte {}", self.pos));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                0x00..=0x1f => return Err(format!("raw control char at byte {}", self.pos - 1)),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            let start = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            if p.pos == start {
                Err(format!("expected digit at byte {}", p.pos))
            } else {
                Ok(())
            }
        };
        // Integer part: "0" alone, or a nonzero digit followed by more.
        let int_start = self.pos;
        digits(self)?;
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(format!("leading zero at byte {int_start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_objects_and_arrays() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.begin_array();
        w.u64(2);
        w.u64(3);
        w.begin_object();
        w.key("c");
        w.i64(-4);
        w.end_object();
        w.end_array();
        w.key("s");
        w.string("x");
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":[2,3,{"c":-4}],"s":"x"}"#);
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("e");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"e":[]}"#);
    }

    #[test]
    fn f64_is_plain_fixed_point() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.f64_3(0.0);
        w.f64_3(1234.5678);
        w.f64_3(1e9);
        w.end_array();
        assert_eq!(w.finish(), "[0.000,1234.568,1000000000.000]");
    }

    #[test]
    fn validator_accepts_what_the_writer_emits() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a\"b");
        w.begin_array();
        w.u64(1);
        w.i64(-2);
        w.f64_3(3.5);
        w.string("x\ny");
        w.end_array();
        w.end_object();
        validate(&w.finish()).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1}x",
            "\"unterminated",
            "01",
            "1.",
            "nul",
            "{\"a\" 1}",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
        for good in [
            "null",
            "true",
            " -1.5e-3 ",
            "[]",
            "{}",
            "{\"k\":[1,2,{\"n\":null}]}",
            "\"\\u00e9\"",
        ] {
            validate(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
    }
}
