//! A minimal hand-rolled JSON writer for metric snapshots.
//!
//! Emits compact (no-whitespace) JSON with correctly escaped strings. The
//! writer tracks nesting so callers never manage commas; keys and values
//! are emitted in call order.

/// Incremental JSON document builder.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    // Whether the current container already holds an element (comma needed).
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_element(&mut self) {
        if let Some(has_elem) = self.stack.last_mut() {
            if *has_elem {
                self.out.push(',');
            }
            *has_elem = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_element();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_element();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Emits an object key; the next emitted value belongs to it.
    pub fn key(&mut self, k: &str) {
        self.before_element();
        self.write_string(k);
        self.out.push(':');
        // The value that follows must not emit a comma of its own.
        if let Some(has_elem) = self.stack.last_mut() {
            *has_elem = false;
        }
    }

    /// Emits an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.before_element();
        self.out.push_str(&v.to_string());
    }

    /// Emits a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.before_element();
        self.out.push_str(&v.to_string());
    }

    /// Emits a string value.
    #[cfg(test)]
    pub fn string(&mut self, s: &str) {
        self.before_element();
        self.write_string(s);
    }

    fn write_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Consumes the writer and returns the document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_objects_and_arrays() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.u64(1);
        w.key("b");
        w.begin_array();
        w.u64(2);
        w.u64(3);
        w.begin_object();
        w.key("c");
        w.i64(-4);
        w.end_object();
        w.end_array();
        w.key("s");
        w.string("x");
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":1,"b":[2,3,{"c":-4}],"s":"x"}"#);
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("e");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"e":[]}"#);
    }
}
