//! Leveled logging to stderr, gated by the `LOOPSCOPE_LOG` env filter.
//!
//! # Filter syntax
//!
//! `LOOPSCOPE_LOG` is a comma-separated list of directives:
//!
//! - a bare level (`error`, `warn`, `info`, `debug`, `trace`, or `off`)
//!   sets the default maximum level;
//! - `target=level` overrides the level for one module-path prefix, e.g.
//!   `LOOPSCOPE_LOG=warn,loopscope::online=trace` keeps everything at
//!   `warn` except the online detector.
//!
//! Targets match by module-path prefix at a `::` boundary: the directive
//! `loopscope` covers `loopscope::validate`; `loop` does not. The most
//! specific (longest) matching directive wins. Unknown level names and
//! malformed directives are ignored rather than fatal — a typo in an env
//! var must never take down a detector run.
//!
//! Precedence per message target:
//! 1. the longest matching `target=level` directive,
//! 2. the programmatic default set by [`set_default_level`] (the CLI's
//!    `-v`/`-vv`/`-q` flags),
//! 3. the bare level in `LOOPSCOPE_LOG`,
//! 4. [`Level::Warn`].
//!
//! Messages go to **stderr** (stdout carries report/CSV output), one line
//! each: `[LEVEL target] message`.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Message severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The run cannot proceed correctly.
    Error,
    /// Something suspicious that does not stop the run.
    Warn,
    /// Progress and summary information.
    Info,
    /// Per-stage diagnostic detail.
    Debug,
    /// Per-record firehose.
    Trace,
}

impl Level {
    /// The label printed in log lines.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn parse(s: &str) -> Option<Option<Level>> {
        // Outer None = unrecognised; inner None = "off".
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            "off" | "none" => Some(None),
            _ => None,
        }
    }
}

/// A parsed `LOOPSCOPE_LOG` filter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Filter {
    /// Bare default level from the env var (`None` = not given or `off`).
    default: Option<Level>,
    /// Whether a bare directive appeared at all (distinguishes "unset"
    /// from an explicit `off`).
    default_given: bool,
    /// `(target-prefix, max level)`; `None` level silences the target.
    directives: Vec<(String, Option<Level>)>,
}

impl Filter {
    /// Parses a filter string (the `LOOPSCOPE_LOG` value).
    pub fn parse(spec: &str) -> Self {
        let mut f = Filter::default();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if let Some((target, level)) = item.split_once('=') {
                if let Some(level) = Level::parse(level) {
                    let target = target.trim();
                    if !target.is_empty() {
                        f.directives.push((target.to_string(), level));
                    }
                }
            } else if let Some(level) = Level::parse(item) {
                f.default = level;
                f.default_given = true;
            }
        }
        // Longest prefix first so the first match is the most specific.
        f.directives.sort_by_key(|d| std::cmp::Reverse(d.0.len()));
        f
    }

    /// The maximum level enabled for `target`; a `None` result silences
    /// the target entirely. `programmatic` is the process default from
    /// [`set_default_level`] (`None` = never set, `Some(None)` =
    /// explicitly silenced); it sits between per-target directives and
    /// the bare env level in precedence.
    pub fn max_level(&self, target: &str, programmatic: Option<Option<Level>>) -> Option<Level> {
        for (prefix, level) in &self.directives {
            if target == prefix
                || (target.len() > prefix.len()
                    && target.starts_with(prefix.as_str())
                    && target[prefix.len()..].starts_with("::"))
            {
                return *level;
            }
        }
        if let Some(p) = programmatic {
            return p;
        }
        if self.default_given {
            return self.default;
        }
        Some(Level::Warn)
    }
}

fn env_filter() -> &'static Filter {
    static FILTER: OnceLock<Filter> = OnceLock::new();
    FILTER.get_or_init(|| {
        std::env::var("LOOPSCOPE_LOG")
            .map(|v| Filter::parse(&v))
            .unwrap_or_default()
    })
}

// 0 = unset, 1..=5 = Error..=Trace, 6 = explicitly off (-q -q).
static PROGRAMMATIC: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default level (the CLI maps `-q` to
/// `Some(Level::Error)`, `-v` to `Some(Level::Info)`, `-vv` to
/// `Some(Level::Debug)`). Per-target `LOOPSCOPE_LOG` directives still
/// override it; the bare env level does not.
pub fn set_default_level(level: Option<Level>) {
    let raw = match level {
        None => 6,
        Some(Level::Error) => 1,
        Some(Level::Warn) => 2,
        Some(Level::Info) => 3,
        Some(Level::Debug) => 4,
        Some(Level::Trace) => 5,
    };
    PROGRAMMATIC.store(raw, Ordering::Relaxed);
}

fn programmatic_level() -> Option<Option<Level>> {
    match PROGRAMMATIC.load(Ordering::Relaxed) {
        0 => None,
        1 => Some(Some(Level::Error)),
        2 => Some(Some(Level::Warn)),
        3 => Some(Some(Level::Info)),
        4 => Some(Some(Level::Debug)),
        5 => Some(Some(Level::Trace)),
        _ => Some(None),
    }
}

/// Whether a message at `level` for `target` would be printed.
pub fn enabled(level: Level, target: &str) -> bool {
    match env_filter().max_level(target, programmatic_level()) {
        Some(max) => level <= max,
        None => false,
    }
}

/// Prints one log line to stderr (the macros call this; prefer them).
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if enabled(level, target) {
        eprintln!("[{} {}] {}", level.name(), target, args);
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! tm_error {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Error,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! tm_warn {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Warn,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! tm_info {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Info,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! tm_debug {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Debug,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! tm_trace {
    ($($arg:tt)*) => {
        $crate::logging::log(
            $crate::logging::Level::Trace,
            module_path!(),
            format_args!($($arg)*),
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn bare_level_sets_default() {
        let f = Filter::parse("info");
        assert_eq!(f.max_level("anything", None), Some(Level::Info));
    }

    #[test]
    fn unset_defaults_to_warn() {
        let f = Filter::parse("");
        assert_eq!(f.max_level("x", None), Some(Level::Warn));
    }

    #[test]
    fn per_target_overrides_default() {
        let f = Filter::parse("warn,loopscope::online=trace");
        assert_eq!(f.max_level("loopscope::online", None), Some(Level::Trace));
        assert_eq!(
            f.max_level("loopscope::online::sub", None),
            Some(Level::Trace)
        );
        assert_eq!(f.max_level("loopscope::validate", None), Some(Level::Warn));
    }

    #[test]
    fn prefix_matches_only_at_module_boundary() {
        let f = Filter::parse("loop=trace");
        assert_eq!(f.max_level("loopscope::online", None), Some(Level::Warn));
        assert_eq!(f.max_level("loop::inner", None), Some(Level::Trace));
        assert_eq!(f.max_level("loop", None), Some(Level::Trace));
    }

    #[test]
    fn longest_prefix_wins() {
        let f = Filter::parse("loopscope=info,loopscope::online=trace");
        assert_eq!(f.max_level("loopscope::online", None), Some(Level::Trace));
        assert_eq!(f.max_level("loopscope::merge", None), Some(Level::Info));
    }

    #[test]
    fn off_silences() {
        let f = Filter::parse("off,noisy=off");
        assert_eq!(f.max_level("x", None), None);
        assert_eq!(f.max_level("noisy::sub", None), None);
    }

    #[test]
    fn programmatic_beats_bare_env_level() {
        let f = Filter::parse("trace");
        assert_eq!(
            f.max_level("x", Some(Some(Level::Error))),
            Some(Level::Error)
        );
    }

    #[test]
    fn per_target_beats_programmatic() {
        let f = Filter::parse("loopscope=debug");
        assert_eq!(
            f.max_level("loopscope::merge", Some(Some(Level::Error))),
            Some(Level::Debug)
        );
    }

    #[test]
    fn programmatic_off_silences_everything_but_directives() {
        let f = Filter::parse("trace,keep=info");
        assert_eq!(f.max_level("x", Some(None)), None);
        assert_eq!(f.max_level("keep::sub", Some(None)), Some(Level::Info));
    }

    #[test]
    fn garbage_directives_ignored() {
        let f = Filter::parse("bogus,=info,x=notalevel,,  ,warn");
        assert_eq!(f.max_level("x", None), Some(Level::Warn));
        assert!(f.directives.is_empty());
    }

    #[test]
    fn whitespace_tolerated() {
        let f = Filter::parse(" info , loopscope = debug ");
        assert_eq!(f.max_level("other", None), Some(Level::Info));
        assert_eq!(f.max_level("loopscope::x", None), Some(Level::Debug));
    }
}
