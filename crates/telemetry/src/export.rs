//! Periodic telemetry export: a sampler thread that snapshots a registry
//! on an interval, computes counter/timer deltas and rates, and hands each
//! [`Sample`] to a pluggable consumer.
//!
//! Two consumers ship with the crate:
//!
//! * [`JsonlConsumer`] — one compact JSON object per line (the
//!   `loopdetect --metrics-interval <ms>` stream), tailable with standard
//!   line tooling during a long monitor run.
//! * [`StatusLine`] — a carriage-return-refreshed single-line live view
//!   (the `loopdetect --watch` display) summarising scan rate, open
//!   candidates, emitted streams/loops, and shard queue pressure.
//!
//! The sampler always emits one sample immediately on spawn and one final
//! sample on [`Sampler::stop`], so even a run shorter than the interval
//! produces at least two snapshots — the stream is never empty and the
//! last line always reflects the finished run.
//!
//! # JSONL schema
//!
//! Each line is one object (keys sorted, compact):
//!
//! ```json
//! {"seq":1,"unix_ms":1754650000123,"elapsed_ms":500,"interval_ms":500,
//!  "counters":{"replica.records_scanned":{"total":84000,"delta":42000,"rate_per_s":84000.0}},
//!  "gauges":{"online.open_candidates":{"value":3,"high_water":9}},
//!  "timers":{"replica.detect":{"calls":2,"delta_calls":1,"total_ns":918000,"delta_ns":450000,"max_ns":468000}}}
//! ```
//!
//! `total` is cumulative since process start; `delta` is since the
//! previous sample; `rate_per_s` is `delta / interval`. Histograms are
//! deliberately omitted from the live stream (they are end-of-run
//! artifacts — use `--metrics` for the full snapshot).

use crate::json::JsonWriter;
use crate::registry::{Registry, Snapshot};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// One counter's state at a sample point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Cumulative value.
    pub total: u64,
    /// Increase since the previous sample (= `total` on the first).
    pub delta: u64,
    /// `delta` scaled to per-second by the actual inter-sample interval
    /// (0.0 on the first sample).
    pub rate_per_s: f64,
}

/// One timer's state at a sample point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerSample {
    /// Cumulative invocation count.
    pub calls: u64,
    /// Invocations since the previous sample.
    pub delta_calls: u64,
    /// Cumulative nanoseconds.
    pub total_ns: u64,
    /// Nanoseconds accumulated since the previous sample.
    pub delta_ns: u64,
    /// Slowest single invocation ever (cumulative, not windowed).
    pub max_ns: u64,
}

/// A registry snapshot interpreted against its predecessor: cumulative
/// totals plus per-window deltas and rates.
#[derive(Debug, Clone)]
pub struct Sample {
    /// 0-based sample index within this sampler's stream.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Milliseconds since the sampler started.
    pub elapsed_ms: u64,
    /// Actual milliseconds since the previous sample (0 on the first).
    pub interval_ms: u64,
    /// Counters with deltas and rates.
    pub counters: BTreeMap<String, CounterSample>,
    /// Gauge `(value, high_water)` pairs.
    pub gauges: BTreeMap<String, (i64, i64)>,
    /// Timers with deltas.
    pub timers: BTreeMap<String, TimerSample>,
}

impl Sample {
    /// Builds a sample from a snapshot and (optionally) the previous one.
    ///
    /// Counters and timers are monotone, so `saturating_sub` only matters
    /// if the registry was reset between samples — in that case the delta
    /// clamps to 0 rather than wrapping.
    pub fn between(
        prev: Option<&Snapshot>,
        cur: &Snapshot,
        seq: u64,
        unix_ms: u64,
        elapsed_ms: u64,
        interval_ms: u64,
    ) -> Sample {
        let secs = interval_ms as f64 / 1e3;
        let counters = cur
            .counters
            .iter()
            .map(|(name, &total)| {
                let before = prev
                    .and_then(|p| p.counters.get(name))
                    .copied()
                    .unwrap_or(0);
                let delta = total.saturating_sub(before);
                let rate_per_s = if secs > 0.0 { delta as f64 / secs } else { 0.0 };
                (
                    name.clone(),
                    CounterSample {
                        total,
                        delta,
                        rate_per_s,
                    },
                )
            })
            .collect();
        let timers = cur
            .timers
            .iter()
            .map(|(name, t)| {
                let before = prev.and_then(|p| p.timers.get(name));
                (
                    name.clone(),
                    TimerSample {
                        calls: t.calls,
                        delta_calls: t.calls.saturating_sub(before.map_or(0, |b| b.calls)),
                        total_ns: t.total_ns,
                        delta_ns: t.total_ns.saturating_sub(before.map_or(0, |b| b.total_ns)),
                        max_ns: t.max_ns,
                    },
                )
            })
            .collect();
        Sample {
            seq,
            unix_ms,
            elapsed_ms,
            interval_ms,
            counters,
            gauges: cur.gauges.clone(),
            timers,
        }
    }

    /// Serialises the sample as one compact JSON object (no newline).
    pub fn to_json(&self) -> String {
        let mut j = JsonWriter::new();
        j.begin_object();
        j.key("seq");
        j.u64(self.seq);
        j.key("unix_ms");
        j.u64(self.unix_ms);
        j.key("elapsed_ms");
        j.u64(self.elapsed_ms);
        j.key("interval_ms");
        j.u64(self.interval_ms);
        j.key("counters");
        j.begin_object();
        for (name, c) in &self.counters {
            j.key(name);
            j.begin_object();
            j.key("total");
            j.u64(c.total);
            j.key("delta");
            j.u64(c.delta);
            j.key("rate_per_s");
            j.f64_3(c.rate_per_s);
            j.end_object();
        }
        j.end_object();
        j.key("gauges");
        j.begin_object();
        for (name, &(value, high_water)) in &self.gauges {
            j.key(name);
            j.begin_object();
            j.key("value");
            j.i64(value);
            j.key("high_water");
            j.i64(high_water);
            j.end_object();
        }
        j.end_object();
        j.key("timers");
        j.begin_object();
        for (name, t) in &self.timers {
            j.key(name);
            j.begin_object();
            j.key("calls");
            j.u64(t.calls);
            j.key("delta_calls");
            j.u64(t.delta_calls);
            j.key("total_ns");
            j.u64(t.total_ns);
            j.key("delta_ns");
            j.u64(t.delta_ns);
            j.key("max_ns");
            j.u64(t.max_ns);
            j.end_object();
        }
        j.end_object();
        j.end_object();
        j.finish()
    }

    fn counter(&self, name: &str) -> Option<&CounterSample> {
        self.counters.get(name)
    }
}

/// Receives each sample the sampler takes.
pub trait SampleConsumer: Send {
    /// Called once per sample, in sequence order, from the sampler thread.
    fn consume(&mut self, sample: &Sample) -> std::io::Result<()>;

    /// Called once after the final sample, before the thread exits.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Writes each sample as one JSON line.
pub struct JsonlConsumer<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> JsonlConsumer<W> {
    /// Wraps a writer (no buffering is added; pass a `BufWriter` or rely
    /// on line-sized writes being cheap for your sink).
    pub fn new(out: W) -> Self {
        Self { out }
    }
}

impl<W: Write + Send> SampleConsumer for JsonlConsumer<W> {
    fn consume(&mut self, sample: &Sample) -> std::io::Result<()> {
        self.out.write_all(sample.to_json().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

/// Renders each sample as a `\r`-refreshed single status line — the
/// `loopdetect --watch` display. The line is padded to overwrite its
/// predecessor; [`finish`](SampleConsumer::finish) terminates it with a
/// newline so the final state stays on screen.
pub struct StatusLine<W: Write + Send> {
    out: W,
    last_len: usize,
}

impl<W: Write + Send> StatusLine<W> {
    /// Wraps a writer (conventionally stderr).
    pub fn new(out: W) -> Self {
        Self { out, last_len: 0 }
    }

    /// Builds the status text for a sample (exposed for tests).
    pub fn render(sample: &Sample) -> String {
        let scanned = sample
            .counter("replica.records_scanned")
            .copied()
            .unwrap_or(CounterSample {
                total: 0,
                delta: 0,
                rate_per_s: 0.0,
            });
        let streams = sample
            .counter("validate.streams_kept")
            .map_or(0, |c| c.total)
            + sample
                .counter("online.streams_emitted")
                .map_or(0, |c| c.total);
        let loops = sample.counter("merge.loops_total").map_or(0, |c| c.total)
            + sample
                .counter("online.loops_emitted")
                .map_or(0, |c| c.total);
        let open = sample
            .gauges
            .get("online.open_candidates")
            .map_or(0, |&(v, _)| v);
        let stalls: u64 = sample
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("shard.") && name.ends_with(".full_stalls"))
            .map(|(_, c)| c.total)
            .sum();
        let max_queue = sample
            .gauges
            .iter()
            .filter(|(name, _)| name.starts_with("shard.") && name.ends_with(".queue_depth"))
            .map(|(_, &(v, _))| v)
            .max()
            .unwrap_or(0);
        format!(
            "[{:7.1}s] {} rec ({:.0}/s) | streams {} | loops {} | open {} | maxq {} | stalls {}",
            sample.elapsed_ms as f64 / 1e3,
            scanned.total,
            scanned.rate_per_s,
            streams,
            loops,
            open,
            max_queue,
            stalls
        )
    }
}

impl<W: Write + Send> SampleConsumer for StatusLine<W> {
    fn consume(&mut self, sample: &Sample) -> std::io::Result<()> {
        let line = Self::render(sample);
        let pad = self.last_len.saturating_sub(line.len());
        self.last_len = line.len();
        write!(self.out, "\r{line}{}", " ".repeat(pad))?;
        self.out.flush()
    }

    fn finish(&mut self) -> std::io::Result<()> {
        writeln!(self.out)?;
        self.out.flush()
    }
}

struct SamplerShared {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// A background thread sampling `registry` every `interval` and feeding a
/// [`SampleConsumer`]. Dropping the sampler stops it (best-effort);
/// [`stop`](Sampler::stop) additionally surfaces any I/O error the
/// consumer hit.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    handle: Option<JoinHandle<std::io::Result<()>>>,
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

impl Sampler {
    /// Spawns the sampler thread. One sample is taken immediately, one per
    /// interval thereafter, and one final sample on stop — so the stream
    /// always holds at least two samples bracketing the observed run.
    pub fn spawn(
        registry: &'static Registry,
        interval: Duration,
        mut consumer: Box<dyn SampleConsumer>,
    ) -> Sampler {
        let shared = Arc::new(SamplerShared {
            stop: Mutex::new(false),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("telemetry-sampler".into())
            .spawn(move || -> std::io::Result<()> {
                let start = Instant::now();
                let mut prev: Option<Snapshot> = None;
                let mut prev_at = start;
                let mut seq = 0u64;
                let mut take = |prev: &mut Option<Snapshot>,
                                prev_at: &mut Instant,
                                seq: &mut u64|
                 -> std::io::Result<()> {
                    let now = Instant::now();
                    let cur = registry.snapshot();
                    let sample = Sample::between(
                        prev.as_ref(),
                        &cur,
                        *seq,
                        unix_ms(),
                        now.duration_since(start).as_millis() as u64,
                        now.duration_since(*prev_at).as_millis() as u64,
                    );
                    consumer.consume(&sample)?;
                    *prev = Some(cur);
                    *prev_at = now;
                    *seq += 1;
                    Ok(())
                };
                // First sample: no predecessor window, interval ~0.
                take(&mut prev, &mut prev_at, &mut seq)?;
                loop {
                    let stopped = {
                        let guard = thread_shared.stop.lock().unwrap_or_else(|p| p.into_inner());
                        let (guard, _) = thread_shared
                            .cv
                            .wait_timeout_while(guard, interval, |stop| !*stop)
                            .unwrap_or_else(|p| p.into_inner());
                        *guard
                    };
                    if stopped {
                        break;
                    }
                    take(&mut prev, &mut prev_at, &mut seq)?;
                }
                take(&mut prev, &mut prev_at, &mut seq)?;
                consumer.finish()
            })
            .expect("spawn telemetry sampler thread");
        Sampler {
            shared,
            handle: Some(handle),
        }
    }

    fn signal_stop(&self) {
        *self.shared.stop.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.shared.cv.notify_all();
    }

    /// Stops the sampler: takes the final sample, joins the thread, and
    /// returns any I/O error the consumer reported.
    pub fn stop(mut self) -> std::io::Result<()> {
        self.signal_stop();
        match self.handle.take().map(JoinHandle::join) {
            Some(Ok(result)) => result,
            Some(Err(_)) => Err(std::io::Error::other("telemetry sampler thread panicked")),
            None => Ok(()),
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.signal_stop();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn private_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::new()))
    }

    /// A consumer that appends rendered lines into shared memory.
    struct CaptureJson(Arc<Mutex<Vec<String>>>);

    impl SampleConsumer for CaptureJson {
        fn consume(&mut self, sample: &Sample) -> std::io::Result<()> {
            self.0.lock().unwrap().push(sample.to_json());
            Ok(())
        }
    }

    #[test]
    fn sampler_emits_at_least_two_samples_even_for_instant_runs() {
        let reg = private_registry();
        reg.counter("x.total").inc();
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sampler = Sampler::spawn(
            reg,
            Duration::from_secs(3600),
            Box::new(CaptureJson(Arc::clone(&lines))),
        );
        sampler.stop().unwrap();
        let lines = lines.lock().unwrap();
        assert!(lines.len() >= 2, "got {} lines", lines.len());
        for line in lines.iter() {
            crate::json::validate(line).expect("every sample line is valid JSON");
            assert!(line.contains("\"x.total\""));
        }
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[1].contains("\"seq\":1"));
    }

    #[test]
    fn deltas_are_windowed_not_cumulative() {
        let reg = private_registry();
        let c = reg.counter("work.items");
        c.add(10);
        let s0 = reg.snapshot();
        c.add(5);
        let s1 = reg.snapshot();
        c.add(7);
        let s2 = reg.snapshot();

        let first = Sample::between(None, &s0, 0, 0, 0, 0);
        assert_eq!(first.counters["work.items"].total, 10);
        assert_eq!(first.counters["work.items"].delta, 10);
        assert_eq!(first.counters["work.items"].rate_per_s, 0.0);

        let second = Sample::between(Some(&s0), &s1, 1, 0, 500, 500);
        assert_eq!(second.counters["work.items"].total, 15);
        assert_eq!(second.counters["work.items"].delta, 5);
        assert!((second.counters["work.items"].rate_per_s - 10.0).abs() < 1e-9);

        let third = Sample::between(Some(&s1), &s2, 2, 0, 750, 250);
        assert_eq!(third.counters["work.items"].delta, 7);
        assert!((third.counters["work.items"].rate_per_s - 28.0).abs() < 1e-9);
    }

    #[test]
    fn jsonl_schema_golden() {
        let reg = private_registry();
        reg.counter("a.count").add(4);
        reg.gauge("b.depth").set(3);
        reg.gauge("b.depth").set(1);
        reg.timer("c.stage").record(1_500);
        let s0 = reg.snapshot();
        reg.counter("a.count").add(6);
        reg.timer("c.stage").record(500);
        let s1 = reg.snapshot();

        let sample = Sample::between(Some(&s0), &s1, 3, 1_754_650_000_123, 2_000, 1_000);
        assert_eq!(
            sample.to_json(),
            concat!(
                r#"{"seq":3,"unix_ms":1754650000123,"elapsed_ms":2000,"interval_ms":1000,"#,
                r#""counters":{"a.count":{"total":10,"delta":6,"rate_per_s":6.000}},"#,
                r#""gauges":{"b.depth":{"value":1,"high_water":3}},"#,
                r#""timers":{"c.stage":{"calls":2,"delta_calls":1,"total_ns":2000,"delta_ns":500,"max_ns":1500}}}"#
            )
        );
        crate::json::validate(&sample.to_json()).unwrap();
    }

    #[test]
    fn deltas_stay_consistent_under_concurrent_writers() {
        // Writers hammer a counter while a reader repeatedly samples; the
        // deltas must sum to exactly the total written, with every delta
        // non-negative (monotonicity of the underlying counter).
        let reg = private_registry();
        let c = reg.counter("conc.items");
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 50_000;
        let mut samples = Vec::new();
        std::thread::scope(|s| {
            for _ in 0..WRITERS {
                s.spawn(|| {
                    for _ in 0..PER_WRITER {
                        c.inc();
                    }
                });
            }
            let mut prev: Option<Snapshot> = None;
            loop {
                let cur = reg.snapshot();
                samples.push(Sample::between(prev.as_ref(), &cur, 0, 0, 0, 1));
                let done = cur.counters["conc.items"] == WRITERS * PER_WRITER;
                prev = Some(cur);
                if done {
                    break;
                }
                std::thread::yield_now();
            }
        });
        let total: u64 = samples.iter().map(|s| s.counters["conc.items"].delta).sum();
        assert_eq!(total, WRITERS * PER_WRITER);
    }

    #[test]
    fn sampler_surfaces_consumer_io_errors() {
        struct Failing;
        impl SampleConsumer for Failing {
            fn consume(&mut self, _: &Sample) -> std::io::Result<()> {
                Err(std::io::Error::other("sink full"))
            }
        }
        let sampler = Sampler::spawn(
            private_registry(),
            Duration::from_secs(3600),
            Box::new(Failing),
        );
        let err = sampler.stop().unwrap_err();
        assert_eq!(err.to_string(), "sink full");
    }

    #[test]
    fn status_line_summarises_known_metrics() {
        let reg = private_registry();
        reg.counter("replica.records_scanned").add(84_000);
        reg.counter("validate.streams_kept").add(3);
        reg.counter("merge.loops_total").add(2);
        reg.counter("shard.w1.full_stalls").add(5);
        reg.gauge("online.open_candidates").set(7);
        reg.gauge("shard.w0.queue_depth").set(4);
        let snap = reg.snapshot();
        let sample = Sample::between(None, &snap, 0, 0, 1_500, 0);
        let line = StatusLine::<Vec<u8>>::render(&sample);
        assert!(line.contains("84000 rec"), "{line}");
        assert!(line.contains("streams 3"), "{line}");
        assert!(line.contains("loops 2"), "{line}");
        assert!(line.contains("open 7"), "{line}");
        assert!(line.contains("maxq 4"), "{line}");
        assert!(line.contains("stalls 5"), "{line}");
    }

    #[test]
    fn status_line_pads_over_previous_output() {
        let mut buf = Vec::new();
        {
            let mut sl = StatusLine::new(&mut buf);
            let reg = private_registry();
            reg.counter("replica.records_scanned").add(1_000_000);
            let long = Sample::between(None, &reg.snapshot(), 0, 0, 0, 0);
            sl.consume(&long).unwrap();
            let short = Sample::between(None, &Registry::new().snapshot(), 1, 0, 0, 0);
            sl.consume(&short).unwrap();
            sl.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches('\r').count(), 2);
        assert!(text.ends_with('\n'));
        let (a, b) = {
            let mut parts = text.trim_end_matches('\n').split('\r').skip(1);
            (
                parts.next().unwrap().to_string(),
                parts.next().unwrap().to_string(),
            )
        };
        assert_eq!(a.len(), b.len(), "second line padded to cover the first");
    }
}
